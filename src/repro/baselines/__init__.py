"""Baseline DNI system designs the paper compares against (Section 5.1).

* :class:`PyBaseRunner` -- the "standard Python implementation": fully
  materialize behavior matrices, then score every (unit, hypothesis) pair
  with per-pair loops and per-hypothesis probe training.  No merging, no
  early stopping, no streaming.
* :class:`MadlibRunner` -- the DB-oriented design: behaviors are loaded into
  relational tables and affinities are computed with SQL aggregates and
  MADLib-style training UDAs, batched under the engine's expression limit.
"""

from repro.baselines.madlib import MadlibRunner
from repro.baselines.pybase import PyBaseRunner

__all__ = ["MadlibRunner", "PyBaseRunner"]
