"""MADLib: the in-RDBMS DNI baseline (Section 5.1.1 / Figure 5).

An external process extracts unit and hypothesis behaviors and materializes
them as dense relations ``unitsb_dense(symbolid, u0..uN)`` and
``hyposb_dense(symbolid, h0..hM)``.  A driver then

* computes correlations with batched ``SELECT corr(u_i, h_j), ...`` queries,
  each limited to the engine's 1,600-expression target list, so computing
  all |U| x |H| pairs costs ``ceil(|U||H| / 1600)`` joins + full scans; and
* trains one logistic-regression UDA per hypothesis, each performing one
  full scan of the behavior relation per gradient pass.

The ``db.full_scans`` counter exposes the pass count the paper reports
("up to 121 passes over the behavior relations").
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.db.engine import MAX_EXPRESSIONS, Database
from repro.db.executor import JoinSpec, SelectItem, SelectQuery, execute_select
from repro.db.expr import AggregateRef, Column
from repro.db.madlib import logregr_f1, logregr_train
from repro.extract.base import Extractor, HypothesisExtractor
from repro.extract.rnn import RnnActivationExtractor
from repro.hypotheses.base import HypothesisFunction
from repro.measures.base import MeasureResult
from repro.util.timing import Stopwatch


class MadlibRunner:
    """Drives the mini relational engine through the paper's baseline plan.

    ``engine`` selects the execution engine for the correlation queries and
    the training UDAs: ``"columnar"`` (the engine default) vectorizes each
    batched query, ``"row"`` reproduces the paper's row-at-a-time RDBMS
    cost profile.  The query plan -- batching, join and pass structure --
    is identical either way.
    """

    def __init__(self, extractor: Extractor | None = None,
                 batch_limit: int = MAX_EXPRESSIONS,
                 logreg_iters: int = 4,
                 engine: str | None = None):
        self.extractor = extractor or RnnActivationExtractor()
        self.batch_limit = min(batch_limit, MAX_EXPRESSIONS)
        self.logreg_iters = logreg_iters
        self.engine = engine
        self.db = Database()

    # ------------------------------------------------------------------
    def load(self, model, dataset: Dataset,
             hypotheses: list[HypothesisFunction],
             watch: Stopwatch) -> tuple[int, int]:
        """Extract behaviors and materialize the dense relations."""
        with watch.charge("unit_extraction"):
            units = self.extractor.extract(model, dataset.symbols)
        with watch.charge("hypothesis_extraction"):
            hyps = HypothesisExtractor(hypotheses).extract(dataset)

        n_units, n_hyps = units.shape[1], hyps.shape[1]
        with watch.charge("load"):
            unit_cols = ["symbolid"] + [f"u{i}" for i in range(n_units)]
            hyp_cols = ["symbolid"] + [f"h{j}" for j in range(n_hyps)]
            self.db.create_table(
                "unitsb_dense", unit_cols,
                ([i, *row] for i, row in enumerate(units.tolist())),
                replace=True)
            self.db.create_table(
                "hyposb_dense", hyp_cols,
                ([i, *row] for i, row in enumerate(hyps.tolist())),
                replace=True)
            # combined relation for the training UDAs (dep + indep columns)
            combined_cols = unit_cols + [f"h{j}" for j in range(n_hyps)]
            self.db.create_table(
                "behaviors", combined_cols,
                ([i, *u_row, *h_row] for i, (u_row, h_row)
                 in enumerate(zip(units.tolist(), hyps.tolist()))),
                replace=True)
        return n_units, n_hyps

    # ------------------------------------------------------------------
    def run_correlation(self, model, dataset: Dataset,
                        hypotheses: list[HypothesisFunction],
                        watch: Stopwatch | None = None) -> MeasureResult:
        watch = watch or Stopwatch()
        n_units, n_hyps = self.load(model, dataset, hypotheses, watch)

        pairs = [(i, j) for i in range(n_units) for j in range(n_hyps)]
        scores = np.zeros((n_units, n_hyps))
        with watch.charge("inspection"):
            for start in range(0, len(pairs), self.batch_limit):
                batch = pairs[start:start + self.batch_limit]
                items = [SelectItem(
                    expr=AggregateRef("corr", [Column(f"U.u{i}"),
                                               Column(f"H.h{j}")]),
                    alias=f"c_{i}_{j}") for i, j in batch]
                query = SelectQuery(
                    items=items, table="unitsb_dense", alias="U",
                    joins=[JoinSpec(table="hyposb_dense", alias="H",
                                    left_col="U.symbolid",
                                    right_col="H.symbolid")])
                rows = execute_select(self.db, query, engine=self.engine)
                for i, j in batch:
                    val = rows[0][f"c_{i}_{j}"]
                    scores[i, j] = 0.0 if val is None else val
        return MeasureResult(unit_scores=scores, group_scores=None,
                             n_rows_seen=len(self.db.table("unitsb_dense")),
                             converged=True)

    # ------------------------------------------------------------------
    def run_logreg(self, model, dataset: Dataset,
                   hypotheses: list[HypothesisFunction],
                   watch: Stopwatch | None = None) -> MeasureResult:
        watch = watch or Stopwatch()
        n_units, n_hyps = self.load(model, dataset, hypotheses, watch)
        indep_cols = [f"u{i}" for i in range(n_units)]
        coef_matrix = np.zeros((n_units, n_hyps))
        f1_scores = np.zeros(n_hyps)
        with watch.charge("inspection"):
            for j in range(n_hyps):
                weights = logregr_train(
                    self.db, "behaviors", f"coef_h{j}", dep_col=f"h{j}",
                    indep_cols=indep_cols, max_iter=self.logreg_iters,
                    engine=self.engine)
                coef_matrix[:, j] = weights[:-1]
                f1_scores[j] = logregr_f1(self.db, "behaviors", f"coef_h{j}",
                                          dep_col=f"h{j}",
                                          indep_cols=indep_cols,
                                          engine=self.engine)
        return MeasureResult(unit_scores=coef_matrix, group_scores=f1_scores,
                             n_rows_seen=len(self.db.table("behaviors")),
                             converged=True)
