"""PyBase: the naive Python DNI baseline (Section 5.1.2 / Figure 5).

What a careful ML engineer writes without a system: extract everything,
then loop.  Correlation is computed pair-by-pair with ``np.corrcoef``;
logistic-regression probes are trained one hypothesis at a time.  All
optimizations of Section 5.2 are deliberately absent.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.extract.base import Extractor, HypothesisExtractor
from repro.extract.rnn import RnnActivationExtractor
from repro.hypotheses.base import HypothesisFunction
from repro.measures.base import MeasureResult
from repro.measures.logreg import LogRegressionScore
from repro.util.timing import Stopwatch


class PyBaseRunner:
    """Full-materialization, per-pair/per-hypothesis execution."""

    def __init__(self, extractor: Extractor | None = None,
                 logreg_epochs: int = 4, cv_folds: int = 5):
        self.extractor = extractor or RnnActivationExtractor()
        self.logreg_epochs = logreg_epochs
        self.cv_folds = cv_folds

    # ------------------------------------------------------------------
    def materialize(self, model, dataset: Dataset,
                    hypotheses: list[HypothesisFunction],
                    watch: Stopwatch) -> tuple[np.ndarray, np.ndarray]:
        with watch.charge("unit_extraction"):
            units = self.extractor.extract(model, dataset.symbols)
        with watch.charge("hypothesis_extraction"):
            hyps = HypothesisExtractor(hypotheses).extract(dataset)
        return units, hyps

    # ------------------------------------------------------------------
    def run_correlation(self, model, dataset: Dataset,
                        hypotheses: list[HypothesisFunction],
                        watch: Stopwatch | None = None) -> MeasureResult:
        """Per-pair Pearson correlation, the way one-off scripts do it."""
        watch = watch or Stopwatch()
        units, hyps = self.materialize(model, dataset, hypotheses, watch)
        n_units, n_hyps = units.shape[1], hyps.shape[1]
        scores = np.zeros((n_units, n_hyps))
        with watch.charge("inspection"):
            for i in range(n_units):
                u = units[:, i]
                for j in range(n_hyps):
                    h = hyps[:, j]
                    if u.std() < 1e-12 or h.std() < 1e-12:
                        continue
                    scores[i, j] = np.corrcoef(u, h)[0, 1]
        return MeasureResult(unit_scores=scores, group_scores=None,
                             n_rows_seen=units.shape[0], converged=True)

    # ------------------------------------------------------------------
    def run_logreg(self, model, dataset: Dataset,
                   hypotheses: list[HypothesisFunction],
                   watch: Stopwatch | None = None,
                   regul: str = "L1") -> MeasureResult:
        """One independently trained probe per hypothesis (no merging)."""
        watch = watch or Stopwatch()
        units, hyps = self.materialize(model, dataset, hypotheses, watch)
        measure = LogRegressionScore(regul=regul, epochs=self.logreg_epochs,
                                     cv_folds=self.cv_folds, merged=False)
        with watch.charge("inspection"):
            result = measure.compute(units, hyps)
        return result
