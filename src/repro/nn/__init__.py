"""A small numpy-only neural-network framework (Keras/PyTorch substitute).

Provides exactly what Deep Neural Inspection needs from a deep-learning
substrate: trainable models (LSTM language models, seq2seq translation with
attention, small CNNs) whose per-symbol hidden-unit activations can be
extracted, plus optimizers, losses, a training loop and (de)serialization.
"""

from repro.nn.device import Device, get_device
from repro.nn.layers import Dense, Embedding, OneHot
from repro.nn.losses import (mse_loss, softmax_cross_entropy,
                             specialization_loss)
from repro.nn.models import CharLSTMModel, SpecializedLSTMModel
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.recurrent import LSTM
from repro.nn.seq2seq import Seq2SeqModel
from repro.nn.serialize import load_model, save_model
from repro.nn.training import TrainConfig, train_model

__all__ = [
    "Adam",
    "CharLSTMModel",
    "Dense",
    "Device",
    "Embedding",
    "LSTM",
    "Module",
    "OneHot",
    "Parameter",
    "SGD",
    "Seq2SeqModel",
    "SpecializedLSTMModel",
    "TrainConfig",
    "get_device",
    "load_model",
    "mse_loss",
    "save_model",
    "softmax_cross_entropy",
    "specialization_loss",
    "train_model",
]
