"""Sequence-to-sequence translation model with attention (OpenNMT substitute).

Encoder-decoder architecture matching the shape of the model the paper
inspects: embeddings, a stacked-LSTM encoder, a stacked-LSTM decoder, and a
Luong-style dot-product attention module feeding a projection over the target
vocabulary.  Trained with teacher forcing.

Deep Neural Inspection reads the *encoder* hidden states
(:meth:`Seq2SeqModel.encoder_states`), exactly where Belinkov et al. and the
paper's Section 6.3 attach their probes.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dense, Embedding, softmax
from repro.nn.losses import softmax_cross_entropy
from repro.nn.module import Module
from repro.nn.recurrent import StackedLSTM


class Seq2SeqModel(Module):
    """Encoder-decoder with dot-product attention."""

    def __init__(self, src_vocab: int, tgt_vocab: int, n_units: int,
                 rng: np.random.Generator, n_layers: int = 2,
                 emb_dim: int | None = None, pad_id: int = 0,
                 model_id: str = "seq2seq"):
        self.model_id = model_id
        self.src_vocab = src_vocab
        self.tgt_vocab = tgt_vocab
        self.n_units = n_units
        self.n_layers = n_layers
        self.pad_id = pad_id
        emb_dim = emb_dim or n_units
        self.emb_dim = emb_dim

        self.src_embed = Embedding(src_vocab, emb_dim, rng)
        self.encoder = StackedLSTM(emb_dim, n_units, n_layers, rng)
        self.tgt_embed = Embedding(tgt_vocab, emb_dim, rng)
        self.decoder = StackedLSTM(emb_dim, n_units, n_layers, rng)
        self.out_proj = Dense(2 * n_units, tgt_vocab, rng)
        self._cache: dict | None = None

    # ------------------------------------------------------------------
    def forward(self, src_ids: np.ndarray, tgt_in: np.ndarray) -> np.ndarray:
        """Teacher-forced logits (batch, T_tgt, tgt_vocab)."""
        enc = self.encoder.forward(self.src_embed.forward(src_ids))
        dec = self.decoder.forward(self.tgt_embed.forward(tgt_in))

        # dot-product attention with source padding masked out
        scores = np.einsum("btu,bsu->bts", dec, enc)
        src_mask = (src_ids == self.pad_id)[:, None, :]  # (batch, 1, T_src)
        scores = np.where(src_mask, -1e9, scores)
        alpha = softmax(scores, axis=-1)
        context = np.einsum("bts,bsu->btu", alpha, enc)

        concat = np.concatenate([dec, context], axis=-1)
        logits = self.out_proj.forward(concat)
        self._cache = {"enc": enc, "dec": dec, "alpha": alpha,
                       "src_ids": src_ids}
        return logits

    # ------------------------------------------------------------------
    def loss_and_grads(self, batch: tuple[np.ndarray, np.ndarray, np.ndarray],
                       targets: np.ndarray | None = None) -> tuple[float, float]:
        """One training step over (src, tgt_in, tgt_out) triples.

        Follows the (inputs, targets) calling convention of
        :func:`repro.nn.training.train_model`: ``batch`` packs the source and
        teacher-forcing input, ``targets`` is tgt_out; alternatively pass the
        full triple as ``batch`` with ``targets=None``.
        """
        if targets is None:
            src_ids, tgt_in, tgt_out = batch
        else:
            src_ids, tgt_in = batch
            tgt_out = targets
        logits = self.forward(src_ids, tgt_in)

        # mask padding positions out of the loss by pointing them at class 0
        # with zero weight: compute CE manually over non-pad positions
        mask = tgt_out != self.pad_id
        flat_logits = logits[mask]
        flat_targets = tgt_out[mask]
        loss, dflat = softmax_cross_entropy(flat_logits, flat_targets)
        acc = float((flat_logits.argmax(axis=-1) == flat_targets).mean())
        dlogits = np.zeros_like(logits)
        dlogits[mask] = dflat

        self._backward(dlogits)
        return loss, acc

    def _backward(self, dlogits: np.ndarray) -> None:
        assert self._cache is not None
        enc = self._cache["enc"]
        dec = self._cache["dec"]
        alpha = self._cache["alpha"]
        h = self.n_units

        dconcat = self.out_proj.backward(dlogits)
        ddec = dconcat[..., :h].copy()
        dcontext = dconcat[..., h:]

        # context = alpha @ enc
        dalpha = np.einsum("btu,bsu->bts", dcontext, enc)
        denc = np.einsum("bts,btu->bsu", alpha, dcontext)
        # softmax backward (masked positions have alpha == 0 -> no gradient)
        dscores = alpha * (dalpha - (dalpha * alpha).sum(axis=-1, keepdims=True))
        # scores = dec @ enc^T
        ddec += np.einsum("bts,bsu->btu", dscores, enc)
        denc += np.einsum("bts,btu->bsu", dscores, dec)

        dtgt_emb = self.decoder.backward(ddec)
        self.tgt_embed.backward(dtgt_emb)
        dsrc_emb = self.encoder.backward(denc)
        self.src_embed.backward(dsrc_emb)

    # ------------------------------------------------------------------
    def evaluate(self, batch, targets: np.ndarray | None = None
                 ) -> tuple[float, float]:
        if targets is None:
            src_ids, tgt_in, tgt_out = batch
        else:
            src_ids, tgt_in = batch
            tgt_out = targets
        logits = self.forward(src_ids, tgt_in)
        mask = tgt_out != self.pad_id
        loss, _ = softmax_cross_entropy(logits[mask], tgt_out[mask])
        acc = float((logits[mask].argmax(axis=-1) == tgt_out[mask]).mean())
        return loss, acc

    # ------------------------------------------------------------------
    def encoder_states(self, src_ids: np.ndarray) -> list[np.ndarray]:
        """Per-layer encoder hidden sequences -- the DNI extraction point.

        Extraction never backprops, so the stack runs the inference-mode
        sweep (:mod:`repro.nn.kernels`): bit-identical hidden states
        without gate/cell history or BPTT caches.  :meth:`forward` keeps
        the training-mode pass -- its caches feed :meth:`_backward`.
        """
        self.encoder.forward(self.src_embed.forward(src_ids),
                             training=False)
        return self.encoder.layer_states()

    def translate_greedy(self, src_ids: np.ndarray, bos_id: int, eos_id: int,
                         max_len: int = 30) -> list[list[int]]:
        """Greedy decoding (used by examples to sanity-check the model)."""
        batch = src_ids.shape[0]
        outputs: list[list[int]] = [[] for _ in range(batch)]
        tgt = np.full((batch, 1), bos_id, dtype=int)
        done = np.zeros(batch, dtype=bool)
        for _ in range(max_len):
            logits = self.forward(src_ids, tgt)
            nxt = logits[:, -1].argmax(axis=-1)
            for b in range(batch):
                if not done[b]:
                    if nxt[b] == eos_id:
                        done[b] = True
                    else:
                        outputs[b].append(int(nxt[b]))
            if done.all():
                break
            tgt = np.concatenate([tgt, nxt[:, None]], axis=1)
        return outputs

    def architecture(self) -> dict:
        return {"kind": "seq2seq", "src_vocab": self.src_vocab,
                "tgt_vocab": self.tgt_vocab, "n_units": self.n_units,
                "n_layers": self.n_layers, "emb_dim": self.emb_dim,
                "pad_id": self.pad_id, "model_id": self.model_id}
