"""Feed-forward layers: Dense, OneHot, Embedding and activations.

Every layer caches what its backward pass needs during ``forward`` and
returns input gradients from ``backward``; parameter gradients accumulate in
place (call :meth:`Module.zero_grad` between steps).
"""

from __future__ import annotations

import numpy as np

from repro.nn import kernels
from repro.nn.module import Module, Parameter, glorot


class Dense(Module):
    """Affine layer ``y = x @ W + b`` over the last axis."""

    def __init__(self, n_in: int, n_out: int, rng: np.random.Generator,
                 bias: bool = True):
        self.n_in = n_in
        self.n_out = n_out
        self.weight = Parameter(glorot(rng, n_in, n_out), "dense_w")
        self.bias = Parameter(np.zeros(n_out), "dense_b") if bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        y = x @ self.weight.value
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._x is not None, "forward must run before backward"
        x = self._x
        flat_x = x.reshape(-1, self.n_in)
        flat_dy = dy.reshape(-1, self.n_out)
        self.weight.grad += flat_x.T @ flat_dy
        if self.bias is not None:
            self.bias.grad += flat_dy.sum(axis=0)
        return (flat_dy @ self.weight.value.T).reshape(x.shape)


class OneHot(Module):
    """Encodes integer symbol ids as one-hot vectors (no parameters).

    ``dtype`` should follow the parameters of the layer the encoding feeds
    (a float32 model must project float32 activations); it defaults to
    float64, the parameter default.  The dense encoding only exists for the
    *training* path, whose BPTT needs the materialized input for its weight
    gradient -- inference sweeps use the bit-identical row gather in
    :mod:`repro.nn.kernels` instead and never build this tensor.
    """

    def __init__(self, n_symbols: int, dtype: np.dtype | str | None = None):
        self.n_symbols = n_symbols
        self.dtype = np.dtype(dtype) if dtype is not None \
            else np.dtype(np.float64)

    def forward(self, ids: np.ndarray) -> np.ndarray:
        # the training path's dense encoding; inference sweeps go through
        # kernels.gather_projection and never materialize this
        out = np.zeros(ids.shape + (self.n_symbols,), dtype=self.dtype)
        np.put_along_axis(out, ids[..., None], 1.0, axis=-1)  # repro: allow[REP009]
        return out

    def backward(self, dy: np.ndarray) -> None:
        return None  # integer inputs carry no gradient


class Embedding(Module):
    """Dense lookup table for integer symbol ids."""

    def __init__(self, n_symbols: int, dim: int, rng: np.random.Generator):
        self.n_symbols = n_symbols
        self.dim = dim
        self.weight = Parameter(
            rng.standard_normal((n_symbols, dim)) * 0.1, "embedding")
        self._ids: np.ndarray | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        self._ids = ids
        return kernels.gather_projection(ids, self.weight.value)

    def backward(self, dy: np.ndarray) -> None:
        assert self._ids is not None
        flat_ids = self._ids.reshape(-1)
        flat_dy = dy.reshape(-1, self.dim)
        np.add.at(self.weight.grad, flat_ids, flat_dy)
        return None


# ----------------------------------------------------------------------
# stateless activations
# ----------------------------------------------------------------------
#: the numerically stable sigmoid, in the branch-free form of
#: :mod:`repro.nn.kernels` (bit-identical to the historical masked
#: two-branch implementation; see the kernels module docstring)
sigmoid = kernels.sigmoid


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class Relu(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return dy * self._mask


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._y is not None
        return dy * (1.0 - self._y**2)
