"""Minibatch training loop with early stopping and epoch snapshots.

The paper trains its models "for up to 50 epochs with Keras early stopping"
and, for the inspection-across-epochs study (Appendix D / Figure 14),
captures model snapshots after chosen epochs.  ``snapshot_hook`` provides
that capture point.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.nn.optim import Adam
from repro.util.rng import new_rng


@dataclass
class TrainConfig:
    """Hyper-parameters for :func:`train_model`."""

    epochs: int = 10
    batch_size: int = 64
    lr: float = 1e-3
    patience: int = 3           # epochs without val improvement before stop
    validation_split: float = 0.1
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainResult:
    """Per-epoch history plus the best validation metrics."""

    train_loss: list[float] = field(default_factory=list)
    train_acc: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_acc: list[float] = field(default_factory=list)
    stopped_epoch: int = 0

    @property
    def best_val_acc(self) -> float:
        return max(self.val_acc) if self.val_acc else float("nan")


def train_model(model, inputs: np.ndarray, targets: np.ndarray,
                config: TrainConfig | None = None,
                aux_behavior: np.ndarray | None = None,
                snapshot_hook: Callable[[int, object], None] | None = None
                ) -> TrainResult:
    """Train any model exposing ``loss_and_grads`` / ``evaluate``.

    ``aux_behavior`` (records, time) is forwarded to specialized models.
    ``snapshot_hook(epoch, model)`` fires after each epoch, before the
    early-stopping check, so callers can deep-copy weights per epoch.
    """
    config = config or TrainConfig()
    rng = new_rng(config.seed)
    n = inputs.shape[0]
    n_val = max(1, int(n * config.validation_split)) if n > 4 else 0
    order = rng.permutation(n)
    val_idx, train_idx = order[:n_val], order[n_val:]

    optimizer = Adam(model.parameters(), lr=config.lr)
    result = TrainResult()
    best_val = float("inf")
    stale = 0

    for epoch in range(config.epochs):
        perm = rng.permutation(len(train_idx))
        epoch_loss, epoch_acc, n_batches = 0.0, 0.0, 0
        for start in range(0, len(perm), config.batch_size):
            batch = train_idx[perm[start:start + config.batch_size]]
            optimizer.zero_grad()
            if aux_behavior is not None:
                loss, acc = model.loss_and_grads(
                    inputs[batch], targets[batch],
                    aux_behavior=aux_behavior[batch])
            else:
                loss, acc = model.loss_and_grads(inputs[batch], targets[batch])
            optimizer.step()
            epoch_loss += loss
            epoch_acc += acc
            n_batches += 1

        result.train_loss.append(epoch_loss / max(1, n_batches))
        result.train_acc.append(epoch_acc / max(1, n_batches))

        if n_val:
            val_loss, val_acc = model.evaluate(
                inputs[val_idx], targets[val_idx])
        else:
            val_loss, val_acc = result.train_loss[-1], result.train_acc[-1]
        result.val_loss.append(val_loss)
        result.val_acc.append(val_acc)
        result.stopped_epoch = epoch

        if config.verbose:
            print(f"epoch {epoch}: loss={result.train_loss[-1]:.4f} "
                  f"acc={result.train_acc[-1]:.3f} val_acc={val_acc:.3f}")
        if snapshot_hook is not None:
            snapshot_hook(epoch, model)

        if val_loss < best_val - 1e-6:
            best_val = val_loss
            stale = 0
        else:
            stale += 1
            if stale >= config.patience:
                break
    return result
