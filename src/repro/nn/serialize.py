"""Model (de)serialization to a directory of ``arch.json`` + ``weights.npz``.

Mirrors the paper's workflow of loading pre-trained models
(``load_model('sql_char_model.h5')``): the architecture dictionary selects a
constructor from a registry and the flat parameter list is restored by
position.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.util.rng import new_rng


def save_model(model, path: str) -> None:
    """Persist ``model`` (anything exposing ``architecture()``) to ``path``."""
    os.makedirs(path, exist_ok=True)
    arch = model.architecture()
    with open(os.path.join(path, "arch.json"), "w", encoding="utf-8") as f:
        json.dump(arch, f, indent=2)
    arrays = {name: p.value for name, p in model.named_parameters().items()}
    np.savez(os.path.join(path, "weights.npz"), **arrays)


def _build_from_arch(arch: dict):
    """Instantiate an untrained model matching ``arch`` (registry dispatch)."""
    # local imports avoid a circular dependency with the model modules
    from repro.nn.models import CharLSTMModel, SpecializedLSTMModel
    from repro.nn.seq2seq import Seq2SeqModel

    rng = new_rng(0)  # weights are overwritten right after construction
    kind = arch["kind"]
    if kind == "char_lstm":
        return CharLSTMModel(arch["vocab_size"], arch["n_units"], rng,
                             model_id=arch["model_id"])
    if kind == "specialized_lstm":
        return SpecializedLSTMModel(
            arch["vocab_size"], arch["n_units"], rng,
            specialized_units=arch["specialized_units"],
            weight=arch["weight"], model_id=arch["model_id"])
    if kind == "seq2seq":
        return Seq2SeqModel(arch["src_vocab"], arch["tgt_vocab"],
                            arch["n_units"], rng, n_layers=arch["n_layers"],
                            emb_dim=arch["emb_dim"], pad_id=arch["pad_id"],
                            model_id=arch["model_id"])
    raise ValueError(f"unknown model kind {kind!r}")


def load_model(path: str):
    """Load a model previously written by :func:`save_model`."""
    with open(os.path.join(path, "arch.json"), encoding="utf-8") as f:
        arch = json.load(f)
    model = _build_from_arch(arch)
    with np.load(os.path.join(path, "weights.npz")) as data:
        named = model.named_parameters()
        missing = set(named) - set(data.files)
        if missing:
            raise ValueError(f"weights file missing parameters: {missing}")
        for name, param in named.items():
            stored = data[name]
            if stored.shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{stored.shape} vs {param.value.shape}")
            param.value = stored.astype(np.float64)
    return model


def clone_model(model):
    """Deep-copy a model by serializing through memory (epoch snapshots)."""
    arch = model.architecture()
    clone = _build_from_arch(arch)
    for src, dst in zip(model.parameters(), clone.parameters()):
        dst.value = src.value.copy()
    return clone


def model_to_spec(model) -> dict:
    """In-memory counterpart of :func:`save_model`: arch + named arrays.

    Used to ship models to worker processes as plain data (a registry
    architecture dict plus parameter ndarrays) instead of
    pickle-by-reference, so both fork and spawn contexts rebuild the same
    model without importing the defining module's live state.
    """
    arch = model.architecture()
    params = {name: np.asarray(p.value)
              for name, p in model.named_parameters().items()}
    return {"arch": arch, "params": params}


def model_from_spec(spec: dict):
    """Rebuild a model from :func:`model_to_spec` output.

    Unlike :func:`load_model` the parameter arrays are assigned verbatim
    (no dtype cast): a rebuilt worker-side model must produce activations
    bit-identical to the coordinator's original.
    """
    model = _build_from_arch(spec["arch"])
    named = model.named_parameters()
    missing = set(named) - set(spec["params"])
    if missing:
        raise ValueError(f"model spec missing parameters: {missing}")
    for name, param in named.items():
        value = spec["params"][name]
        if value.shape != param.value.shape:
            raise ValueError(f"shape mismatch for {name}: "
                             f"{value.shape} vs {param.value.shape}")
        param.value = value
    return model
