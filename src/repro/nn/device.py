"""Execution-device shim (GPU simulation).

The paper offloads merged affinity-model training to a GPU; the speedup comes
from batching many small per-hypothesis models into one large matrix
multiplication.  No GPU exists in this environment, so :class:`Device`
re-creates the *relative* cost structure:

* ``gpu``  -- merged operations run as single vectorized numpy calls
  (numpy's BLAS plays the role of the parallel device);
* ``cpu``  -- the same semantics executed column-group-at-a-time in a Python
  loop, modelling a scalar device that cannot batch across hypotheses.

Both devices compute identical results; only wall-clock differs, which is
what Figures 5-7 measure.
"""

from __future__ import annotations

import numpy as np

_VALID = ("cpu", "gpu")


class Device:
    """Dispatches dense linear algebra according to the device kind."""

    def __init__(self, kind: str = "gpu", cpu_chunk: int = 1):
        if kind not in _VALID:
            raise ValueError(f"unknown device {kind!r}; expected one of {_VALID}")
        self.kind = kind
        self.cpu_chunk = max(1, cpu_chunk)

    def __repr__(self) -> str:
        return f"Device({self.kind!r})"

    # ------------------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``a @ b`` -- on ``cpu``, computed per column group of ``b``."""
        if self.kind == "gpu" or b.ndim != 2 or b.shape[1] <= self.cpu_chunk:
            return a @ b
        out = np.empty((a.shape[0], b.shape[1]), dtype=np.result_type(a, b))
        for start in range(0, b.shape[1], self.cpu_chunk):
            stop = min(start + self.cpu_chunk, b.shape[1])
            out[:, start:stop] = a @ b[:, start:stop]
        return out

    def batched_outer_update(self, x: np.ndarray, d: np.ndarray) -> np.ndarray:
        """``x.T @ d`` (gradient of a merged linear layer)."""
        if self.kind == "gpu" or d.ndim != 2 or d.shape[1] <= self.cpu_chunk:
            return x.T @ d
        out = np.empty((x.shape[1], d.shape[1]), dtype=np.result_type(x, d))
        for start in range(0, d.shape[1], self.cpu_chunk):
            stop = min(start + self.cpu_chunk, d.shape[1])
            out[:, start:stop] = x.T @ d[:, start:stop]
        return out


_DEFAULT = Device("gpu")


def get_device(device: Device | str | None) -> Device:
    """Normalize a device argument (None -> default vectorized device)."""
    if device is None:
        return _DEFAULT
    if isinstance(device, Device):
        return device
    return Device(device)
