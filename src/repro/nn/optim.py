"""Gradient-descent optimizers: SGD (momentum) and Adam.

Adam uses the Keras default hyper-parameters the paper mentions
(lr=1e-3, beta1=0.9, beta2=0.999).  Both support optional L1/L2 penalties so
the logistic-regression affinity measures can be regularized the way the
paper's experiments are (L1 for unit-group selection, L2 for encoder-level
probes).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class: applies parameter updates from accumulated gradients."""

    def __init__(self, params: list[Parameter],
                 l1: float = 0.0, l2: float = 0.0):
        self.params = params
        self.l1 = l1
        self.l2 = l2

    def _regularized_grad(self, param: Parameter) -> np.ndarray:
        grad = param.grad
        if self.l2:
            grad = grad + self.l2 * param.value
        if self.l1:
            grad = grad + self.l1 * np.sign(param.value)
        return grad

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.1,
                 momentum: float = 0.0, l1: float = 0.0, l2: float = 0.0):
        super().__init__(params, l1=l1, l2=l2)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in params]

    def step(self) -> None:
        for param, vel in zip(self.params, self._velocity):
            grad = self._regularized_grad(param)
            if self.momentum:
                vel *= self.momentum
                vel -= self.lr * grad
                param.value += vel
            else:
                param.value -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (Keras defaults)."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-7,
                 l1: float = 0.0, l2: float = 0.0,
                 clip_norm: float | None = 5.0):
        super().__init__(params, l1=l1, l2=l2)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.clip_norm = clip_norm
        self._m = [np.zeros_like(p.value) for p in params]
        self._v = [np.zeros_like(p.value) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        if self.clip_norm is not None:
            total = np.sqrt(sum(float((p.grad**2).sum()) for p in self.params))
            scale = min(1.0, self.clip_norm / (total + 1e-12))
        else:
            scale = 1.0
        for param, m, v in zip(self.params, self._m, self._v):
            grad = self._regularized_grad(param) * scale
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
