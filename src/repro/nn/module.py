"""Parameter containers and the Module base class.

Layers own :class:`Parameter` objects (value + accumulated gradient) and
implement explicit ``forward``/``backward`` methods.  There is no autograd
tape: backward passes are hand-derived, which keeps the framework small and
the computational cost transparent -- a property the paper's runtime
benchmarks rely on.
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable array with an accumulated gradient."""

    def __init__(self, value: np.ndarray, name: str = "param"):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.value.shape})"


class Module:
    """Base class for layers and models.

    Subclasses register parameters as attributes (directly or inside child
    modules); :meth:`parameters` walks the attribute tree.
    """

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        seen: set[int] = set()
        self._collect(params, seen)
        return params

    def _collect(self, params: list[Parameter], seen: set[int]) -> None:
        if id(self) in seen:
            return
        seen.add(id(self))
        for attr in vars(self).values():
            if isinstance(attr, Parameter):
                if id(attr) not in seen:
                    seen.add(id(attr))
                    params.append(attr)
            elif isinstance(attr, Module):
                attr._collect(params, seen)
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        item._collect(params, seen)
                    elif isinstance(item, Parameter) and id(item) not in seen:
                        seen.add(id(item))
                        params.append(item)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def named_parameters(self) -> dict[str, Parameter]:
        """Stable name -> parameter mapping used by (de)serialization."""
        named: dict[str, Parameter] = {}
        for i, param in enumerate(self.parameters()):
            named[f"{i:03d}_{param.name}"] = param
        return named

    def n_parameters(self) -> int:
        return int(sum(p.value.size for p in self.parameters()))


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int,
           shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(rng: np.random.Generator, n: int, m: int) -> np.ndarray:
    """Orthogonal initialization (used for recurrent kernels)."""
    a = rng.standard_normal((max(n, m), min(n, m)))
    q, _ = np.linalg.qr(a)
    q = q[:n, :m] if q.shape[0] >= n else q.T[:n, :m]
    return q
