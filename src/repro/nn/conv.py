"""Convolutional layers for the CNN experiments (Appendix E).

A minimal im2col-based Conv2D plus max-pooling, enough to train the small
image classifier whose channel activation maps NetDissect and DeepBase
compare in Figure 15.  Layout is channels-last: (batch, height, width, ch).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter, glorot


def _im2col(x: np.ndarray, kh: int, kw: int) -> np.ndarray:
    """(batch, H, W, C) -> (batch, H-kh+1, W-kw+1, kh*kw*C) patch matrix."""
    batch, height, width, chans = x.shape
    out_h = height - kh + 1
    out_w = width - kw + 1
    shape = (batch, out_h, out_w, kh, kw, chans)
    strides = (x.strides[0], x.strides[1], x.strides[2],
               x.strides[1], x.strides[2], x.strides[3])
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    return patches.reshape(batch, out_h, out_w, kh * kw * chans)


class Conv2D(Module):
    """Valid-padding 2D convolution with ReLU handled by callers."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 rng: np.random.Generator):
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        fan_in = kernel * kernel * in_channels
        self.weight = Parameter(
            glorot(rng, fan_in, out_channels, (fan_in, out_channels)),
            "conv_w")
        self.bias = Parameter(np.zeros(out_channels), "conv_b")
        self._cols: np.ndarray | None = None
        self._in_shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        cols = _im2col(x, self.kernel, self.kernel)
        self._cols = cols
        return cols @ self.weight.value + self.bias.value

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._cols is not None and self._in_shape is not None
        batch, out_h, out_w, _ = dy.shape
        flat_dy = dy.reshape(-1, self.out_channels)
        flat_cols = self._cols.reshape(-1, self.weight.value.shape[0])
        self.weight.grad += flat_cols.T @ flat_dy
        self.bias.grad += flat_dy.sum(axis=0)

        dcols = (flat_dy @ self.weight.value.T).reshape(
            batch, out_h, out_w, self.kernel, self.kernel, self.in_channels)
        dx = np.zeros(self._in_shape)
        for ki in range(self.kernel):
            for kj in range(self.kernel):
                dx[:, ki:ki + out_h, kj:kj + out_w, :] += dcols[:, :, :, ki, kj, :]
        return dx


class MaxPool2D(Module):
    """Non-overlapping max pooling."""

    def __init__(self, size: int = 2):
        self.size = size
        self._x: np.ndarray | None = None
        self._argmax: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        s = self.size
        batch, height, width, chans = x.shape
        out_h, out_w = height // s, width // s
        x = x[:, :out_h * s, :out_w * s, :]
        self._x = x
        windows = x.reshape(batch, out_h, s, out_w, s, chans)
        windows = windows.transpose(0, 1, 3, 2, 4, 5).reshape(
            batch, out_h, out_w, s * s, chans)
        self._argmax = windows.argmax(axis=3)
        return windows.max(axis=3)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._x is not None and self._argmax is not None
        s = self.size
        batch, out_h, out_w, chans = dy.shape
        dwin = np.zeros((batch, out_h, out_w, s * s, chans))
        np.put_along_axis(dwin, self._argmax[:, :, :, None, :],
                          dy[:, :, :, None, :], axis=3)
        dwin = dwin.reshape(batch, out_h, out_w, s, s, chans)
        dwin = dwin.transpose(0, 1, 3, 2, 4, 5)
        return dwin.reshape(self._x.shape)


class GlobalAvgPool(Module):
    """Averages over the spatial axes: (b, h, w, c) -> (b, c)."""

    def __init__(self) -> None:
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(1, 2))

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        batch, height, width, chans = self._shape
        scale = 1.0 / (height * width)
        return np.broadcast_to(
            dy[:, None, None, :], self._shape).copy() * scale
