"""LSTM layer with full backpropagation-through-time.

The hidden state sequence ``H`` (batch, time, units) is both the layer output
and the *unit behavior* that Deep Neural Inspection extracts: unit ``u``'s
behavior on a record is ``H[record, :, u]`` (Section 3 of the paper).

``backward`` accepts the gradient with respect to every timestep's hidden
state, which lets callers attach losses anywhere in the sequence -- the
next-character head uses only the last step, while the specialized-unit
auxiliary loss of Appendix C supervises all steps.
"""

from __future__ import annotations

import numpy as np

from repro.nn import kernels
from repro.nn.layers import sigmoid
from repro.nn.module import Module, Parameter, glorot, orthogonal


class LSTM(Module):
    """Single-layer LSTM over (batch, time, n_in) inputs."""

    def __init__(self, n_in: int, n_units: int, rng: np.random.Generator):
        self.n_in = n_in
        self.n_units = n_units
        h = n_units
        self.w_x = Parameter(glorot(rng, n_in, 4 * h), "lstm_wx")
        self.w_h = Parameter(
            np.concatenate([orthogonal(rng, h, h) for _ in range(4)], axis=1),
            "lstm_wh")
        bias = np.zeros(4 * h)
        bias[h:2 * h] = 1.0  # forget-gate bias trick
        self.b = Parameter(bias, "lstm_b")
        self._cache: dict | None = None

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray,
                h0: np.ndarray | None = None,
                c0: np.ndarray | None = None, *,
                training: bool = True) -> np.ndarray:
        """Run the sequence; returns hidden states (batch, time, units).

        ``x`` is either a dense ``(batch, time, n_in)`` tensor or an
        integer ``(batch, time)`` id array; ids take the embedding-gather
        projection of :mod:`repro.nn.kernels` (bit-identical to one-hot @
        ``w_x`` without materializing the one-hot) and therefore require
        ``training=False`` -- BPTT's weight gradient needs the dense input.

        ``training=False`` runs the inference sweep: preallocated scratch,
        in-place kernels, no gate/cell history and no backward cache.  The
        hidden states are bit-identical to the training path's.
        """
        if x.ndim == 2 and np.issubdtype(x.dtype, np.integer):
            if training:
                raise ValueError(
                    "integer id input requires training=False: the BPTT "
                    "weight gradient needs the dense (one-hot) input")
            batch, time = x.shape
            x_proj = kernels.gather_projection(x, self.w_x.value,
                                               self.b.value)
        else:
            batch, time, _ = x.shape
            # hoist the input projection out of the time loop
            x_proj = x.reshape(-1, self.n_in) @ self.w_x.value
            x_proj = x_proj.reshape(batch, time, 4 * self.n_units) \
                + self.b.value

        if not training:
            hs = kernels.lstm_sweep(x_proj, self.w_h.value, self.n_units,
                                    h0, c0)
            # enough cache for last_hidden(); backward() rejects it
            self._cache = {"hs": hs, "inference": True}
            return hs

        h_dim = self.n_units
        dtype = x_proj.dtype  # buffers follow the parameters' dtype
        h_prev = np.zeros((batch, h_dim), dtype=dtype) if h0 is None else h0
        c_prev = np.zeros((batch, h_dim), dtype=dtype) if c0 is None else c0

        hs = np.empty((batch, time, h_dim), dtype=dtype)
        cs = np.empty((batch, time, h_dim), dtype=dtype)
        gates = np.empty((batch, time, 4 * h_dim), dtype=dtype)

        for t in range(time):
            z = x_proj[:, t] + h_prev @ self.w_h.value
            i = sigmoid(z[:, :h_dim])
            f = sigmoid(z[:, h_dim:2 * h_dim])
            o = sigmoid(z[:, 2 * h_dim:3 * h_dim])
            g = np.tanh(z[:, 3 * h_dim:])
            c_prev = f * c_prev + i * g
            h_prev = o * np.tanh(c_prev)
            hs[:, t] = h_prev
            cs[:, t] = c_prev
            gates[:, t, :h_dim] = i
            gates[:, t, h_dim:2 * h_dim] = f
            gates[:, t, 2 * h_dim:3 * h_dim] = o
            gates[:, t, 3 * h_dim:] = g

        self._cache = {
            "x": x, "hs": hs, "cs": cs, "gates": gates,
            "h0": np.zeros((batch, h_dim), dtype=dtype) if h0 is None else h0,
            "c0": np.zeros((batch, h_dim), dtype=dtype) if c0 is None else c0,
        }
        return hs

    # ------------------------------------------------------------------
    def backward(self, dh_out: np.ndarray,
                 dh_final: np.ndarray | None = None,
                 dc_final: np.ndarray | None = None) -> np.ndarray:
        """Backprop through time.

        ``dh_out`` is the loss gradient w.r.t. every hidden state
        (batch, time, units); pass zeros for unsupervised steps.  Returns the
        gradient with respect to the input sequence.
        """
        assert self._cache is not None, "forward must run before backward"
        assert not self._cache.get("inference"), \
            "backward needs a training-mode forward pass (training=True)"
        cache = self._cache
        x, hs, cs, gates = cache["x"], cache["hs"], cache["cs"], cache["gates"]
        batch, time, _ = x.shape
        h_dim = self.n_units

        dx = np.zeros_like(x)
        dtype = hs.dtype
        dh_next = (np.zeros((batch, h_dim), dtype=dtype)
                   if dh_final is None else dh_final.copy())
        dc_next = (np.zeros((batch, h_dim), dtype=dtype)
                   if dc_final is None else dc_final.copy())
        dw_x = np.zeros_like(self.w_x.value)
        dw_h = np.zeros_like(self.w_h.value)
        db = np.zeros_like(self.b.value)

        for t in range(time - 1, -1, -1):
            i = gates[:, t, :h_dim]
            f = gates[:, t, h_dim:2 * h_dim]
            o = gates[:, t, 2 * h_dim:3 * h_dim]
            g = gates[:, t, 3 * h_dim:]
            c_t = cs[:, t]
            c_prev = cs[:, t - 1] if t > 0 else cache["c0"]
            h_prev = hs[:, t - 1] if t > 0 else cache["h0"]

            dh = dh_out[:, t] + dh_next
            tanh_c = np.tanh(c_t)
            do = dh * tanh_c
            dc = dc_next + dh * o * (1.0 - tanh_c**2)
            df = dc * c_prev
            di = dc * g
            dg = dc * i

            dz = np.concatenate([
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                do * o * (1.0 - o),
                dg * (1.0 - g**2),
            ], axis=1)

            dw_x += x[:, t].T @ dz
            dw_h += h_prev.T @ dz
            db += dz.sum(axis=0)
            dx[:, t] = dz @ self.w_x.value.T
            dh_next = dz @ self.w_h.value.T
            dc_next = dc * f

        self.w_x.grad += dw_x
        self.w_h.grad += dw_h
        self.b.grad += db
        return dx

    # ------------------------------------------------------------------
    def last_hidden(self) -> np.ndarray:
        """Hidden state at the final timestep of the latest forward pass."""
        assert self._cache is not None
        return self._cache["hs"][:, -1]


class StackedLSTM(Module):
    """A stack of LSTM layers; exposes each layer's hidden sequence."""

    def __init__(self, n_in: int, n_units: int, n_layers: int,
                 rng: np.random.Generator):
        self.layers = [LSTM(n_in if k == 0 else n_units, n_units, rng)
                       for k in range(n_layers)]
        self.n_units = n_units
        self.n_layers = n_layers
        self._layer_outputs: list[np.ndarray] | None = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        out = x
        outputs = []
        for layer in self.layers:
            out = layer.forward(out, training=training)
            outputs.append(out)
        self._layer_outputs = outputs
        return out

    def backward(self, dh_out: np.ndarray) -> np.ndarray:
        grad = dh_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def layer_states(self) -> list[np.ndarray]:
        """Per-layer hidden sequences from the latest forward pass."""
        assert self._layer_outputs is not None
        return self._layer_outputs
