"""Loss functions.

``softmax_cross_entropy`` powers next-symbol prediction and translation;
``specialization_loss`` implements the auxiliary loss of Appendix C that
forces a subset of hidden units to track a hypothesis function
(``g_M = w * g_h + (1 - w) * g_T``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import softmax


def softmax_cross_entropy(logits: np.ndarray,
                          targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy from raw logits.

    ``logits`` has shape (..., n_classes); ``targets`` holds integer class
    ids of shape ``logits.shape[:-1]``.  Returns (loss, dlogits) where the
    gradient is already averaged over all target positions.
    """
    probs = softmax(logits, axis=-1)
    flat_probs = probs.reshape(-1, probs.shape[-1])
    flat_targets = targets.reshape(-1)
    n = flat_targets.shape[0]
    picked = flat_probs[np.arange(n), flat_targets]
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    dlogits = flat_probs.copy()
    dlogits[np.arange(n), flat_targets] -= 1.0
    dlogits /= n
    return loss, dlogits.reshape(logits.shape)


def mse_loss(pred: np.ndarray,
             target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error; returns (loss, dpred)."""
    diff = pred - target
    loss = float((diff**2).mean())
    dpred = 2.0 * diff / diff.size
    return loss, dpred


def specialization_loss(hidden: np.ndarray, unit_ids: np.ndarray,
                        target_behavior: np.ndarray) -> tuple[float, np.ndarray]:
    """Auxiliary loss forcing units ``unit_ids`` to emit ``target_behavior``.

    ``hidden`` is the full hidden sequence (batch, time, units);
    ``target_behavior`` is (batch, time) -- the hypothesis behavior each
    specialized unit should reproduce.  Returns (loss, dhidden) with zeros on
    non-specialized units.
    """
    sub = hidden[:, :, unit_ids]
    target = target_behavior[:, :, None]
    diff = sub - target
    loss = float((diff**2).mean())
    dhidden = np.zeros_like(hidden)
    dhidden[:, :, unit_ids] = 2.0 * diff / diff.size
    return loss, dhidden


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of positions where argmax(logits) equals the target id."""
    pred = logits.argmax(axis=-1)
    return float((pred == targets).mean())
