"""Concrete models used in the paper's experiments.

* :class:`CharLSTMModel` -- the SQL auto-completion model of Section 2.1:
  one-hot input layer, one LSTM layer, one fully connected layer with
  softmax loss that predicts the character following a fixed-size window.
* :class:`SpecializedLSTMModel` -- the Appendix C accuracy-benchmark model:
  identical architecture plus an auxiliary loss that forces a chosen subset
  of hidden units to reproduce a hypothesis function's behavior
  (``g_M = w * g_h + (1 - w) * g_T``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dense, OneHot
from repro.nn.losses import (accuracy, softmax_cross_entropy,
                             specialization_loss)
from repro.nn.module import Module
from repro.nn.recurrent import LSTM


class CharLSTMModel(Module):
    """Character-level next-symbol predictor (window -> next char)."""

    def __init__(self, vocab_size: int, n_units: int,
                 rng: np.random.Generator, model_id: str = "char_lstm"):
        self.model_id = model_id
        self.vocab_size = vocab_size
        self.n_units = n_units
        self.lstm = LSTM(vocab_size, n_units, rng)
        # the dense encoding only feeds the training path; its dtype
        # follows the LSTM parameters so a float32 model stays float32
        self.onehot = OneHot(vocab_size, dtype=self.lstm.w_x.value.dtype)
        self.head = Dense(n_units, vocab_size, rng)

    # ------------------------------------------------------------------
    def forward(self, ids: np.ndarray) -> np.ndarray:
        """Predict logits for the character following each window.

        Prediction never backprops, so the sweep runs the inference
        kernels (embedding-gather projection, no gate/cell history);
        :meth:`loss_and_grads` builds its own training-mode pass.
        """
        hs = self.lstm.forward(np.asarray(ids), training=False)
        return self.head.forward(hs[:, -1])

    def hidden_states(self, ids: np.ndarray) -> np.ndarray:
        """Per-symbol activations (batch, time, units) -- the DNI behavior.

        Runs the inference-mode sweep of :mod:`repro.nn.kernels`:
        bit-identical hidden states, no dense one-hot, no BPTT cache.
        """
        return self.lstm.forward(np.asarray(ids), training=False)

    def input_saliency(self, ids: np.ndarray,
                       unit: int | np.ndarray) -> np.ndarray:
        """Gradient-based saliency of each input symbol for a unit (group).

        Returns (batch, time): the L2 norm of d(sum of the unit's
        activations)/d(one-hot input) at each position -- the gradient
        behavior some DNI analyses use instead of activation magnitude.
        Parameter gradients touched by the backward pass are cleared.
        """
        unit_ids = np.atleast_1d(np.asarray(unit, dtype=int))
        x = self.onehot.forward(ids)
        hs = self.lstm.forward(x)
        dh = np.zeros_like(hs)
        dh[:, :, unit_ids] = 1.0
        dx = self.lstm.backward(dh)
        self.lstm.zero_grad()  # saliency must not perturb training state
        return np.linalg.norm(dx, axis=2)

    # ------------------------------------------------------------------
    def loss_and_grads(self, ids: np.ndarray,
                       targets: np.ndarray) -> tuple[float, float]:
        """Forward + backward for one minibatch; returns (loss, accuracy)."""
        x = self.onehot.forward(ids)
        hs = self.lstm.forward(x)
        logits = self.head.forward(hs[:, -1])
        loss, dlogits = softmax_cross_entropy(logits, targets)
        acc = accuracy(logits, targets)

        dh_last = self.head.backward(dlogits)
        dh_out = np.zeros_like(hs)
        dh_out[:, -1] = dh_last
        self.lstm.backward(dh_out)
        return loss, acc

    def evaluate(self, ids: np.ndarray, targets: np.ndarray) -> tuple[float, float]:
        """(loss, accuracy) without touching gradients."""
        logits = self.forward(ids)
        loss, _ = softmax_cross_entropy(logits, targets)
        return loss, accuracy(logits, targets)

    # ------------------------------------------------------------------
    def architecture(self) -> dict:
        """Serializable architecture description."""
        return {"kind": "char_lstm", "vocab_size": self.vocab_size,
                "n_units": self.n_units, "model_id": self.model_id}


class SpecializedLSTMModel(CharLSTMModel):
    """Next-symbol model with unit-specialization auxiliary loss.

    ``specialized_units`` indexes the hidden units that the auxiliary loss
    forces to track the provided per-symbol hypothesis behavior;
    ``weight`` is the paper's ``w`` mixing coefficient (default 0.5).
    """

    def __init__(self, vocab_size: int, n_units: int,
                 rng: np.random.Generator,
                 specialized_units: np.ndarray | list[int] | None = None,
                 weight: float = 0.5, model_id: str = "specialized_lstm"):
        super().__init__(vocab_size, n_units, rng, model_id=model_id)
        if specialized_units is None:
            specialized_units = np.arange(min(4, n_units))
        self.specialized_units = np.asarray(specialized_units, dtype=int)
        if not 0.0 <= weight <= 1.0:
            raise ValueError("specialization weight must be in [0, 1]")
        self.weight = weight

    def loss_and_grads(self, ids: np.ndarray, targets: np.ndarray,
                       aux_behavior: np.ndarray | None = None
                       ) -> tuple[float, float]:
        """One step of the mixed objective ``w*g_h + (1-w)*g_T``.

        ``aux_behavior`` is the hypothesis behavior matrix (batch, time);
        when omitted, falls back to the plain task loss.
        """
        if aux_behavior is None:
            return super().loss_and_grads(ids, targets)

        x = self.onehot.forward(ids)
        hs = self.lstm.forward(x)
        logits = self.head.forward(hs[:, -1])
        task_loss, dlogits = softmax_cross_entropy(logits, targets)
        acc = accuracy(logits, targets)
        aux_loss, dh_aux = specialization_loss(
            hs, self.specialized_units, aux_behavior)

        w = self.weight
        dh_last = self.head.backward(dlogits * (1.0 - w))
        dh_out = dh_aux * w
        dh_out[:, -1] += dh_last
        self.lstm.backward(dh_out)
        return w * aux_loss + (1.0 - w) * task_loss, acc

    def architecture(self) -> dict:
        arch = super().architecture()
        arch.update({"kind": "specialized_lstm",
                     "specialized_units": self.specialized_units.tolist(),
                     "weight": self.weight})
        return arch
