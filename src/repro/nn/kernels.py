"""Forward-sweep kernels: gather projections and inference-mode LSTM loops.

The extraction hot path (``model.hidden_states`` under a cold cache) spends
its time in three places the training-oriented layer code never optimized:
a dense one-hot matmul that multiplies mostly zeros, a masked stable
sigmoid whose boolean fancy indexing costs ~10x the arithmetic it guards,
and per-step history buffers (``cs``/``gates``) nobody reads at inference
time.  This module provides drop-in kernels for each, all **bit-identical**
to the layer implementations they replace:

* :func:`gather_projection` -- ``onehot(ids) @ W + b`` as a row gather of
  the pre-biased table ``W + b``.  A one-hot row's dot product with a
  weight column touches exactly one nonzero term, so the gather returns
  the same bits the matmul would (the pre-bias add is the same elementwise
  ``+ b`` the projection applies, just hoisted out of the batch).
* :func:`sigmoid` / :func:`sigmoid_into` -- the numerically stable sigmoid
  in branch-free form, ``exp(min(x, 0)) / (1 + exp(-|x|))``.  The
  numerator is exactly ``1.0`` where ``x >= 0`` and exactly ``exp(x)``
  where ``x < 0``, so every finite (and infinite) input produces the same
  bits as the masked two-branch form; only the sign of a NaN *payload* for
  NaN inputs may differ, which ``==`` cannot observe.
* :func:`lstm_sweep` -- the LSTM recurrence over a pre-projected input
  with preallocated scratch, in-place ``sigmoid``/``tanh`` and no gate or
  cell history.  Elementwise ops are applied in the training loop's
  evaluation order (IEEE addition is commutative bitwise on non-NaN
  values), so the hidden-state sequence matches the training forward pass
  bit for bit.

Scratch buffers are allocated per call: they are small next to the sweep
itself, and per-call allocation keeps the kernels thread-safe for the
pipeline's double-buffered (prefetching) extraction.
"""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function, branch-free.

    Bit-identical to the masked form ``where(x >= 0, 1/(1+exp(-x)),
    exp(x)/(1+exp(x)))`` on finite and infinite inputs (see module
    docstring), roughly 4x faster because no boolean fancy indexing runs.
    """
    e = np.exp(-np.abs(x))
    return np.exp(np.minimum(x, 0.0)) / (1.0 + e)


def sigmoid_into(x: np.ndarray, out: np.ndarray,
                 scratch: tuple[np.ndarray, np.ndarray] | None = None
                 ) -> np.ndarray:
    """Allocation-free :func:`sigmoid`: writes into ``out``.

    ``scratch`` is a pair of arrays shaped/typed like ``x`` (allocated on
    demand when omitted).  ``out`` may alias ``x``; the scratch arrays may
    not alias either.
    """
    if scratch is None:
        scratch = (np.empty_like(x), np.empty_like(x))
    den, num = scratch
    np.abs(x, out=den)
    np.negative(den, out=den)
    np.exp(den, out=den)
    np.add(den, 1.0, out=den)          # den = 1 + exp(-|x|)
    np.minimum(x, 0.0, out=num)
    np.exp(num, out=num)               # num = exp(min(x, 0))
    np.divide(num, den, out=out)
    return out


def gather_projection(ids: np.ndarray, weight: np.ndarray,
                      bias: np.ndarray | None = None) -> np.ndarray:
    """``onehot(ids) @ weight (+ bias)`` as a bit-identical row gather.

    ``ids`` is any integer index array; the result has shape
    ``ids.shape + (weight.shape[1],)`` and the weights' dtype.  With a
    bias, the table is pre-biased once (``weight + bias`` is the same
    elementwise add the projection would apply per row) so the gather
    already carries it.
    """
    table = weight if bias is None else weight + bias
    return table[ids]


def lstm_sweep(x_proj: np.ndarray, w_h: np.ndarray, n_units: int,
               h0: np.ndarray | None = None,
               c0: np.ndarray | None = None) -> np.ndarray:
    """Inference-only LSTM recurrence over a pre-projected input.

    ``x_proj`` is the biased input projection ``(batch, time, 4h)`` (gate
    order i, f, o, g -- the layout :class:`repro.nn.recurrent.LSTM` uses);
    returns the hidden-state sequence ``(batch, time, h)``, bit-identical
    to the training loop's ``hs``, without materializing gate or cell
    history and without allocating inside the time loop.
    """
    batch, time, four_h = x_proj.shape
    h = n_units
    assert four_h == 4 * h, "x_proj width must be 4 * n_units"
    dtype = x_proj.dtype
    hs = np.empty((batch, time, h), dtype=dtype)

    z = np.empty((batch, 4 * h), dtype=dtype)
    gates = np.empty((batch, 3 * h), dtype=dtype)
    scratch = (np.empty((batch, 3 * h), dtype=dtype),
               np.empty((batch, 3 * h), dtype=dtype))
    tmp = np.empty((batch, h), dtype=dtype)
    c = (np.zeros((batch, h), dtype=dtype) if c0 is None
         else c0.astype(dtype, copy=True))
    hbuf = (np.zeros((batch, h), dtype=dtype) if h0 is None
            else h0.astype(dtype, copy=True))

    for t in range(time):
        np.matmul(hbuf, w_h, out=z)
        z += x_proj[:, t]              # x_proj + h @ w_h, commuted
        # one fused sigmoid over the i|f|o block: elementwise, so the bits
        # match three per-gate calls on the same slices
        sigmoid_into(z[:, :3 * h], gates, scratch)
        g = z[:, 3 * h:]
        np.tanh(g, out=g)
        i = gates[:, :h]
        f = gates[:, h:2 * h]
        o = gates[:, 2 * h:3 * h]
        np.multiply(f, c, out=c)       # c = f * c_prev + i * g,
        np.multiply(i, g, out=tmp)     # in the training loop's order
        c += tmp
        np.tanh(c, out=hbuf)
        np.multiply(o, hbuf, out=hbuf)  # h = o * tanh(c)
        hs[:, t] = hbuf
    return hs
