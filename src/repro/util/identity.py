"""Stable content identities for cache keys.

Repr-based keys fail in both directions: numpy truncates large array reprs
(two different selectors alias), and object/function reprs embed
process-local addresses (the same hypothesis re-built in a new process
never matches, defeating the persistent store).  :func:`attr_identity`
renders a value as a string that is stable across processes and changes
whenever the *content* changes:

* arrays hash by bytes, containers recurse;
* plain functions hash their bytecode, constants, defaults and closed-over
  values — editing a hypothesis function's body invalidates behaviors
  persisted under its name;
* other objects use ``obj.cache_key()`` when they define one, and
  otherwise a depth-capped walk over their public attributes (never their
  repr).  Beyond the depth cap an object contributes only its type name —
  a deliberate trade: deep helper graphs stay cheap and address-free,
  while the enclosing dataset hash pins the data they were built from.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: how many levels of plain-object attributes contribute content
_OBJECT_DEPTH = 3

_PRIMITIVES = (str, bytes, int, float, complex, bool, type(None))


def attr_identity(value, depth: int = _OBJECT_DEPTH) -> str:
    """Stable textual identity for a cache-key attribute."""
    if isinstance(value, np.ndarray):
        digest = hashlib.sha1(
            np.ascontiguousarray(value).tobytes()).hexdigest()[:16]
        return f"ndarray{value.shape}:{value.dtype}:{digest}"
    if isinstance(value, (_PRIMITIVES, np.generic)):
        # isinstance-proven primitive: repr is exact and address-free
        return repr(value)  # repro: allow[REP003]
    if isinstance(value, (list, tuple)):
        inner = ", ".join(attr_identity(v, depth) for v in value)
        return f"{type(value).__name__}({inner})"
    if isinstance(value, dict):
        # sort by the keys' *content* identities — a repr sort key would
        # order object-keyed dicts by address, shuffling the rendered
        # identity from process to process
        inner = ", ".join(
            f"{attr_identity(k, depth)}: {attr_identity(v, depth)}"
            for k, v in sorted(value.items(),
                               key=lambda kv: attr_identity(kv[0], depth)))
        return f"dict({inner})"
    if isinstance(value, (set, frozenset)):
        inner = ", ".join(sorted(attr_identity(v, depth) for v in value))
        return f"{type(value).__name__}({inner})"
    if callable(value):
        return _callable_identity(value)
    return _object_identity(value, depth)


def _object_identity(value, depth: int) -> str:
    """Address-free identity for an arbitrary object."""
    key_of = getattr(value, "cache_key", None)
    if callable(key_of):
        return key_of()
    name = type(value).__name__
    attrs = getattr(value, "__dict__", None)
    if attrs is None:
        # C-implemented values (np.dtype, Path, datetime, ...) carry
        # meaningful address-free reprs; only the default object repr
        # (which embeds the address) is unsafe
        if type(value).__repr__ is not object.__repr__:
            # the guard above proves this is a custom (address-free) repr
            return repr(value)  # repro: allow[REP003]
        return f"obj:{name}"
    if depth <= 0:
        return f"obj:{name}"
    inner = ", ".join(
        f"{k}={attr_identity(v, depth - 1)}"
        for k, v in sorted(attrs.items()) if not k.startswith("_"))
    return f"obj:{name}({inner})"


#: how many levels of referenced global helper functions get folded in
_HELPER_DEPTH = 3


def _callable_identity(value, _seen: frozenset = frozenset(),
                       _depth: int = _HELPER_DEPTH) -> str:
    """Content identity of a callable: bytecode, constants, closure,
    defaults, and referenced global helpers.

    Two processes constructing the same function get the same identity; an
    edited body — including the body of a module-level helper the function
    calls, up to ``_HELPER_DEPTH`` levels deep — or a different
    closed-over value gets a new one.  Callables without introspectable
    code fall back to their qualified name.
    """
    code = getattr(value, "__code__", None)
    if code is None:  # bound methods / partials / callable objects
        func = getattr(value, "__func__", None)
        code = getattr(func, "__code__", None)
    name = getattr(value, "__qualname__", type(value).__name__)
    if code is None:
        return f"callable:{name}"
    digest = hashlib.sha1()
    _hash_code(digest, code)
    for cell in getattr(value, "__closure__", None) or ():
        try:
            digest.update(attr_identity(cell.cell_contents).encode())
        except ValueError:  # empty cell
            digest.update(b"<empty>")
    for default in getattr(value, "__defaults__", None) or ():
        digest.update(attr_identity(default).encode())
    for key, default in sorted(
            (getattr(value, "__kwdefaults__", None) or {}).items()):
        digest.update(f"{key}={attr_identity(default)}".encode())
    # fold in global helper *functions* the bytecode references by name:
    # editing a helper's body must invalidate callers' identities too
    # id() here is a *recursion guard* over live, referenced code objects
    # (kept alive by _seen's enclosing call), never part of the identity
    if _depth > 0 and id(code) not in _seen:  # repro: allow[REP003]
        seen = _seen | {id(code)}  # repro: allow[REP003]
        helpers = getattr(value, "__globals__", None) or {}
        for referenced in code.co_names:
            helper = helpers.get(referenced)
            if helper is not None and hasattr(helper, "__code__"):
                digest.update(f"{referenced}->".encode())
                digest.update(_callable_identity(
                    helper, _seen=seen, _depth=_depth - 1).encode())
    return f"fn:{name}:{digest.hexdigest()[:16]}"


def _hash_code(digest, code) -> None:
    """Fold a code object into ``digest`` by content.

    Nested code objects (inner defs, lambdas, comprehensions) appear in
    ``co_consts``, and *their* repr embeds a memory address — they must be
    recursed into, not repr'd, or the identity breaks across processes.
    """
    digest.update(code.co_code)
    for const in code.co_consts:
        if hasattr(const, "co_code"):
            _hash_code(digest, const)
        else:
            digest.update(_const_identity(const).encode())
    digest.update(",".join(code.co_names).encode())


def _const_identity(const) -> str:
    """Order-normalized identity for a code constant.

    Set literals compile to frozenset constants whose repr order follows
    hash randomization — sorting the element identities keeps the digest
    stable across processes.
    """
    if isinstance(const, frozenset):
        inner = ", ".join(sorted(_const_identity(c) for c in const))
        return f"frozenset({inner})"
    if isinstance(const, tuple):
        return f"({', '.join(_const_identity(c) for c in const)})"
    # code constants are compile-time literals (numbers, strings, None);
    # their reprs are exact and address-free by construction
    return repr(const)  # repro: allow[REP003]
