"""A light columnar table, the return type of :func:`repro.core.inspect`.

The paper's API returns a pandas DataFrame with schema
``(model_id, score_id, hyp_id, h_unit_id, val)``.  pandas is not available in
this environment, so :class:`Frame` provides the small relational surface the
experiments actually use: column access, row filtering, group-by aggregation,
sorting, joins on single keys, and CSV export.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np


class Frame:
    """An ordered mapping of column name -> list of values, equal lengths."""

    def __init__(self, columns: Mapping[str, Sequence[Any]] | None = None):
        self._cols: dict[str, list[Any]] = {}
        if columns:
            lengths = {len(v) for v in columns.values()}
            if len(lengths) > 1:
                raise ValueError(f"column lengths differ: {lengths}")
            for name, values in columns.items():
                self._cols[name] = list(values)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]],
                     columns: Sequence[str] | None = None) -> "Frame":
        """Build a frame from an iterable of dict rows.

        ``columns`` fixes the column order (and allows an empty frame with a
        known schema); otherwise the order of first appearance is used.
        """
        records = list(records)
        if columns is None:
            columns = []
            for rec in records:
                for key in rec:
                    if key not in columns:
                        columns.append(key)
        frame = cls()
        for col in columns:
            frame._cols[col] = [rec.get(col) for rec in records]
        return frame

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        return list(self._cols)

    def __len__(self) -> int:
        if not self._cols:
            return 0
        return len(next(iter(self._cols.values())))

    def __getitem__(self, name: str) -> list[Any]:
        return self._cols[name]

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        return self._cols == other._cols

    def __repr__(self) -> str:
        return f"Frame({len(self)} rows x {len(self._cols)} cols: {self.columns})"

    def rows(self) -> list[dict[str, Any]]:
        """Materialize the frame as a list of dict rows."""
        names = self.columns
        return [dict(zip(names, vals)) for vals in zip(*self._cols.values())] \
            if self._cols else []

    def row(self, i: int) -> dict[str, Any]:
        return {name: col[i] for name, col in self._cols.items()}

    def column(self, name: str, dtype=None) -> np.ndarray:
        """Return a column as a numpy array (optionally cast)."""
        arr = np.asarray(self._cols[name])
        if dtype is not None:
            arr = arr.astype(dtype)
        return arr

    # ------------------------------------------------------------------
    # relational-ish operators
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "Frame":
        """Return the rows for which ``predicate(row)`` is true."""
        return Frame.from_records(
            [r for r in self.rows() if predicate(r)], columns=self.columns)

    def where(self, **conditions: Any) -> "Frame":
        """Shorthand equality filter: ``frame.where(score_id="corr")``."""
        def pred(row: dict[str, Any]) -> bool:
            return all(row.get(k) == v for k, v in conditions.items())
        return self.filter(pred)

    def select(self, *names: str) -> "Frame":
        frame = Frame()
        for name in names:
            frame._cols[name] = list(self._cols[name])
        return frame

    def with_column(self, name: str, values: Sequence[Any]) -> "Frame":
        if self._cols and len(values) != len(self):
            raise ValueError(
                f"column {name!r} has {len(values)} values, frame has {len(self)} rows")
        frame = Frame(self._cols)
        frame._cols[name] = list(values)
        return frame

    def sort(self, by: str, reverse: bool = False) -> "Frame":
        order = sorted(range(len(self)), key=lambda i: self._cols[by][i],
                       reverse=reverse)
        frame = Frame()
        for name, col in self._cols.items():
            frame._cols[name] = [col[i] for i in order]
        return frame

    def head(self, n: int) -> "Frame":
        frame = Frame()
        for name, col in self._cols.items():
            frame._cols[name] = col[:n]
        return frame

    def groupby(self, keys: str | Sequence[str],
                aggs: Mapping[str, tuple[str, Callable[[list], Any]]]) -> "Frame":
        """Hash group-by.

        ``aggs`` maps output column -> (input column, aggregation function).
        """
        if isinstance(keys, str):
            keys = [keys]
        groups: dict[tuple, list[int]] = {}
        for i in range(len(self)):
            key = tuple(self._cols[k][i] for k in keys)
            groups.setdefault(key, []).append(i)
        records = []
        for key, idxs in groups.items():
            rec = dict(zip(keys, key))
            for out_name, (in_name, fn) in aggs.items():
                rec[out_name] = fn([self._cols[in_name][i] for i in idxs])
            records.append(rec)
        return Frame.from_records(records)

    def join(self, other: "Frame", on: str, suffix: str = "_r") -> "Frame":
        """Inner hash join on a single key column."""
        index: dict[Any, list[int]] = {}
        for j in range(len(other)):
            index.setdefault(other._cols[on][j], []).append(j)
        records = []
        for i in range(len(self)):
            key = self._cols[on][i]
            for j in index.get(key, []):
                rec = self.row(i)
                for name, col in other._cols.items():
                    if name == on:
                        continue
                    out = name if name not in rec else name + suffix
                    rec[out] = col[j]
                records.append(rec)
        return Frame.from_records(records)

    def concat(self, other: "Frame") -> "Frame":
        """Stack two frames with identical schemas."""
        if other.columns != self.columns:
            if not self._cols:
                return Frame(other._cols)
            if not other._cols:
                return Frame(self._cols)
            raise ValueError(f"schema mismatch: {self.columns} vs {other.columns}")
        frame = Frame()
        for name in self.columns:
            frame._cols[name] = self._cols[name] + other._cols[name]
        return frame

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(",".join(self.columns) + "\n")
            for row in self.rows():
                f.write(",".join(str(row[c]) for c in self.columns) + "\n")

    def to_string(self, max_rows: int = 20, float_fmt: str = "{:.4f}") -> str:
        """Readable fixed-width rendering (used by benches to print tables)."""
        def fmt(v: Any) -> str:
            if isinstance(v, float):
                return float_fmt.format(v)
            return str(v)

        names = self.columns
        shown = self.rows()[:max_rows]
        cells = [[fmt(r[c]) for c in names] for r in shown]
        widths = [max([len(n)] + [len(row[i]) for row in cells])
                  for i, n in enumerate(names)]
        lines = ["  ".join(n.ljust(w) for n, w in zip(names, widths))]
        for row in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        if len(self) > max_rows:
            lines.append(f"... ({len(self) - max_rows} more rows)")
        return "\n".join(lines)
