"""Observability hook for graceful-degradation fallbacks.

The repro layers degrade gracefully by design — an unpicklable model is
re-encoded inline, a vanished shard re-extracts, an unserializable table
stays memory-only.  Correct results either way, but a *systematic*
failure (every model suddenly unpicklable) must not be invisible.  Every
broad except fallback therefore routes through :func:`degraded`, which

* logs on the ``repro.degrade`` logger (DEBUG by default, so quiet
  unless the host application opts in),
* counts per event name, queryable via :func:`degradation_counts` —
  tests assert on these instead of parsing logs,
* echoes to stderr when ``REPRO_DEBUG`` is set in the environment.

The static analyzer (REP005, ``silent-degradation``) enforces that broad
exception handlers call this hook (or re-raise).
"""

from __future__ import annotations

import logging
import os
import threading
from collections import Counter

logger = logging.getLogger("repro.degrade")

_lock = threading.Lock()
_counts: Counter = Counter()


def degraded(event: str, detail: str = "", *,
             exc: BaseException | None = None) -> None:
    """Record that a graceful-degradation fallback was taken.

    ``event`` is a stable dotted name (``shard.model-unpicklable``);
    ``detail`` carries instance specifics.  Pass the swallowed exception
    as ``exc`` so opted-in logging shows the cause.
    """
    with _lock:
        _counts[event] += 1
    message = f"degraded: {event}" + (f" ({detail})" if detail else "")
    if exc is not None:
        message += f" [{type(exc).__name__}: {exc}]"
    logger.debug(message)
    if os.environ.get("REPRO_DEBUG"):
        import sys
        print(message, file=sys.stderr)


def degradation_counts() -> dict[str, int]:
    """Snapshot of fallback counts per event since the last reset."""
    with _lock:
        return dict(_counts)


def reset_degradation_counts() -> None:
    with _lock:
        _counts.clear()
