"""Record-block iteration used by the streaming execution engine.

The paper processes behavior matrices in blocks of ``nb`` records (default
512) that have been shuffled record-wise on disk, then shuffles symbol-wise in
memory (Section 5.2.2).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np


def iter_blocks(n_items: int, block_size: int) -> Iterator[slice]:
    """Yield contiguous slices covering ``range(n_items)``."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    for start in range(0, n_items, block_size):
        yield slice(start, min(start + block_size, n_items))


def shuffled_record_order(n_records: int,
                          rng: np.random.Generator) -> np.ndarray:
    """Record-wise shuffle order, mimicking shuffled on-disk layout."""
    order = np.arange(n_records)
    rng.shuffle(order)
    return order


def shuffle_symbolwise(arrays: Sequence[np.ndarray],
                       rng: np.random.Generator) -> list[np.ndarray]:
    """Apply one shared row permutation to aligned (n_symbols, k) matrices."""
    if not arrays:
        return []
    n = arrays[0].shape[0]
    for arr in arrays:
        if arr.shape[0] != n:
            raise ValueError("arrays must share their first dimension")
    perm = rng.permutation(n)
    return [arr[perm] for arr in arrays]
