"""Deterministic random-number management.

Every stochastic component in the library (PCFG sampling, weight
initialization, SGD shuffling, perturbation sampling) receives an explicit
``numpy.random.Generator``.  Centralizing construction here keeps experiments
reproducible: a single integer seed fans out to independent child streams.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20190107  # the arXiv v4 date of the paper


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Return a fresh generator seeded with ``seed`` (or the default seed)."""
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent child generators."""
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
