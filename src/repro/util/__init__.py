"""Shared utilities: result frames, RNG control, timing, block iteration."""

from repro.util.blocks import iter_blocks
from repro.util.debuglog import (degradation_counts, degraded,
                                 reset_degradation_counts)
from repro.util.frame import Frame
from repro.util.rng import new_rng, spawn_rngs
from repro.util.timing import Stopwatch, Timer

__all__ = ["Frame", "Stopwatch", "Timer", "degradation_counts", "degraded",
           "iter_blocks", "new_rng", "reset_degradation_counts", "spawn_rngs"]
