"""Wall-clock instrumentation for the runtime-breakdown experiments.

Figure 8 of the paper splits DeepBase runtime into *unit extraction*,
*hypothesis extraction* and *inspection* costs.  The pipeline charges time to
named buckets through a :class:`Stopwatch`, so benches can report the same
breakdown without profiling machinery.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class Timer:
    """Context manager measuring one elapsed interval."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


class Stopwatch:
    """Accumulates wall-clock time into named buckets."""

    def __init__(self) -> None:
        self.buckets: dict[str, float] = {}

    @contextmanager
    def charge(self, bucket: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.buckets[bucket] = (
                self.buckets.get(bucket, 0.0) + time.perf_counter() - start)

    def total(self) -> float:
        return sum(self.buckets.values())

    def breakdown(self) -> dict[str, float]:
        return dict(self.buckets)

    def reset(self) -> None:
        self.buckets.clear()
