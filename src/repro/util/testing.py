"""Instrumentation helpers shared by the test suite and the benchmarks."""

from __future__ import annotations


class CountingForwardModel:
    """Delegating model wrapper that counts ``hidden_states`` sweeps.

    Parameters are delegated, so the fingerprint (and therefore every
    cache/store key) matches the wrapped model's — warm paths are asserted
    by watching ``forward_calls`` stay at zero.

    The counter is scheduler-agnostic: under the process scheduler the
    sweeps run in worker processes, and the shard exchange folds each
    task's worker-side sweep count back into the live coordinator model's
    ``forward_calls`` attribute (any model carrying an integer
    ``forward_calls`` participates in that convention), so
    extraction-once assertions hold whether extraction ran in this
    process or a pool.  ``architecture()`` / ``named_parameters()`` are
    delegated too, so registry-backed models still travel to workers as
    arch specs instead of pickled wrappers.
    """

    def __init__(self, model):
        self._model = model
        self.model_id = model.model_id
        self.n_units = model.n_units
        self.forward_calls = 0

    def parameters(self):
        return self._model.parameters()

    def architecture(self):
        return self._model.architecture()

    def named_parameters(self):
        return self._model.named_parameters()

    def hidden_states(self, ids):
        self.forward_calls += 1
        return self._model.hidden_states(ids)
