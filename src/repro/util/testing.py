"""Instrumentation helpers shared by the test suite and the benchmarks."""

from __future__ import annotations


class CountingForwardModel:
    """Delegating model wrapper that counts ``hidden_states`` sweeps.

    Parameters are delegated, so the fingerprint (and therefore every
    cache/store key) matches the wrapped model's — warm paths are asserted
    by watching ``forward_calls`` stay at zero.
    """

    def __init__(self, model):
        self._model = model
        self.model_id = model.model_id
        self.n_units = model.n_units
        self.forward_calls = 0

    def parameters(self):
        return self._model.parameters()

    def hidden_states(self, ids):
        self.forward_calls += 1
        return self._model.hidden_states(ids)
