"""Dataset containers and workload generators."""

from repro.data.datasets import Dataset, Vocab
from repro.data.sql_gen import (SqlWorkload, generate_parens_workload,
                                generate_sql_workload)

__all__ = [
    "Dataset",
    "SqlWorkload",
    "Vocab",
    "generate_parens_workload",
    "generate_sql_workload",
]
