"""Dataset model of the paper's problem setup (Section 3).

A dataset ``D`` is an ``nd x ns`` matrix of symbols: every record is a
fixed-size window of symbol ids, null-padded with the ``~`` character the
paper uses.  Records keep provenance metadata (source string, offset, parse
tree) so hypothesis functions can label window characters from the parse of
the full underlying string.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

PAD_CHAR = "~"


class Vocab:
    """Bidirectional char <-> id mapping; id 0 is always the pad symbol."""

    def __init__(self, chars: list[str] | str, pad: str = PAD_CHAR):
        ordered = [pad] + [c for c in dict.fromkeys(chars) if c != pad]
        self._id_of = {c: i for i, c in enumerate(ordered)}
        self._char_of = ordered
        self.pad_id = 0
        self.pad_char = pad

    def __len__(self) -> int:
        return len(self._char_of)

    def __contains__(self, char: str) -> bool:
        return char in self._id_of

    def encode(self, text: str) -> np.ndarray:
        try:
            return np.array([self._id_of[c] for c in text], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"character {exc.args[0]!r} not in vocab") from exc

    def decode(self, ids: np.ndarray) -> str:
        return "".join(self._char_of[int(i)] for i in ids)

    def char(self, idx: int) -> str:
        return self._char_of[idx]

    def to_dict(self) -> dict:
        return {"chars": self._char_of[1:], "pad": self.pad_char}

    @classmethod
    def from_dict(cls, data: dict) -> "Vocab":
        return cls(data["chars"], pad=data["pad"])


@dataclass
class Dataset:
    """An ``nd x ns`` symbol matrix plus provenance metadata.

    ``meta[i]`` describes record ``i``; for windowed workloads it includes
    ``source_id`` (index of the underlying string), ``offset`` (window start
    within that string, negative while inside left padding) and ``text``
    (the raw window string including padding).
    """

    symbols: np.ndarray
    vocab: Vocab
    meta: list[dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.symbols.ndim != 2:
            raise ValueError("symbols must be a 2-D (records x symbols) matrix")
        if self.meta and len(self.meta) != self.symbols.shape[0]:
            raise ValueError("meta length must match the number of records")
        if not self.meta:
            self.meta = [{} for _ in range(self.symbols.shape[0])]

    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return int(self.symbols.shape[0])

    @property
    def n_symbols(self) -> int:
        """Symbols per record (the paper's ``ns``)."""
        return int(self.symbols.shape[1])

    def __len__(self) -> int:
        return self.n_records

    def record_text(self, i: int) -> str:
        meta_text = self.meta[i].get("text")
        if meta_text is not None:
            return meta_text
        return self.vocab.decode(self.symbols[i])

    def subset(self, indices: np.ndarray | list[int] | slice) -> "Dataset":
        if isinstance(indices, slice):
            indices = range(*indices.indices(self.n_records))
        indices = list(indices)
        return Dataset(symbols=self.symbols[indices],
                       vocab=self.vocab,
                       meta=[self.meta[i] for i in indices])

    def head(self, n: int) -> "Dataset":
        return self.subset(slice(0, n))

    def cache_key(self) -> str:
        """Stable content hash (used by the hypothesis-behavior cache)."""
        key = getattr(self, "_cache_key", None)
        if key is None:
            digest = hashlib.sha1(self.symbols.tobytes())
            digest.update(str(self.symbols.shape).encode())
            key = digest.hexdigest()
            self._cache_key = key
        return key
