"""Workload generation for the scalability and accuracy benchmarks.

Reproduces the paper's construction: sample strings from a PCFG, left-pad
them with ``~``, and cut sliding windows of ``ns`` symbols with stride 5.
Each window record's prediction target is the character that follows it
(the auto-completion task of Section 2.1).  The default benchmark setting in
the paper uses ns=30, stride=5 and 29,696 records; sizes here are explicit
parameters so both scaled-down and paper-scale runs use the same code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import PAD_CHAR, Dataset, Vocab
from repro.grammar.cfg import Grammar
from repro.grammar.parens import parens_grammar
from repro.grammar.sampling import GrammarSampler
from repro.grammar.sql import sql_grammar
from repro.grammar.tree import ParseNode


@dataclass
class SqlWorkload:
    """Everything a benchmark needs: windows, targets and provenance."""

    dataset: Dataset
    targets: np.ndarray          # next-char id for every window record
    queries: list[str]           # underlying source strings
    trees: list[ParseNode]       # derivation trees (cached-parse mode)
    grammar: Grammar

    @property
    def vocab(self) -> Vocab:
        return self.dataset.vocab


def _windows_from_strings(strings: list[str], trees: list[ParseNode],
                          vocab: Vocab, window: int, stride: int,
                          max_records: int | None) -> tuple[Dataset, np.ndarray]:
    records: list[np.ndarray] = []
    targets: list[int] = []
    meta: list[dict] = []
    for sid, text in enumerate(strings):
        padded = PAD_CHAR * window + text
        ids = vocab.encode(padded)
        # window [start, start+window) predicts padded[start+window]
        for start in range(0, len(text), stride):
            target_pos = start + window
            if target_pos >= len(padded):
                break
            records.append(ids[start:target_pos])
            targets.append(int(ids[target_pos]))
            meta.append({
                "source_id": sid,
                "offset": start - window,  # offset of window[0] in raw text
                "text": padded[start:target_pos],
            })
            if max_records is not None and len(records) >= max_records:
                symbols = np.stack(records)
                return (Dataset(symbols, vocab, meta),
                        np.asarray(targets, dtype=np.int64))
    if not records:
        raise ValueError("no windows produced; strings too short?")
    symbols = np.stack(records)
    return Dataset(symbols, vocab, meta), np.asarray(targets, dtype=np.int64)


def generate_sql_workload(grammar: Grammar | str = "default",
                          n_queries: int = 100,
                          window: int = 30, stride: int = 5,
                          max_records: int | None = None,
                          rng: np.random.Generator | None = None,
                          seed: int = 0) -> SqlWorkload:
    """Sample SQL queries and window them into an inspection dataset."""
    if isinstance(grammar, str):
        grammar = sql_grammar(grammar)
    if rng is None:
        rng = np.random.default_rng(seed)
    sampler = GrammarSampler(grammar, rng)
    pairs = sampler.sample_corpus(n_queries)
    strings = [text for text, _ in pairs]
    trees = [tree for _, tree in pairs]
    vocab = Vocab(grammar.alphabet())
    dataset, targets = _windows_from_strings(
        strings, trees, vocab, window, stride, max_records)
    return SqlWorkload(dataset=dataset, targets=targets, queries=strings,
                       trees=trees, grammar=grammar)


def generate_parens_workload(n_strings: int = 200,
                             window: int = 20, stride: int = 2,
                             max_records: int | None = None,
                             min_length: int = 6,
                             rng: np.random.Generator | None = None,
                             seed: int = 0) -> SqlWorkload:
    """Appendix C workload: windows over nested-parentheses strings."""
    grammar = parens_grammar()
    if rng is None:
        rng = np.random.default_rng(seed)
    sampler = GrammarSampler(grammar, rng)
    strings: list[str] = []
    trees: list[ParseNode] = []
    while len(strings) < n_strings:
        text, tree = sampler.sample()
        if len(text) >= min_length:
            strings.append(text)
            trees.append(tree)
    vocab = Vocab(grammar.alphabet())
    dataset, targets = _windows_from_strings(
        strings, trees, vocab, window, stride, max_records)
    return SqlWorkload(dataset=dataset, targets=targets, queries=strings,
                       trees=trees, grammar=grammar)
