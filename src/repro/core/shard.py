"""Picklable shard tasks + the process-pool exchange (coordinator side).

The process scheduler cannot ship closures over live plan objects to
workers, so a plan's extraction work is first *described* as
self-contained :class:`ShardTask` values — plain data: store keys, record
ids, symbol sub-matrices, and models/extractors/hypotheses encoded by
content (:func:`repro.nn.serialize.model_to_spec` for registry models,
pickle-by-value otherwise) — and only then *executed*.  One task is one
dataset-block chunk of one (model, raw-extractor) pair, or a bundle of
hypothesis columns.

The mmap'd :class:`~repro.store.DiskBehaviorStore` is the exchange
medium, with a strict division of labor:

* **workers** (:func:`run_shard_task`) run the raw sweeps and write
  fsynced shard file pairs straight into the store's shard directory —
  they never touch the manifest, so the flock'd single-commit-point
  protocol is untouched;
* the **coordinator** (:class:`ShardExchange`) adopts the returned shard
  descriptors into the store's pending queue (one manifest rewrite per
  run, exactly as serial), memory-maps the shard files to fill the
  session's memory-tier caches, and folds worker-side counters
  (extractions, forward sweeps) back into the live objects so
  extraction-once assertions stay meaningful.

Scoring and convergence never leave the coordinator: once the caches are
filled, the unchanged serial executor loop reads behaviors out of them,
which is what keeps process-scheduler frames bit-identical to serial.

Anything that cannot be described — an unpicklable model or hypothesis,
an extractor without a stable raw identity, a failed worker — simply
stays out of the task list (or is dropped on collect): the records are
then extracted inline by the executor exactly as under the serial
scheduler, so degradation is graceful and never changes results.
"""

from __future__ import annotations

import itertools
import os
import pickle
import uuid
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.cache import (HypothesisCache, hyp_store_key, unit_store_key)
from repro.extract.base import raw_rows_of
from repro.store.disk import SHARD_DIR, _save_array
from repro.util.debuglog import degraded
from repro.util.timing import Stopwatch

#: per-worker-process sequence for shard file stems
_WORKER_SEQ = itertools.count()

#: per-worker-process decode cache: store-key prefix -> (model, extractor),
#: ("ds", dataset_key) -> dataset.  Pools are long-lived, so one pair
#: shipped in k chunks is decoded once per worker, not once per task.
_WORKER_OBJECTS: dict = {}


# ----------------------------------------------------------------------
# payload encoding (coordinator) / decoding (worker)
# ----------------------------------------------------------------------
def encode_model(model) -> dict:
    """Model as plain data: an arch spec when possible, pickle otherwise.

    Registry models (anything with ``architecture()`` +
    ``named_parameters()``) travel as content — arch dict + exact
    parameter arrays — so spawn contexts rebuild them without importing
    the coordinator's live state; everything else falls back to
    pickle-by-value.  Raises when neither works (the caller then leaves
    those records to inline extraction).
    """
    arch = getattr(model, "architecture", None)
    named = getattr(model, "named_parameters", None)
    if callable(arch) and callable(named):
        try:
            from repro.nn.serialize import model_to_spec
            return {"kind": "spec", "spec": model_to_spec(model)}
        except Exception as exc:  # non-registry arch: fall through to pickle
            degraded("shard.model-spec-fallback",
                     type(model).__name__, exc=exc)
    return {"kind": "pickle", "blob": pickle.dumps(model)}


def decode_model(payload: dict):
    if payload["kind"] == "spec":
        from repro.nn.serialize import model_from_spec
        return model_from_spec(payload["spec"])
    return pickle.loads(payload["blob"])


class _SweepCounter:
    """Delegating wrapper counting ``hidden_states`` sweeps in a worker.

    The count travels back in the task result so the coordinator can fold
    it into the live model (see ``ShardExchange._collect``), keeping
    ``forward_calls``-style instrumentation meaningful across processes.
    """

    def __init__(self, model):
        self._model = model
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self._model, name)

    def hidden_states(self, ids):
        self.calls += 1
        return self._model.hidden_states(ids)


# ----------------------------------------------------------------------
# the task (plain, picklable data)
# ----------------------------------------------------------------------
@dataclass
class ShardTask:
    """One self-contained unit of extraction work for a worker process.

    ``kind == "unit"``: run one raw sweep over ``symbols`` (the dataset
    rows for ``indices``, already sliced so workers never need the full
    dataset) and persist the flat raw rows under ``store_key``.

    ``kind == "hyp"``: evaluate a bundle of hypothesis columns
    (``items``) over the pickled dataset.
    """

    kind: str                       # "unit" | "hyp"
    store_root: str                 # exchange store root directory
    n_records: int                  # dataset record count (entry geometry)
    n_symbols: int
    # unit tasks
    store_key: str | None = None
    model_payload: dict | None = None
    extractor_blob: bytes | None = None
    indices: np.ndarray | None = None   # record ids to extract
    symbols: np.ndarray | None = None   # dataset.symbols[indices]
    # hypothesis tasks: [(store_key, hypothesis_blob, record ids), ...]
    dataset_key: str | None = None
    dataset_blob: bytes | None = None
    items: list = field(default_factory=list)


def _write_worker_shard(store_root: str, store_key: str,
                        indices: np.ndarray, rows: np.ndarray,
                        n_records: int) -> dict:
    """Write one fsynced shard file pair; return its adoption descriptor.

    Stems carry a ``w`` prefix plus pid, a per-process sequence and a
    random component, so concurrent workers (and leftovers of crashed
    runs) can never collide with each other or with the coordinator's
    clock-stemmed shards.
    """
    shard_dir = Path(store_root) / SHARD_DIR
    shard_dir.mkdir(parents=True, exist_ok=True)
    stem = f"w{os.getpid()}-{next(_WORKER_SEQ)}-{uuid.uuid4().hex[:8]}"
    data_name = f"{stem}.npy"
    index_name = f"{stem}.idx.npy"
    rows = np.ascontiguousarray(rows)
    indices = np.asarray(indices, dtype=np.int64)
    data_bytes = _save_array(shard_dir / data_name, rows)
    index_bytes = _save_array(shard_dir / index_name, indices)
    return {"key": store_key, "data": data_name, "index": index_name,
            "rows": int(rows.shape[0]), "data_bytes": data_bytes,
            "index_bytes": index_bytes, "n_records": int(n_records),
            "row_width": int(rows.shape[1]), "dtype": rows.dtype.str}


def run_shard_task(task: ShardTask) -> dict:
    """Worker entry point: execute one task, return descriptors + counts.

    Module-level (importable) so both fork and spawn pool contexts can
    run it.  Returns ``{"descriptors": [...], "extractions": n,
    "forward_sweeps": n}``.
    """
    if task.kind == "unit":
        return _run_unit_task(task)
    if task.kind == "hyp":
        return _run_hyp_task(task)
    raise ValueError(f"unknown shard task kind {task.kind!r}")


def _run_unit_task(task: ShardTask) -> dict:
    pair_key = task.store_key.rsplit("/", 1)[0]
    cached = _WORKER_OBJECTS.get(pair_key)
    if cached is None:
        cached = (decode_model(task.model_payload),
                  pickle.loads(task.extractor_blob))
        _WORKER_OBJECTS[pair_key] = cached
    model, extractor = cached
    counter = _SweepCounter(model)
    ns = task.n_symbols
    block = raw_rows_of(extractor, counter, task.symbols)
    if block.shape[0] != task.indices.shape[0] * ns:
        raise ValueError(
            f"extractor row mismatch: expected {task.indices.shape[0] * ns} "
            f"rows, got {block.shape[0]}")
    # same flat layout the unit cache commits/persists: one row per record
    rows = np.ascontiguousarray(block).reshape(task.indices.shape[0], -1)
    desc = _write_worker_shard(task.store_root, task.store_key,
                               task.indices, rows, task.n_records)
    return {"descriptors": [desc], "extractions": 1,
            "forward_sweeps": counter.calls}


def _run_hyp_task(task: ShardTask) -> dict:
    ds_key = ("ds", task.dataset_key)
    dataset = _WORKER_OBJECTS.get(ds_key)
    if dataset is None:
        dataset = pickle.loads(task.dataset_blob)
        _WORKER_OBJECTS[ds_key] = dataset
    descriptors = []
    for store_key, blob, indices in task.items:
        hypothesis = pickle.loads(blob)
        rows = np.asarray(hypothesis.extract(dataset, indices))
        descriptors.append(_write_worker_shard(
            task.store_root, store_key, indices, rows, task.n_records))
    return {"descriptors": descriptors, "extractions": len(task.items),
            "forward_sweeps": 0}


# ----------------------------------------------------------------------
# task description (pure: no execution, no side effects beyond probing)
# ----------------------------------------------------------------------
def _store_missing(store, store_key: str, missing: np.ndarray,
                   row_width: int | None) -> np.ndarray:
    """Drop records the committed store already holds (warm runs dispatch
    nothing)."""
    if missing.shape[0] == 0:
        return missing
    reader = store.reader(store_key)
    if reader is None or (row_width is not None
                          and reader.row_width != row_width):
        return missing
    return missing[~reader.filled_mask(missing)]


def _chunk_spans(n_positions: int, block_size: int,
                 workers: int) -> list[tuple[int, int]]:
    """Split record positions into <= ``workers`` block-aligned spans.

    Aligning chunk boundaries to the executor's block grid means
    ``ensure(sl)`` waits on exactly the chunks a block overlaps; capping
    the chunk count at the worker count keeps worker-side extraction
    batches as large as serial's (extraction/sweep counters then match
    the serial run on single-block workloads).
    """
    n_blocks = max(1, -(-n_positions // block_size))
    n_chunks = max(1, min(n_blocks, workers))
    spans = []
    for split in np.array_split(np.arange(n_blocks), n_chunks):
        if split.shape[0] == 0:
            continue
        lo = int(split[0]) * block_size
        hi = min(int(split[-1] + 1) * block_size, n_positions)
        spans.append((lo, hi))
    return spans


def _pickle_or_none(obj) -> bytes | None:
    try:
        return pickle.dumps(obj)
    except Exception as exc:
        degraded("shard.unpicklable", type(obj).__name__, exc=exc)
        return None


class _Dispatch:
    """One in-flight task: its future, position span and fill recipe."""

    def __init__(self, future, lo: int, hi: int, kind: str, fills: dict,
                 model=None):
        self.future = future
        self.lo = lo
        self.hi = hi
        self.kind = kind
        self.fills = fills      # store_key -> fill context
        self.model = model      # live coordinator model (counter folding)
        self.collected = False


class ShardExchange:
    """Coordinator half of shard-parallel extraction.

    ``dispatch()`` describes and submits every task the caches cannot
    already serve; ``ensure(sl)`` blocks on (and integrates) the tasks a
    block slice needs before the executor reads it; ``close()`` cancels
    what never started and integrates what did, so an abandoned stream
    leaks neither processes nor uncommitted shard files.
    """

    def __init__(self, source, scheduler, store):
        self.source = source
        self.scheduler = scheduler
        self.store = store
        self._dispatched: list[_Dispatch] = []
        self._scope = None
        self._closed = False

    @classmethod
    def build(cls, source, scheduler) -> "ShardExchange | None":
        """An exchange for this run, or None when one cannot help.

        Requires a shard-executing scheduler and a disk store to exchange
        through — either the run's own (``config.store``) or the scratch
        store backing the session caches.
        """
        if not getattr(scheduler, "executes_shards", False):
            return None
        config = source.config
        store = config.store
        if store is None:
            store = (getattr(config.unit_cache, "store", None)
                     or getattr(config.cache, "store", None))
        if store is None or source.n_records == 0:
            return None
        return cls(source, scheduler, store)

    # -- dispatch --------------------------------------------------------
    def dispatch(self) -> None:
        """Describe the cold extraction work and submit it to the pool."""
        # worker shards must commit inside this run's single manifest
        # rewrite; when the exchange store is not config.store (scratch
        # store), the executor's scope doesn't cover it — open our own
        if self.store is not self.source.config.store:
            self._scope = self.store.deferred_commits()
            self._scope.__enter__()
        described = (self._describe_unit_tasks()
                     + self._describe_hyp_tasks())
        if not described:
            return
        futures = self.scheduler.submit_shards(
            [task for _, task, _, _ in described])
        self._dispatched = [
            _Dispatch(future, lo, hi, task.kind, fills, model)
            for future, ((lo, hi), task, fills, model)
            in zip(futures, described)]

    def _describe_unit_tasks(self) -> list:
        source = self.source
        config = source.config
        if config.unit_cache is None:
            return []
        dataset = source.dataset
        ns = dataset.n_symbols
        workers = self.scheduler.shard_workers()
        described = []
        for (_, raw_key), members in source.extraction_pairs().items():
            if raw_key.startswith("@"):
                continue  # identity-less extractor: no stable store key
            _, first = members[0]
            model = first.model
            ext = first.extractor or source.default_extractor
            model_key = source._model_key(model)
            store_key = unit_store_key(model_key, raw_key,
                                       dataset.cache_key())
            missing = config.unit_cache.missing_records(
                dataset, source.order, model_key=model_key, raw_key=raw_key)
            width = None
            raw_width = getattr(ext, "raw_width", None)
            if callable(raw_width):
                try:
                    width = int(raw_width(model)) * ns
                except (NotImplementedError, AttributeError, TypeError):
                    width = None
            missing = _store_missing(self.store, store_key, missing, width)
            if missing.shape[0] == 0:
                continue
            try:
                payload = encode_model(model)
            except Exception as exc:
                # unpicklable model: inline extraction covers it
                degraded("shard.model-unpicklable",
                         type(model).__name__, exc=exc)
                continue
            ext_blob = _pickle_or_none(ext)
            if ext_blob is None:
                continue
            missing_mask = np.zeros(dataset.n_records, dtype=bool)
            missing_mask[missing] = True
            fills = {store_key: ("unit", model_key, raw_key)}
            for lo, hi in _chunk_spans(source.n_records, config.block_size,
                                       workers):
                ids = source.order[lo:hi]
                ids = ids[missing_mask[ids]]
                if ids.shape[0] == 0:
                    continue
                task = ShardTask(
                    kind="unit", store_root=str(self.store.root),
                    n_records=dataset.n_records, n_symbols=ns,
                    store_key=store_key, model_payload=payload,
                    extractor_blob=ext_blob, indices=ids,
                    symbols=dataset.symbols[ids])
                described.append(((lo, hi), task, fills, model))
        return described

    def _describe_hyp_tasks(self) -> list:
        source = self.source
        config = source.config
        if config.cache is None or not source.hypotheses:
            return []
        dataset = source.dataset
        items = []
        fills: dict = {}
        dataset_blob = None
        for hyp in source.hypotheses:
            identity = HypothesisCache._hypothesis_identity(hyp)
            store_key = hyp_store_key(dataset.cache_key(), identity)
            missing = config.cache.missing_records(dataset, source.order,
                                                   hypothesis=hyp)
            missing = _store_missing(self.store, store_key, missing,
                                     dataset.n_symbols)
            if missing.shape[0] == 0:
                continue
            blob = _pickle_or_none(hyp)
            if blob is None:
                continue  # e.g. a lambda hypothesis: extracts inline
            if dataset_blob is None:
                dataset_blob = _pickle_or_none(dataset)
                if dataset_blob is None:
                    return []  # dataset can't travel: all hyps stay inline
            items.append((store_key, blob, missing))
            fills[store_key] = ("hyp", hyp)
        if not items:
            return []
        workers = self.scheduler.shard_workers()
        described = []
        n_tasks = max(1, min(len(items), workers))
        # hypothesis blocks are read from position 0 on, so every bundle
        # spans the whole run: the first ensure() waits for all of them
        span = (0, source.n_records)
        for bundle_idx in np.array_split(np.arange(len(items)), n_tasks):
            if bundle_idx.shape[0] == 0:
                continue
            bundle = [items[int(i)] for i in bundle_idx]
            task = ShardTask(
                kind="hyp", store_root=str(self.store.root),
                n_records=dataset.n_records, n_symbols=dataset.n_symbols,
                dataset_key=dataset.cache_key(), dataset_blob=dataset_blob,
                items=bundle)
            described.append(
                (span, task,
                 {key: fills[key] for key, _, _ in bundle}, None))
        return described

    # -- integration -----------------------------------------------------
    def ensure(self, sl: slice, watch: Stopwatch) -> None:
        """Integrate every task overlapping record positions ``sl`` (plus
        any already-finished ones, opportunistically)."""
        for dispatch in self._dispatched:
            if dispatch.collected:
                continue
            overlaps = dispatch.lo < sl.stop and sl.start < dispatch.hi
            if overlaps or dispatch.future.done():
                bucket = ("unit_extraction" if dispatch.kind == "unit"
                          else "hypothesis_extraction")
                with watch.charge(bucket):
                    self._collect(dispatch)

    def ensure_all(self, watch: Stopwatch) -> None:
        self.ensure(slice(0, self.source.n_records), watch)

    def _collect(self, dispatch: _Dispatch) -> None:
        dispatch.collected = True
        try:
            result = dispatch.future.result()
        except Exception as exc:
            # worker died or task failed: those records extract inline
            degraded("shard.worker-failed",
                     f"span {dispatch.lo}:{dispatch.hi}", exc=exc)
            return
        config = self.source.config
        dataset = self.source.dataset
        shard_dir = self.store.root / SHARD_DIR
        for desc in result["descriptors"]:
            fill = dispatch.fills.get(desc["key"])
            try:
                indices = np.load(shard_dir / desc["index"])
                rows = np.load(shard_dir / desc["data"], mmap_mode="r")
            except Exception as exc:
                # shard vanished (concurrent gc): extracts inline
                degraded("shard.files-vanished", desc["key"], exc=exc)
                continue
            if fill is not None and fill[0] == "unit":
                config.unit_cache.fill_rows(dataset, indices, rows,
                                            model_key=fill[1],
                                            raw_key=fill[2])
            elif fill is not None:
                config.cache.fill_rows(dataset, indices, rows,
                                       hypothesis=fill[1])
            # adopted shards join the run's pending queue and become
            # visible in its one manifest commit
            self.store.adopt_shard(
                desc["key"], data_name=desc["data"],
                index_name=desc["index"], n_rows=desc["rows"],
                data_bytes=desc["data_bytes"],
                index_bytes=desc["index_bytes"],
                n_records=desc["n_records"], row_width=desc["row_width"],
                dtype=desc["dtype"])
        tier = (config.unit_cache if dispatch.kind == "unit"
                else config.cache)
        if tier is not None:
            tier.fold_counts(extractions=result["extractions"])
        sweeps = result.get("forward_sweeps", 0)
        if sweeps and dispatch.model is not None:
            calls = getattr(dispatch.model, "forward_calls", None)
            if isinstance(calls, int):
                dispatch.model.forward_calls = calls + sweeps

    def close(self) -> None:
        """Cancel never-started tasks, integrate the rest, flush scope."""
        if self._closed:
            return
        self._closed = True
        try:
            for dispatch in self._dispatched:
                if dispatch.collected:
                    continue
                if dispatch.future.cancel():
                    dispatch.collected = True
                else:  # running or done: integrate so its shards commit
                    self._collect(dispatch)
        finally:
            scope, self._scope = self._scope, None
            if scope is not None:
                try:
                    scope.__exit__(None, None, None)
                except Exception as exc:
                    # e.g. finalized from a GC'd generator after the
                    # session already tore the scratch store down
                    degraded("shard.scope-exit-failed", exc=exc)
