"""The public declarative API: ``deepbase.inspect(...)`` (Section 4.1).

Example from the paper, adapted to this package::

    from repro import inspect
    from repro.measures import CorrelationScore, LogRegressionScore
    from repro.hypotheses import grammar_hypotheses

    scores = [CorrelationScore('pearson'),
              LogRegressionScore(regul='L1', score='F1')]
    hypotheses = grammar_hypotheses(grammar, queries, trees)
    frame = inspect([model], dataset, scores, hypotheses)

The returned :class:`repro.util.frame.Frame` has the paper's schema
``(model_id, score_id, hyp_id, h_unit_id, val)`` plus ``group_id``, ``kind``
(``unit`` or ``group`` affinity), ``n_rows_seen`` and ``converged``.
"""

from __future__ import annotations

import numpy as np

from repro.core.groups import UnitGroup
from repro.core.pipeline import GroupMeasureOutcome, InspectConfig
from repro.data.datasets import Dataset
from repro.extract.base import Extractor
from repro.hypotheses.base import HypothesisFunction
from repro.measures.base import Measure
from repro.util.frame import Frame

#: sentinel unit id for group-level affinity rows
GROUP_ROW = -1


def inspect(models, dataset: Dataset, scores, hypotheses,
            unit_groups: list[UnitGroup] | None = None,
            extractor: Extractor | None = None,
            config: InspectConfig | None = None,
            as_frame: bool = True):
    """Run Deep Neural Inspection (DNI-General, Definition 2).

    Parameters
    ----------
    models:
        One model or a list of models; ignored when ``unit_groups`` is given
        explicitly (groups carry their models).
    dataset:
        The test set ``D`` to evaluate over.
    scores:
        One or a list of :class:`repro.measures.Measure`.
    hypotheses:
        One or a list of :class:`repro.hypotheses.HypothesisFunction`.
    unit_groups:
        Optional explicit unit groups; defaults to one all-units group per
        model.
    extractor:
        Default unit-behavior extractor (groups may override); defaults to
        :class:`RnnActivationExtractor`.
    config:
        Execution configuration (mode, early stopping, caching, block size).
    as_frame:
        When False, return the raw list of
        :class:`GroupMeasureOutcome` instead of a result frame (cheaper for
        large unit counts).

    This is a thin shim over an ephemeral :class:`repro.session.Session`
    (``session_defaults=False``, so no caches or pools are created behind
    the caller's back): one call builds one fluent query and runs it.
    Long-lived workloads should hold a ``Session`` instead — repeated
    queries then share extraction through its caches.
    """
    from repro.session import Session  # session builds on this module
    if isinstance(scores, Measure):
        scores = [scores]
    if isinstance(hypotheses, HypothesisFunction):
        hypotheses = [hypotheses]
    with Session(extractor=extractor, config=config,
                 session_defaults=False) as session:
        query = (session.inspect(models, dataset)
                 .using(list(scores))
                 .hypotheses(list(hypotheses)))
        if unit_groups is not None:
            query.where(groups=unit_groups)
        return query.run(as_frame=as_frame)


def outcomes_to_frame(outcomes: list[GroupMeasureOutcome]) -> Frame:
    """Flatten outcomes into the paper's result schema.

    Row order per outcome is hypothesis-major: the hypothesis's unit rows
    followed by its group row (for joint measures).  Columns are assembled
    with numpy repeat/tile instead of a per-(unit, hypothesis) Python loop.
    """
    model_ids: list[str] = []
    group_ids: list[str] = []
    score_ids: list[str] = []
    hyp_ids: list[str] = []
    unit_ids: list[int] = []
    vals: list[float] = []
    kinds: list[str] = []
    rows_seen: list[int] = []
    converged: list[bool] = []

    for outcome in outcomes:
        group = outcome.group
        result = outcome.result
        names = np.asarray(outcome.hypothesis_names, dtype=object)
        n_units, n_hyps = result.unit_scores.shape
        unit_idx = np.asarray(group.unit_ids, dtype=np.int64)
        col_rows = (result.col_rows_seen if result.col_rows_seen is not None
                    else np.full(n_hyps, result.n_rows_seen, dtype=np.int64))
        col_conv = (result.col_converged if result.col_converged is not None
                    else np.full(n_hyps, result.converged, dtype=bool))

        if result.group_scores is None:
            per_hyp = n_units
            val_matrix = result.unit_scores
            unit_cycle = unit_idx
            kind_cycle = ["unit"] * n_units
        else:
            per_hyp = n_units + 1
            val_matrix = np.concatenate(
                [result.unit_scores, result.group_scores[None, :]], axis=0)
            unit_cycle = np.concatenate([unit_idx, [GROUP_ROW]])
            kind_cycle = ["unit"] * n_units + ["group"]

        n_rows = per_hyp * n_hyps
        model_ids += [group.model_id] * n_rows
        group_ids += [group.name] * n_rows
        score_ids += [outcome.measure.score_id] * n_rows
        hyp_ids += np.repeat(names, per_hyp).tolist()
        unit_ids += np.tile(unit_cycle, n_hyps).tolist()
        vals += val_matrix.T.reshape(-1).astype(float).tolist()
        kinds += kind_cycle * n_hyps
        rows_seen += np.repeat(np.asarray(col_rows, dtype=np.int64),
                               per_hyp).tolist()
        converged += np.repeat(np.asarray(col_conv, dtype=bool),
                               per_hyp).tolist()

    return Frame({
        "model_id": model_ids,
        "group_id": group_ids,
        "score_id": score_ids,
        "hyp_id": hyp_ids,
        "h_unit_id": unit_ids,
        "val": vals,
        "kind": kinds,
        "n_rows_seen": rows_seen,
        "converged": converged,
    })


def top_units(frame: Frame, score_id: str, hyp_id: str,
              k: int = 10, by_abs: bool = True) -> Frame:
    """Post-processing helper: the k highest-affinity units for a hypothesis."""
    sub = frame.where(score_id=score_id, hyp_id=hyp_id, kind="unit")
    if by_abs:
        abs_val = np.abs(sub.column("val", dtype=float))
        sub = sub.with_column("abs_val", abs_val.tolist())
        return sub.sort("abs_val", reverse=True).head(k)
    return sub.sort("val", reverse=True).head(k)
