"""The public declarative API: ``deepbase.inspect(...)`` (Section 4.1).

Example from the paper, adapted to this package::

    from repro import inspect
    from repro.measures import CorrelationScore, LogRegressionScore
    from repro.hypotheses import grammar_hypotheses

    scores = [CorrelationScore('pearson'),
              LogRegressionScore(regul='L1', score='F1')]
    hypotheses = grammar_hypotheses(grammar, queries, trees)
    frame = inspect([model], dataset, scores, hypotheses)

The returned :class:`repro.util.frame.Frame` has the paper's schema
``(model_id, score_id, hyp_id, h_unit_id, val)`` plus ``group_id``, ``kind``
(``unit`` or ``group`` affinity), ``n_rows_seen`` and ``converged``.
"""

from __future__ import annotations


from repro.core.groups import UnitGroup, all_units_group
from repro.core.pipeline import (GroupMeasureOutcome, InspectConfig,
                                 run_inspection)
from repro.data.datasets import Dataset
from repro.extract.base import Extractor
from repro.extract.rnn import RnnActivationExtractor
from repro.hypotheses.base import HypothesisFunction
from repro.measures.base import Measure
from repro.util.frame import Frame

#: sentinel unit id for group-level affinity rows
GROUP_ROW = -1


def inspect(models, dataset: Dataset, scores, hypotheses,
            unit_groups: list[UnitGroup] | None = None,
            extractor: Extractor | None = None,
            config: InspectConfig | None = None,
            as_frame: bool = True):
    """Run Deep Neural Inspection (DNI-General, Definition 2).

    Parameters
    ----------
    models:
        One model or a list of models; ignored when ``unit_groups`` is given
        explicitly (groups carry their models).
    dataset:
        The test set ``D`` to evaluate over.
    scores:
        One or a list of :class:`repro.measures.Measure`.
    hypotheses:
        One or a list of :class:`repro.hypotheses.HypothesisFunction`.
    unit_groups:
        Optional explicit unit groups; defaults to one all-units group per
        model.
    extractor:
        Default unit-behavior extractor (groups may override); defaults to
        :class:`RnnActivationExtractor`.
    config:
        Execution configuration (mode, early stopping, caching, block size).
    as_frame:
        When False, return the raw list of
        :class:`GroupMeasureOutcome` instead of a result frame (cheaper for
        large unit counts).
    """
    if isinstance(scores, Measure):
        scores = [scores]
    if isinstance(hypotheses, HypothesisFunction):
        hypotheses = [hypotheses]
    if unit_groups is None:
        if models is None:
            raise ValueError("provide models or explicit unit_groups")
        if not isinstance(models, (list, tuple)):
            models = [models]
        default_ext = extractor or RnnActivationExtractor()
        unit_groups = [all_units_group(m, default_ext) for m in models]
    extractor = extractor or RnnActivationExtractor()
    config = config or InspectConfig()

    outcomes = run_inspection(unit_groups, dataset, list(scores),
                              list(hypotheses), extractor, config)
    if not as_frame:
        return outcomes
    return outcomes_to_frame(outcomes)


def outcomes_to_frame(outcomes: list[GroupMeasureOutcome]) -> Frame:
    """Flatten outcomes into the paper's result schema."""
    model_ids: list[str] = []
    group_ids: list[str] = []
    score_ids: list[str] = []
    hyp_ids: list[str] = []
    unit_ids: list[int] = []
    vals: list[float] = []
    kinds: list[str] = []
    rows_seen: list[int] = []
    converged: list[bool] = []

    for outcome in outcomes:
        group = outcome.group
        result = outcome.result
        names = outcome.hypothesis_names
        n_units, n_hyps = result.unit_scores.shape
        unit_idx = group.unit_ids

        def push(hyp: str, unit: int, val: float, kind: str) -> None:
            model_ids.append(group.model_id)
            group_ids.append(group.name)
            score_ids.append(outcome.measure.score_id)
            hyp_ids.append(hyp)
            unit_ids.append(unit)
            vals.append(float(val))
            kinds.append(kind)
            rows_seen.append(result.n_rows_seen)
            converged.append(result.converged)

        for j in range(n_hyps):
            for i in range(n_units):
                push(names[j], int(unit_idx[i]),
                     result.unit_scores[i, j], "unit")
            if result.group_scores is not None:
                push(names[j], GROUP_ROW, result.group_scores[j], "group")

    return Frame({
        "model_id": model_ids,
        "group_id": group_ids,
        "score_id": score_ids,
        "hyp_id": hyp_ids,
        "h_unit_id": unit_ids,
        "val": vals,
        "kind": kinds,
        "n_rows_seen": rows_seen,
        "converged": converged,
    })


def top_units(frame: Frame, score_id: str, hyp_id: str,
              k: int = 10, by_abs: bool = True) -> Frame:
    """Post-processing helper: the k highest-affinity units for a hypothesis."""
    sub = frame.where(score_id=score_id, hyp_id=hyp_id, kind="unit")
    if by_abs:
        sub = sub.with_column("abs_val", [abs(v) for v in sub["val"]])
        return sub.sort("abs_val", reverse=True).head(k)
    return sub.sort("val", reverse=True).head(k)
