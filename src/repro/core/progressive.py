"""Progressive inspection (Section 5.2.3).

Streaming execution means affinity scores can be computed and updated
progressively, like online aggregation queries, so the user can stop
DeepBase after any block.  :func:`inspect_progressive` exposes exactly that:
a generator yielding a :class:`ProgressiveUpdate` after every processed
block, carrying the current scores, error estimates and convergence state.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.core.groups import UnitGroup, all_units_group
from repro.core.pipeline import InspectConfig, _extract_hypotheses
from repro.data.datasets import Dataset
from repro.extract.base import Extractor
from repro.extract.rnn import RnnActivationExtractor
from repro.measures.base import Measure, MeasureResult
from repro.util.blocks import iter_blocks
from repro.util.rng import new_rng


@dataclass
class ProgressiveUpdate:
    """State of one (group, measure) pair after a processed block."""

    group: UnitGroup
    measure: Measure
    result: MeasureResult
    error: float
    records_processed: int
    converged: bool


def inspect_progressive(models, dataset: Dataset, scores, hypotheses,
                        unit_groups: list[UnitGroup] | None = None,
                        extractor: Extractor | None = None,
                        config: InspectConfig | None = None
                        ) -> Iterator[list[ProgressiveUpdate]]:
    """Yield per-block score updates; stops when all scores converge.

    Consume lazily and ``break`` at any point to stop the analysis early --
    no further extraction happens after the generator is abandoned.
    """
    if isinstance(scores, Measure):
        scores = [scores]
    if not isinstance(hypotheses, (list, tuple)):
        hypotheses = [hypotheses]
    extractor = extractor or RnnActivationExtractor()
    if unit_groups is None:
        if not isinstance(models, (list, tuple)):
            models = [models]
        unit_groups = [all_units_group(m, extractor) for m in models]
    config = config or InspectConfig(mode="streaming")

    rng = new_rng(config.seed)
    n_records = dataset.n_records
    if config.max_records is not None:
        n_records = min(n_records, config.max_records)
    order = np.arange(n_records)
    if config.shuffle:
        rng.shuffle(order)

    n_hyps = len(hypotheses)
    states = {(gi, mi): m.new_state(g.n_units, n_hyps)
              for gi, g in enumerate(unit_groups)
              for mi, m in enumerate(scores)}
    done: set[tuple[int, int]] = set()
    records_done = {key: 0 for key in states}

    for block in iter_blocks(order.shape[0], config.block_size):
        indices = order[block]
        h_block = _extract_hypotheses(hypotheses, dataset, indices,
                                      config.cache)
        unit_cache: dict[tuple[int, int], np.ndarray] = {}
        updates: list[ProgressiveUpdate] = []
        for gi, group in enumerate(unit_groups):
            ext = group.extractor or extractor
            key = (id(group.model), id(ext))
            if key not in unit_cache:
                unit_cache[key] = ext.extract(
                    group.model, dataset.symbols[indices], hid_units=None)
            u_block = unit_cache[key][:, group.unit_ids]
            for mi, measure in enumerate(scores):
                skey = (gi, mi)
                if skey in done:
                    continue
                result, err = measure.process_block(states[skey], u_block,
                                                    h_block)
                records_done[skey] += indices.shape[0]
                converged = (measure.supports_early_stop
                             and err <= config.threshold_for(
                                 measure.score_id))
                if converged and config.early_stop:
                    result.converged = True
                    done.add(skey)
                updates.append(ProgressiveUpdate(
                    group=group, measure=measure, result=result, error=err,
                    records_processed=records_done[skey],
                    converged=converged))
        yield updates
        if config.early_stop and len(done) == len(states):
            return
