"""Progressive inspection (Section 5.2.3).

Streaming execution means affinity scores can be computed and updated
progressively, like online aggregation queries, so the user can stop
DeepBase after any block.  Since PR 5 the per-block loop lives in the plan
executor itself (:meth:`repro.core.pipeline.InspectionPlan.
execute_progressive`) — the engine that serves one-shot ``inspect()`` calls
and the Session API's ``.stream()`` is the same one that yields partial
results here, so progressive runs share caches, stores and schedulers with
everything else and the final update is bit-identical to a one-shot run.

:func:`inspect_progressive` keeps the seed generator surface: one
:class:`ProgressiveUpdate` list per processed block, carrying the current
scores, error estimates and convergence state.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.core.groups import UnitGroup, all_units_group
from repro.core.pipeline import InspectConfig, InspectionPlan
from repro.data.datasets import Dataset
from repro.extract.base import Extractor
from repro.extract.rnn import RnnActivationExtractor
from repro.measures.base import Measure, MeasureResult


@dataclass
class ProgressiveUpdate:
    """State of one (group, measure) pair after a processed block."""

    group: UnitGroup
    measure: Measure
    result: MeasureResult
    error: float
    records_processed: int
    converged: bool


def inspect_progressive(models, dataset: Dataset, scores, hypotheses,
                        unit_groups: list[UnitGroup] | None = None,
                        extractor: Extractor | None = None,
                        config: InspectConfig | None = None
                        ) -> Iterator[list[ProgressiveUpdate]]:
    """Yield per-block score updates; stops when all scores converge.

    Consume lazily and ``break`` at any point to stop the analysis early --
    no further extraction happens after the generator is abandoned (owned
    schedulers shut down and pending store commits flush on close).
    """
    if isinstance(scores, Measure):
        scores = [scores]
    if not isinstance(hypotheses, (list, tuple)):
        hypotheses = [hypotheses]
    extractor = extractor or RnnActivationExtractor()
    if unit_groups is None:
        if not isinstance(models, (list, tuple)):
            models = [models]
        unit_groups = [all_units_group(m, extractor) for m in models]
    config = config or InspectConfig(mode="streaming")

    plan = InspectionPlan.build(unit_groups, dataset, list(scores),
                                list(hypotheses), extractor, config)
    names = [h.name for h in plan.hypotheses]

    def update_of(task) -> ProgressiveUpdate:
        outcome = task.outcome(names)
        return ProgressiveUpdate(
            group=outcome.group, measure=outcome.measure,
            result=outcome.result, error=task.last_error,
            records_processed=outcome.records_processed,
            # converged reports the convergence *criterion*, independent
            # of whether early stopping acts on it (early_stop=False keeps
            # processing but still tells the caller the bound is met)
            converged=task.done or (task.measure.supports_early_stop
                                    and task.last_error <= task.threshold))

    steps = plan.execute_blocks()
    try:
        while True:
            # seed semantics: a task that finished on an earlier block
            # drops out of later update lists, and pays no further
            # snapshot cost — only tasks the block advanced build outcomes
            was_done = [task.done for task in plan.tasks]
            try:
                next(steps)
            except StopIteration:
                return
            yield [update_of(task) for task, done_before
                   in zip(plan.tasks, was_done) if not done_before]
    finally:
        # deterministic cleanup even when abandoned mid-stream (don't
        # lean on refcount GC): flush the store scope, stop owned pools
        steps.close()
