"""LRU caches for behavior matrices (Section 5.1.2 / Figure 9).

During model development one side of the inspection workload is usually
fixed while the other changes, so behaviors can be extracted once and reused
across inspection runs:

* :class:`HypothesisCache` — the hypothesis library is fixed while models
  are retrained.  Entries are keyed by (dataset content hash, hypothesis
  name).
* :class:`UnitBehaviorCache` — the model is fixed while hypotheses, measures
  or thresholds change (interactive debugging).  Entries are keyed by
  (model parameter fingerprint, extractor identity incl. the behavior
  transform, dataset content hash, selected unit ids).

Both caches fill at record granularity, so streaming runs that stopped early
still contribute partial cache contents, and both are byte-bounded LRUs.
They are lock-protected so the thread-pool scheduler can share them.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from collections import OrderedDict

import numpy as np

from repro.data.datasets import Dataset
from repro.extract.base import Extractor
from repro.hypotheses.base import HypothesisFunction


#: process-unique tokens for parameter-less models (id() can be recycled
#: after garbage collection, so raw id() may alias two different models)
_FALLBACK_TOKENS = itertools.count()


def model_fingerprint(model) -> str:
    """Content identity of a model for unit-behavior caching.

    Hashes the parameter tensors when the model exposes a ``parameters()``
    walk (every :class:`repro.nn.Module` does), so retraining — even in
    place — invalidates cached behaviors.  Parameter-less models get a
    process-unique token stamped onto the object, so a model allocated at a
    recycled address never aliases a dead one.
    """
    mid = getattr(model, "model_id", type(model).__name__)
    params = getattr(model, "parameters", None)
    if callable(params):
        try:
            digest = hashlib.sha1()
            for param in params():
                value = np.ascontiguousarray(
                    getattr(param, "value", param), dtype=np.float64)
                digest.update(str(value.shape).encode())
                digest.update(value.tobytes())
            return f"{mid}:{digest.hexdigest()}"
        except (TypeError, AttributeError):
            pass
    token = getattr(model, "_repro_cache_token", None)
    if token is None:
        token = f"{mid}#{next(_FALLBACK_TOKENS)}"
        try:
            model._repro_cache_token = token
        except (AttributeError, TypeError):
            return f"{mid}@{id(model):x}"  # slots/frozen object: best effort
    return token


class _Entry:
    """Per-record behavior rows plus a fill mask."""

    def __init__(self, n_records: int, n_symbols: int):
        self.matrix = np.zeros((n_records, n_symbols))
        self.filled = np.zeros(n_records, dtype=bool)

    @property
    def nbytes(self) -> int:
        return self.matrix.nbytes + self.filled.nbytes


class _ByteBoundedLRU:
    """Shared plumbing for the two behavior caches: a lock-protected,
    byte-bounded LRU with hit/miss accounting.  Subclass helpers must be
    called while holding ``self._lock``."""

    def __init__(self, max_bytes: int):
        self.max_bytes = max_bytes
        self._entries: OrderedDict = OrderedDict()
        self._bytes = 0  # running total of entry.nbytes
        self._lock = threading.Lock()
        self.hits = 0      # records served from cached rows
        self.misses = 0    # records that had to be extracted
        self.extractions = 0  # underlying extractor invocations

    def _get_or_create(self, key, factory):
        entry = self._entries.get(key)
        if entry is None:
            entry = factory()
            self._entries[key] = entry
            self._bytes += entry.nbytes
            self._evict()
        self._entries.move_to_end(key)
        return entry

    def _evict(self) -> None:
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "extractions": self.extractions,
                "entries": len(self._entries),
                "bytes": self._bytes}

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.extractions = 0


class HypothesisCache(_ByteBoundedLRU):
    """Byte-bounded LRU over (dataset, hypothesis) behavior matrices."""

    def __init__(self, max_bytes: int = 512 * 1024 * 1024):
        super().__init__(max_bytes)

    # ------------------------------------------------------------------
    def extract(self, hypothesis: HypothesisFunction, dataset: Dataset,
                indices: np.ndarray) -> np.ndarray:
        """Behavior rows for ``indices``, computing only the missing ones."""
        indices = np.asarray(indices, dtype=int)
        key = (dataset.cache_key(), hypothesis.name)
        with self._lock:
            entry = self._get_or_create(
                key, lambda: _Entry(dataset.n_records, dataset.n_symbols))
            missing = indices[~entry.filled[indices]]
            self.hits += int(indices.shape[0] - missing.shape[0])
            self.misses += int(missing.shape[0])
        if missing.shape[0]:
            rows = hypothesis.extract(dataset, missing)
            with self._lock:
                self.extractions += 1
                entry.matrix[missing] = rows
                entry.filled[missing] = True
        with self._lock:
            return entry.matrix[indices]


class _UnitEntry:
    """Record-major unit behaviors: row r holds the (ns * n_units) block."""

    def __init__(self, n_records: int, n_symbols: int):
        self.n_symbols = n_symbols
        self.matrix: np.ndarray | None = None  # allocated on first fill
        self.filled = np.zeros(n_records, dtype=bool)

    @property
    def nbytes(self) -> int:
        matrix_bytes = 0 if self.matrix is None else self.matrix.nbytes
        return matrix_bytes + self.filled.nbytes


class UnitBehaviorCache(_ByteBoundedLRU):
    """Byte-bounded LRU over extracted unit behaviors.

    The mirror image of :class:`HypothesisCache` for the other half of the
    Figure 9 story: repeated inspection runs against the *same* model (new
    hypotheses, different measures or thresholds) skip the forward passes
    entirely.  Keys carry the model's parameter fingerprint, the extractor's
    :meth:`~repro.extract.base.Extractor.cache_key` (which includes the
    behavior transform), the dataset content hash and the selected unit ids,
    so a retrained model or a different layer/transform never aliases.

    An entry's matrix spans the whole dataset at the extraction width (the
    fill mask is what makes partial streaming runs reusable), so
    ``max_bytes`` is accounted at full-matrix size; zero pages stay virtual
    until rows are actually written.
    """

    def __init__(self, max_bytes: int = 1024 * 1024 * 1024):
        super().__init__(max_bytes)

    # ------------------------------------------------------------------
    @staticmethod
    def _units_key(hid_units: np.ndarray | list[int] | None) -> str:
        if hid_units is None:
            return "all"
        ids = np.asarray(hid_units, dtype=int)
        digest = hashlib.sha1(ids.tobytes()).hexdigest()[:16]
        return f"{ids.shape[0]}:{digest}"

    # ------------------------------------------------------------------
    def extract(self, model, extractor: Extractor, dataset: Dataset,
                indices: np.ndarray,
                hid_units: np.ndarray | list[int] | None = None,
                model_key: str | None = None) -> np.ndarray:
        """Unit behaviors for ``indices``: (len(indices) * ns, width).

        Only records without cached rows are run through the extractor; the
        result is always served from the cache matrix so repeated runs cost
        one slice.  ``model_key`` lets callers that fingerprint the model
        once per run (the plan executor) skip re-hashing its parameters on
        every block.
        """
        indices = np.asarray(indices, dtype=int)
        if model_key is None:
            model_key = model_fingerprint(model)
        key = (model_key, extractor.cache_key(),
               dataset.cache_key(), self._units_key(hid_units))
        with self._lock:
            entry = self._get_or_create(
                key,
                lambda: _UnitEntry(dataset.n_records, dataset.n_symbols))
            missing = indices[~entry.filled[indices]]
            self.hits += int(indices.shape[0] - missing.shape[0])
            self.misses += int(missing.shape[0])
        if missing.shape[0]:
            block = extractor.extract(model, dataset.symbols[missing],
                                      hid_units=hid_units)
            ns = entry.n_symbols
            if block.shape[0] != missing.shape[0] * ns:
                raise ValueError(
                    f"extractor row mismatch: expected "
                    f"{missing.shape[0] * ns} rows "
                    f"({missing.shape[0]} records x {ns} symbols), "
                    f"got {block.shape[0]}")
            with self._lock:
                self.extractions += 1
                # the entry may have been evicted (or even displaced) by a
                # concurrent insert while we extracted without the lock;
                # re-account bytes against the map's actual contents
                mapped = self._entries.get(key) is entry
                if mapped:
                    self._bytes -= entry.nbytes
                if entry.matrix is None:
                    entry.matrix = np.zeros(
                        (entry.filled.shape[0], ns * block.shape[1]))
                entry.matrix[missing] = block.reshape(missing.shape[0], -1)
                entry.filled[missing] = True
                if not mapped:
                    displaced = self._entries.get(key)
                    if displaced is not None:
                        self._bytes -= displaced.nbytes
                    self._entries[key] = entry
                self._bytes += entry.nbytes
                self._entries.move_to_end(key)
                self._evict()
        if entry.matrix is None:
            # only reachable for an empty index set (nothing was ever
            # filled); let the extractor produce the correctly-shaped
            # (0, width) result instead of guessing the width
            return extractor.extract(model, dataset.symbols[indices],
                                     hid_units=hid_units)
        with self._lock:
            width = entry.matrix.shape[1] // entry.n_symbols
            return entry.matrix[indices].reshape(
                indices.shape[0] * entry.n_symbols, width)
