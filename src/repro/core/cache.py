"""Tiered behavior caches (Section 5.1.2 / Figure 9).

During model development one side of the inspection workload is usually
fixed while the other changes, so behaviors can be extracted once and reused
across inspection runs:

* :class:`HypothesisCache` — the hypothesis library is fixed while models
  are retrained.  Entries are keyed by (dataset content hash, hypothesis
  name).
* :class:`UnitBehaviorCache` — the model is fixed while hypotheses, measures
  or thresholds change (interactive debugging).  Entries hold the **raw**
  (untransformed, full-width) activations keyed by (model parameter
  fingerprint, raw extractor identity, dataset content hash); the behavior
  transform, layer views and ``hid_units`` selection are applied lazily on
  read via :meth:`repro.extract.base.Extractor.finalize_rows`.  K extractors
  that differ only in those view attributes therefore trigger exactly one
  forward sweep and share one entry.

Both caches are *memory tiers* over a common store protocol: give them a
:class:`repro.store.DiskBehaviorStore` and every extraction is written
through to memory-mapped shards on disk, while misses consult the disk tier
before running the extractor — a second process (or a restarted session)
serves previously-inspected workloads with zero model forward passes and
zero hypothesis evaluations.  Both tiers fill at record granularity, so
streaming runs that stopped early still contribute partial contents, and
the memory tiers are byte-bounded, lock-protected LRUs the thread-pool
scheduler can share.

In the connection-style API one :class:`repro.session.Session` owns a pair
of these caches and threads them through every Python-builder and SQL
query it executes, so interleaved queries on one model share a single
forward sweep; :meth:`_ByteBoundedLRU.reset_counters` zeroes the
observability counters without dropping the cached behaviors — the
before/after primitive "this query extracted nothing" asserts build on.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import weakref
from collections import OrderedDict

import numpy as np

from repro.data.datasets import Dataset
from repro.extract.base import (Extractor, finalize_rows_of, raw_key_of,
                                raw_rows_of)
from repro.hypotheses.base import HypothesisFunction
from repro.store import DiskBehaviorStore
from repro.util.debuglog import degraded


#: process-unique tokens for parameter-less models (id() can be recycled
#: after garbage collection, so raw id() may alias two different models)
_FALLBACK_TOKENS = itertools.count()

#: tokens for models that cannot be stamped (slots/frozen); keyed weakly
#: so the token dies with the model and can never alias a successor
_UNSTAMPABLE_TOKENS: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def _compact(identity: str, max_len: int = 64) -> str:
    """Bound an identity string for use inside persistent store keys.

    Long content identities (recursive attribute walks) keep a readable
    prefix plus a content digest, so manifests stay small without losing
    exactness.
    """
    if len(identity) <= max_len:
        return identity
    digest = hashlib.sha1(identity.encode()).hexdigest()[:16]
    return f"{identity[:40]}...{digest}"


def hyp_store_key(dataset_key: str, identity: str) -> str:
    """Persistent store key for one (dataset, hypothesis) entry.

    Module-level so the shard-task layer addresses the same entries the
    cache writes through to — worker-produced shards must land exactly
    where a serial run would have put them.
    """
    return f"hyp/{dataset_key}/{_compact(identity)}"


def unit_store_key(model_key: str, raw_key: str, dataset_key: str) -> str:
    """Persistent store key for one (model, raw sweep, dataset) entry."""
    return f"unit/{model_key}/{_compact(raw_key)}/{dataset_key}"


def model_fingerprint(model) -> str:
    """Content identity of a model for unit-behavior caching.

    Hashes the parameter tensors when the model exposes a ``parameters()``
    walk (every :class:`repro.nn.Module` does), so retraining — even in
    place — invalidates cached behaviors.  Parameter-less models get a
    process-unique token stamped onto the object, so a model allocated at a
    recycled address never aliases a dead one.
    """
    mid = getattr(model, "model_id", type(model).__name__)
    params = getattr(model, "parameters", None)
    if callable(params):
        try:
            digest = hashlib.sha1()
            for param in params():
                value = np.ascontiguousarray(
                    getattr(param, "value", param), dtype=np.float64)
                digest.update(str(value.shape).encode())
                digest.update(value.tobytes())
            return f"{mid}:{digest.hexdigest()}"
        except (TypeError, AttributeError):
            pass
    token = getattr(model, "_repro_cache_token", None)
    if token is None:
        try:
            token = _UNSTAMPABLE_TOKENS.get(model)
        except TypeError:  # unhashable / not weakly referenceable
            token = None
    if token is None:
        token = f"{mid}#{next(_FALLBACK_TOKENS)}"
        try:
            model._repro_cache_token = token
        except (AttributeError, TypeError):
            try:
                _UNSTAMPABLE_TOKENS[model] = token
            except TypeError:
                # nowhere to pin an identity: fresh token per call, so the
                # model re-extracts (slow) but can never alias another
                # object's cached behaviors the way raw id() could
                degraded("cache.fingerprint-unstable", mid)
    return token


class _Entry:
    """Per-record behavior rows plus a fill mask."""

    def __init__(self, n_records: int, n_symbols: int):
        self.matrix: np.ndarray | None = np.zeros((n_records, n_symbols))
        self.filled = np.zeros(n_records, dtype=bool)

    @property
    def nbytes(self) -> int:
        matrix_bytes = 0 if self.matrix is None else self.matrix.nbytes
        return matrix_bytes + self.filled.nbytes


class _ByteBoundedLRU:
    """Shared plumbing for the two behavior caches: a lock-protected,
    byte-bounded LRU memory tier with hit/miss accounting and an optional
    persistent tier underneath.  Subclass helpers must be called while
    holding ``self._lock``."""

    def __init__(self, max_bytes: int,
                 store: DiskBehaviorStore | None = None):
        self.max_bytes = max_bytes
        self.store = store
        self._entries: OrderedDict = OrderedDict()
        self._bytes = 0  # running total of entry.nbytes
        self._lock = threading.Lock()
        self.hits = 0      # records served from memory-tier rows
        self.misses = 0    # records absent from the memory tier
        self.disk_hits = 0    # records served from the disk tier
        self.disk_misses = 0  # records absent from both tiers
        self.extractions = 0  # underlying extractor invocations

    def _get_or_create(self, key, factory):
        entry = self._entries.get(key)
        if entry is None:
            entry = factory()
            self._entries[key] = entry
            self._bytes += entry.nbytes
            self._evict()
        self._entries.move_to_end(key)
        return entry

    def _evict(self) -> None:
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes

    def _commit_rows(self, key, entry, rows_idx: np.ndarray,
                     rows: np.ndarray) -> None:
        """Write per-record rows into an entry, re-accounting bytes.

        The entry may have been evicted (or even displaced) by a concurrent
        insert while rows were produced without the lock, so bytes are
        re-accounted against the map's actual contents.
        """
        mapped = self._entries.get(key) is entry
        if mapped:
            self._bytes -= entry.nbytes
        if entry.matrix is None:
            entry.matrix = np.zeros((entry.filled.shape[0], rows.shape[1]),
                                    dtype=rows.dtype)
        entry.matrix[rows_idx] = rows
        entry.filled[rows_idx] = True
        if not mapped:
            displaced = self._entries.get(key)
            if displaced is not None:
                self._bytes -= displaced.nbytes
            self._entries[key] = entry
        self._bytes += entry.nbytes
        self._entries.move_to_end(key)
        self._evict()

    def _fill_from_store(self, store_key: str, key, entry,
                         missing: np.ndarray,
                         row_width: int | None = None) -> np.ndarray:
        """Serve ``missing`` records from the disk tier where possible.

        Returns the still-missing indices.  Counts every consulted record
        as a disk hit or miss; a width mismatch (stale or foreign entry)
        is treated as wholly absent rather than served.
        """
        if self.store is None or missing.shape[0] == 0:
            return missing
        reader = self.store.reader(store_key)
        if reader is not None and (row_width is None
                                   or reader.row_width == row_width):
            have = reader.filled_mask(missing)
            if have.any():
                rows = reader.rows(missing[have])
                with self._lock:
                    self.disk_hits += int(have.sum())
                    self._commit_rows(key, entry, missing[have], rows)
                missing = missing[~have]
        with self._lock:
            self.disk_misses += int(missing.shape[0])
        return missing

    def _write_through(self, store_key: str, indices: np.ndarray,
                       rows: np.ndarray, n_records: int) -> None:
        if self.store is not None:
            self.store.append(store_key, indices, rows, n_records)

    def _missing_in_entry(self, key, indices) -> np.ndarray:
        """Indices without memory-tier rows (a planning probe: no entry is
        created and no hit/miss counters move)."""
        indices = np.asarray(indices, dtype=int)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return indices
            return indices[~entry.filled[indices]]

    def _fill_rows(self, key, factory, indices: np.ndarray,
                   rows: np.ndarray) -> None:
        """Commit externally-extracted rows (coordinator-side fill).

        The shard exchange calls this with worker-produced, mmap'd rows;
        they count as disk hits — the records were served from shard
        files, not extracted by this tier.
        """
        indices = np.asarray(indices, dtype=int)
        if indices.shape[0] == 0:
            return
        with self._lock:
            entry = self._get_or_create(key, factory)
            self.disk_hits += int(indices.shape[0])
            self._commit_rows(key, entry, indices, np.asarray(rows))

    def fold_counts(self, *, extractions: int = 0, hits: int = 0,
                    misses: int = 0, disk_hits: int = 0,
                    disk_misses: int = 0) -> None:
        """Fold worker-side counts into this tier's counters.

        Under the process scheduler the extractor runs in worker
        processes whose counter increments would otherwise be lost; the
        coordinator folds them back here, so extraction-once assertions
        (``stats()["extractions"]``) hold across schedulers.
        """
        with self._lock:
            self.extractions += extractions
            self.hits += hits
            self.misses += misses
            self.disk_hits += disk_hits
            self.disk_misses += disk_misses

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "disk_hits": self.disk_hits,
                "disk_misses": self.disk_misses,
                "extractions": self.extractions,
                "entries": len(self._entries),
                "bytes": self._bytes}

    def _reset_counters_locked(self) -> None:
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.extractions = 0

    def reset_counters(self) -> None:
        """Zero the hit/miss/extraction counters, keeping every entry.

        Cached behaviors stay warm — only the observability counters
        restart, so callers can assert what one *specific* query cost
        (e.g. "the second query on this model performed zero
        extractions") instead of diffing running totals.
        """
        with self._lock:
            self._reset_counters_locked()

    def clear(self) -> None:
        """Drop the memory tier (the disk tier, if any, is untouched)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._reset_counters_locked()


class HypothesisCache(_ByteBoundedLRU):
    """Byte-bounded LRU over (dataset, hypothesis) behavior matrices."""

    def __init__(self, max_bytes: int = 512 * 1024 * 1024,
                 store: DiskBehaviorStore | None = None):
        super().__init__(max_bytes, store=store)

    # ------------------------------------------------------------------
    @staticmethod
    def _hypothesis_identity(hypothesis) -> str:
        """Content identity when exposed; the bare name otherwise.

        Persisting under the name alone would let an edited hypothesis
        silently serve a previous session's behaviors.
        """
        key_of = getattr(hypothesis, "cache_key", None)
        if callable(key_of):
            return key_of()
        return getattr(hypothesis, "name", type(hypothesis).__name__)

    def missing_records(self, dataset: Dataset, indices: np.ndarray, *,
                        hypothesis) -> np.ndarray:
        """Records without memory-tier rows for this hypothesis (probe)."""
        key = (dataset.cache_key(), self._hypothesis_identity(hypothesis))
        return self._missing_in_entry(key, indices)

    def fill_rows(self, dataset: Dataset, indices: np.ndarray,
                  rows: np.ndarray, *, hypothesis) -> None:
        """Commit worker-extracted hypothesis rows (counted as disk hits)."""
        key = (dataset.cache_key(), self._hypothesis_identity(hypothesis))
        self._fill_rows(key,
                        lambda: _Entry(dataset.n_records, dataset.n_symbols),
                        indices, rows)

    def extract(self, hypothesis: HypothesisFunction, dataset: Dataset,
                indices: np.ndarray) -> np.ndarray:
        """Behavior rows for ``indices``, computing only the missing ones."""
        indices = np.asarray(indices, dtype=int)
        key = (dataset.cache_key(), self._hypothesis_identity(hypothesis))
        store_key = hyp_store_key(key[0], key[1])
        with self._lock:
            entry = self._get_or_create(
                key, lambda: _Entry(dataset.n_records, dataset.n_symbols))
            missing = indices[~entry.filled[indices]]
            self.hits += int(indices.shape[0] - missing.shape[0])
            self.misses += int(missing.shape[0])
        missing = self._fill_from_store(store_key, key, entry, missing,
                                        row_width=dataset.n_symbols)
        if missing.shape[0]:
            rows = np.asarray(hypothesis.extract(dataset, missing))
            with self._lock:
                self.extractions += 1
                self._commit_rows(key, entry, missing, rows)
            self._write_through(store_key, missing, rows, dataset.n_records)
        with self._lock:
            return entry.matrix[indices]


class _UnitEntry:
    """Record-major raw unit behaviors: row r is the (ns * raw_width)
    block; dtype follows the first committed rows (the model's dtype)."""

    def __init__(self, n_records: int, n_symbols: int):
        self.n_symbols = n_symbols
        self.matrix: np.ndarray | None = None  # allocated on first fill
        self.filled = np.zeros(n_records, dtype=bool)

    @property
    def nbytes(self) -> int:
        matrix_bytes = 0 if self.matrix is None else self.matrix.nbytes
        return matrix_bytes + self.filled.nbytes


class UnitBehaviorCache(_ByteBoundedLRU):
    """Byte-bounded LRU over extracted raw unit behaviors.

    The mirror image of :class:`HypothesisCache` for the other half of the
    Figure 9 story: repeated inspection runs against the *same* model (new
    hypotheses, different measures, thresholds, transforms or unit subsets)
    skip the forward passes entirely.  Keys carry the model's parameter
    fingerprint, the extractor's
    :meth:`~repro.extract.base.Extractor.raw_key` and the dataset content
    hash — deliberately *not* the transform or unit selection, which are
    read-time views — so a retrained model or a different architecture
    never aliases, while every view over one sweep shares one entry.

    An entry's matrix spans the whole dataset at raw width (the fill mask
    is what makes partial streaming runs reusable), so ``max_bytes`` is
    accounted at full-matrix size; zero pages stay virtual until rows are
    actually written.
    """

    def __init__(self, max_bytes: int = 1024 * 1024 * 1024,
                 store: DiskBehaviorStore | None = None):
        super().__init__(max_bytes, store=store)

    # ------------------------------------------------------------------
    def missing_records(self, dataset: Dataset, indices: np.ndarray, *,
                        model_key: str, raw_key: str) -> np.ndarray:
        """Records without memory-tier raw rows for this pair (probe)."""
        key = (model_key, raw_key, dataset.cache_key())
        return self._missing_in_entry(key, indices)

    def fill_rows(self, dataset: Dataset, indices: np.ndarray,
                  rows: np.ndarray, *, model_key: str,
                  raw_key: str) -> None:
        """Commit worker-extracted raw rows (counted as disk hits)."""
        key = (model_key, raw_key, dataset.cache_key())
        self._fill_rows(
            key, lambda: _UnitEntry(dataset.n_records, dataset.n_symbols),
            indices, rows)

    def extract(self, model, extractor: Extractor, dataset: Dataset,
                indices: np.ndarray,
                hid_units: np.ndarray | list[int] | None = None,
                model_key: str | None = None,
                raw_key: str | None = None) -> np.ndarray:
        """Unit behaviors for ``indices``: (len(indices) * ns, width).

        Only records without cached raw rows are run through the extractor
        (one full-width sweep covers every transform and unit subset); the
        result is always derived from the cached raw matrix, so repeated
        runs cost one slice plus the read-time view.  ``model_key`` /
        ``raw_key`` let callers that fingerprint once per run (the plan
        executor) skip re-hashing parameters and attributes per block.
        """
        indices = np.asarray(indices, dtype=int)
        if model_key is None:
            model_key = model_fingerprint(model)
        if raw_key is None:
            raw_key = raw_key_of(extractor)
        ns = dataset.n_symbols
        key = (model_key, raw_key, dataset.cache_key())
        store_key = unit_store_key(key[0], key[1], key[2])
        with self._lock:
            entry = self._get_or_create(
                key, lambda: _UnitEntry(dataset.n_records, ns))
            missing = indices[~entry.filled[indices]]
            self.hits += int(indices.shape[0] - missing.shape[0])
            self.misses += int(missing.shape[0])
        missing = self._fill_from_store(
            store_key, key, entry, missing,
            row_width=self._expected_width(extractor, model, entry, ns))
        if missing.shape[0]:
            block = raw_rows_of(extractor, model, dataset.symbols[missing])
            if block.shape[0] != missing.shape[0] * ns:
                raise ValueError(
                    "extractor row mismatch: expected "
                    f"{missing.shape[0] * ns} rows "
                    f"({missing.shape[0]} records x {ns} symbols), "
                    f"got {block.shape[0]}")
            flat = np.ascontiguousarray(block).reshape(missing.shape[0], -1)
            with self._lock:
                self.extractions += 1
                self._commit_rows(key, entry, missing, flat)
            self._write_through(store_key, missing, flat, dataset.n_records)
        if entry.matrix is None:
            # only reachable for an empty index set (nothing was ever
            # filled); let the extractor produce the correctly-shaped
            # (0, width) result instead of guessing the width
            return extractor.extract(model, dataset.symbols[indices],
                                     hid_units=hid_units)
        with self._lock:
            # explicit width: -1 cannot be inferred for an empty index set
            width = entry.matrix.shape[1] // ns
            raw = entry.matrix[indices].reshape(indices.shape[0] * ns, width)
        return finalize_rows_of(extractor, model, raw, ns,
                                hid_units=hid_units)

    @staticmethod
    def _expected_width(extractor, model, entry: _UnitEntry,
                        ns: int) -> int | None:
        """Disk-tier row width the entry must carry, when knowable."""
        if entry.matrix is not None:
            return int(entry.matrix.shape[1])
        width_of = getattr(extractor, "raw_width", None)
        if callable(width_of):
            try:
                return int(width_of(model)) * ns
            except (NotImplementedError, AttributeError, TypeError):
                return None
        return None
