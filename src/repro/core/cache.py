"""LRU cache for hypothesis behavior matrices (Section 5.1.2 / Figure 9).

During model development the hypothesis library is fixed while models change,
so hypothesis behaviors can be extracted once and reused across inspection
runs.  Entries are keyed by (dataset content hash, hypothesis name) and
filled at record granularity, so streaming runs that stopped early still
contribute partial cache contents.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.data.datasets import Dataset
from repro.hypotheses.base import HypothesisFunction


class _Entry:
    """Per-record behavior rows plus a fill mask."""

    def __init__(self, n_records: int, n_symbols: int):
        self.matrix = np.zeros((n_records, n_symbols))
        self.filled = np.zeros(n_records, dtype=bool)

    @property
    def nbytes(self) -> int:
        return self.matrix.nbytes + self.filled.nbytes


class HypothesisCache:
    """Byte-bounded LRU over (dataset, hypothesis) behavior matrices."""

    def __init__(self, max_bytes: int = 512 * 1024 * 1024):
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple[str, str], _Entry] = OrderedDict()
        self._bytes = 0  # running total; entry sizes are fixed at creation
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _entry(self, dataset: Dataset, hyp_name: str) -> _Entry:
        key = (dataset.cache_key(), hyp_name)
        entry = self._entries.get(key)
        if entry is None:
            entry = _Entry(dataset.n_records, dataset.n_symbols)
            self._entries[key] = entry
            self._bytes += entry.nbytes
            self._evict()
        self._entries.move_to_end(key)
        return entry

    def _evict(self) -> None:
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes

    # ------------------------------------------------------------------
    def extract(self, hypothesis: HypothesisFunction, dataset: Dataset,
                indices: np.ndarray) -> np.ndarray:
        """Behavior rows for ``indices``, computing only the missing ones."""
        indices = np.asarray(indices, dtype=int)
        entry = self._entry(dataset, hypothesis.name)
        missing = indices[~entry.filled[indices]]
        self.hits += int(indices.shape[0] - missing.shape[0])
        self.misses += int(missing.shape[0])
        if missing.shape[0]:
            entry.matrix[missing] = hypothesis.extract(dataset, missing)
            entry.filled[missing] = True
        return entry.matrix[indices]

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries),
                "bytes": self._bytes}

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
