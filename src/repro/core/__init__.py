"""DeepBase core: the declarative inspection engine.

:func:`inspect` implements DNI-General (Definition 2): given models (or unit
groups), a dataset, affinity measures and hypothesis functions, it returns a
result frame with one affinity value per (model, score, hypothesis, unit)
plus group-level rows.  Runs compile into an
:class:`~repro.core.pipeline.InspectionPlan` — a behavior source feeding
(group, measure) score tasks under a scheduler — and
:class:`InspectConfig` toggles each optimization of Section 5.2: model
merging happens inside the measures, while streaming extraction,
per-hypothesis early stopping, behavior caching (hypothesis- and unit-side)
and parallel scheduling live in the plan executor.
"""

from repro.core.cache import HypothesisCache, UnitBehaviorCache
from repro.core.groups import UnitGroup, all_units_group, layer_groups
from repro.core.inspect import InspectConfig, inspect
from repro.core.pipeline import (InspectionPlan, Scheduler, SerialScheduler,
                                 ThreadPoolScheduler)
from repro.store import DiskBehaviorStore

__all__ = [
    "DiskBehaviorStore",
    "HypothesisCache",
    "InspectConfig",
    "InspectionPlan",
    "Scheduler",
    "SerialScheduler",
    "ThreadPoolScheduler",
    "UnitBehaviorCache",
    "UnitGroup",
    "all_units_group",
    "inspect",
    "layer_groups",
]
