"""DeepBase core: the declarative inspection engine.

:func:`inspect` implements DNI-General (Definition 2): given models (or unit
groups), a dataset, affinity measures and hypothesis functions, it returns a
result frame with one affinity value per (model, score, hypothesis, unit)
plus group-level rows.  :class:`InspectConfig` toggles each optimization of
Section 5.2 -- model merging happens inside the measures, while streaming
extraction, early stopping and hypothesis caching live in the pipeline.
"""

from repro.core.cache import HypothesisCache
from repro.core.groups import UnitGroup, all_units_group, layer_groups
from repro.core.inspect import InspectConfig, inspect

__all__ = [
    "HypothesisCache",
    "InspectConfig",
    "UnitGroup",
    "all_units_group",
    "inspect",
    "layer_groups",
]
