"""The plan-based inspection engine: extraction + measures as operators.

An inspection run compiles into an :class:`InspectionPlan` of explicit
operators, mirroring Section 5's view of neural inspection as a
query-optimizable workload:

* :class:`BehaviorSource` — produces aligned unit/hypothesis behavior
  blocks.  The paper's three designs are *configurations* of this one
  operator: ``full`` and ``materialized`` extract everything up front
  (Section 5.1.2), ``streaming`` extracts lazily per block and narrows unit
  extraction to the units still-active groups need (Section 5.2.3).  Both
  behavior sides can be served from caches (:class:`HypothesisCache` /
  :class:`UnitBehaviorCache`).
* :class:`ScoreTask` — one (unit group, measure) pair driving an
  incremental :class:`~repro.measures.base.MeasureState`.  Measures whose
  statistics factor across hypothesis columns converge *per hypothesis*:
  a converged column freezes its scores and drops out of ``process_block``
  compute, instead of the coarse max-over-all-pairs criterion.
* :class:`Scheduler` — executes independent operator invocations.  The
  serial scheduler reproduces single-threaded execution exactly; the
  thread-pool scheduler parallelizes unit extraction across (model,
  extractor) pairs and score updates across tasks (numpy releases the GIL,
  so multi-model workloads scale across cores) while producing bit-identical
  results.  The process-pool scheduler goes further: cold extraction is
  *described* as picklable shard tasks (:mod:`repro.core.shard`) and
  executed across worker processes, with the mmap'd disk store as the
  exchange medium — scoring stays on the coordinator, so frames remain
  bit-identical to serial there too.

Wall-clock is charged to ``unit_extraction``, ``hypothesis_extraction`` and
``inspection`` buckets, reproducing Figure 8's runtime breakdown.
"""

from __future__ import annotations

import contextlib
import dataclasses
import multiprocessing
import os
import shutil
import tempfile
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import (HypothesisCache, UnitBehaviorCache,
                              model_fingerprint)
from repro.core.groups import UnitGroup
from repro.data.datasets import Dataset
from repro.extract.base import (Extractor, HypothesisExtractor,
                                apply_transform, finalize_rows_of,
                                raw_key_of, raw_rows_of)
from repro.hypotheses.base import HypothesisFunction
from repro.measures.base import Measure, MeasureResult
from repro.store import DiskBehaviorStore
from repro.util.blocks import iter_blocks
from repro.util.rng import new_rng
from repro.util.timing import Stopwatch

MODES = ("streaming", "materialized", "full")

#: default convergence thresholds (Section 6.2: e=0.025 for correlation,
#: 0.01 for logistic regression; 0.01 elsewhere).
DEFAULT_THRESHOLDS = {"corr": 0.025, "logreg": 0.01}
FALLBACK_THRESHOLD = 0.01


# ----------------------------------------------------------------------
# schedulers
# ----------------------------------------------------------------------
class Scheduler:
    """Executes a batch of independent operator invocations.

    ``map`` must return results in input order, so plans produce identical
    frames under every scheduler.

    Beyond bare ``map``, schedulers expose a *task-graph surface* for
    shard-parallel extraction: a scheduler with ``executes_shards = True``
    accepts self-contained :class:`~repro.core.shard.ShardTask` values via
    :meth:`submit_shards` and runs them out of process.  In-process
    schedulers keep the flag off and the plan executor never builds shard
    tasks for them — closures over live objects remain the fast path.
    """

    name = "scheduler"

    #: whether submit_shards dispatches picklable shard tasks to workers
    executes_shards = False

    #: whether submit() overlaps work with the caller — the block
    #: executor's double-buffered prefetch only arms on schedulers that
    #: actually run the submitted sweep concurrently
    supports_prefetch = False

    def map(self, fn, items: list) -> list:
        raise NotImplementedError

    def submit(self, fn) -> Future:
        """Run ``fn()`` and return a Future over its result.

        The base implementation executes inline at submit time (no
        concurrency, identical scheduling to plain calls); overlapping
        schedulers override this to hand the thunk to a worker.
        """
        future: Future = Future()
        try:
            future.set_result(fn())
        except BaseException as exc:  # surfaced at .result(), like a pool's
            future.set_exception(exc)
        return future

    def shard_workers(self) -> int:
        """Worker slots available to shard tasks (sizes task chunking)."""
        return 1

    def submit_shards(self, tasks: list) -> list:
        """Submit shard tasks; returns one future per task."""
        raise NotImplementedError(
            f"{type(self).__name__} does not execute shard tasks")

    def shutdown(self) -> None:
        pass

    # schedulers own worker threads: support explicit lifecycle scoping
    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class SerialScheduler(Scheduler):
    """Runs every invocation inline on the calling thread."""

    name = "serial"

    def map(self, fn, items: list) -> list:
        return [fn(item) for item in items]


class ThreadPoolScheduler(Scheduler):
    """Fans invocations out over a shared thread pool.

    Each work item touches disjoint state (one task's measure state, one
    (model, extractor) pair's extraction), and results are collected in
    input order, so execution is deterministic.
    """

    name = "threads"
    supports_prefetch = True

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._pool: ThreadPoolExecutor | None = None
        # session-owned schedulers are shared by every query the session
        # runs; concurrent first-touch (the server's many clients) must
        # not race two pools into existence and leak one
        self._pool_lock = threading.Lock()

    def map(self, fn, items: list) -> list:
        items = list(items)
        # no parallelism to exploit (single item or single worker):
        # skip dispatch cost and GIL contention, run inline
        if len(items) <= 1 or self.max_workers <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def submit(self, fn) -> Future:
        # always through the pool: even a 1-worker pool overlaps a
        # prefetched sweep with the caller's scoring (numpy releases the
        # GIL inside BLAS and ufunc loops)
        return self._ensure_pool().submit(fn)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def shutdown(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class ProcessPoolScheduler(Scheduler):
    """Executes shard tasks across worker processes (cold extraction).

    The coordinator describes extraction as picklable
    :class:`~repro.core.shard.ShardTask` values; workers run the raw
    sweeps and write shard files into the exchange store; the coordinator
    mmaps the results back into the memory-tier caches and runs scoring
    inline (``map`` stays serial on the calling thread), so frames are
    bit-identical to the serial scheduler's.

    ``mp_context`` picks the multiprocessing start method (``"fork"``,
    ``"spawn"``, ``"forkserver"`` or a context object); tasks carry
    models by content (arch spec + parameter arrays) rather than
    pickle-by-reference, so both fork and spawn work.  A session without
    its own disk store borrows :meth:`scratch_store` — a temp-dir
    exchange store that lives (and keeps behaviors warm) until
    :meth:`shutdown` removes it.
    """

    name = "processes"
    executes_shards = True

    def __init__(self, max_workers: int | None = None,
                 mp_context: str | None = None):
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._scratch: tuple[str, DiskBehaviorStore] | None = None
        # concurrent queries on one session share this scheduler: pool and
        # scratch-store creation must be single-flight or one of the two
        # racing pools (or temp dirs) leaks
        self._pool_lock = threading.Lock()

    def map(self, fn, items: list) -> list:
        # scoring and fallback extraction run inline on the coordinator:
        # closures over live measure states cannot (and should not) cross
        # the process boundary
        return [fn(item) for item in items]

    def shard_workers(self) -> int:
        return self.max_workers

    def submit_shards(self, tasks: list) -> list:
        from repro.core.shard import run_shard_task
        with self._pool_lock:
            if self._pool is None:
                context = self.mp_context
                if isinstance(context, str):
                    context = multiprocessing.get_context(context)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers, mp_context=context)
            pool = self._pool
        return [pool.submit(run_shard_task, task) for task in tasks]

    def scratch_store(self) -> DiskBehaviorStore:
        """The temp-dir exchange store for sessions without one.

        Created lazily, reused across runs (cross-query warm reads), and
        deleted on :meth:`shutdown`.
        """
        with self._pool_lock:
            if self._scratch is None:
                root = tempfile.mkdtemp(prefix="repro-shard-exchange-")
                self._scratch = (root, DiskBehaviorStore(root))
            return self._scratch[1]

    def shutdown(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
            scratch, self._scratch = self._scratch, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        if scratch is not None:
            shutil.rmtree(scratch[0], ignore_errors=True)


def default_scheduler(store: DiskBehaviorStore | None = None) -> Scheduler:
    """The scheduler a session should run with on this machine.

    Selection rules:

    * ``REPRO_SCHEDULER`` (``serial`` / ``threads`` / ``processes``)
      overrides everything — the CI lever that forces the whole suite
      through one scheduler.
    * A single-core host gets the serial scheduler: neither pool can win
      there, and GIL/spawn overhead makes both strictly slower.
    * On a multi-core host *with* a disk store, cold store-backed runs
      are the GIL-bound bottleneck, so the process pool is chosen: raw
      sweeps fan out across cores and exchange through the store's
      mmap'd shards.
    * Multi-core without a store falls back to the thread pool — numpy
      releases the GIL for scoring and multi-model extraction, and there
      is no exchange medium for shard tasks to write through.
    """
    forced = os.environ.get("REPRO_SCHEDULER", "").strip()
    if forced:
        return _resolve_scheduler(forced)[0]
    if (os.cpu_count() or 1) <= 1:
        return SerialScheduler()
    if store is not None:
        return ProcessPoolScheduler()
    return ThreadPoolScheduler()


_SCHEDULERS = {"serial": SerialScheduler, "threads": ThreadPoolScheduler,
               "processes": ProcessPoolScheduler}

#: guards InspectConfig._store_tiers memoization (one pair per config even
#: when concurrent runs share the config object)
_STORE_TIER_LOCK = threading.Lock()


def _resolve_scheduler(spec) -> tuple[Scheduler, bool]:
    """Returns (scheduler, owned); owned schedulers are shut down after use."""
    if spec is None:
        return SerialScheduler(), True
    if isinstance(spec, Scheduler):
        return spec, False
    if isinstance(spec, str):
        try:
            return _SCHEDULERS[spec](), True
        except KeyError:
            raise ValueError(
                f"unknown scheduler {spec!r}; expected one of "
                f"{tuple(_SCHEDULERS)} or a Scheduler instance") from None
    raise TypeError(f"scheduler must be a name or Scheduler, got {spec!r}")


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass
class InspectConfig:
    """Execution knobs for one inspection run."""

    mode: str = "streaming"
    early_stop: bool = True
    block_size: int = 512                    # records per block (paper: 512)
    error_threshold: float | dict | None = None
    shuffle: bool = True
    seed: int = 0
    cache: HypothesisCache | None = None     # hypothesis-behavior cache
    unit_cache: UnitBehaviorCache | None = None
    store: DiskBehaviorStore | None = None   # persistent disk tier
    scheduler: Scheduler | str | None = None  # None -> serial
    partition: bool = True      # per-hypothesis-column early stopping
    partition_min_rows: int = 0  # rows a state must see before freezing
    #: double-buffered extraction: while block t scores, block t+1's raw
    #: sweep runs on the scheduler (overlapping schedulers only; frames
    #: stay bit-identical — see InspectionPlan._run_blocks)
    prefetch: bool = True
    #: cross-query single-flight gate over cold raw sweeps.  Anything
    #: exposing ``lease(keys, cold=predicate) -> context manager`` works
    #: (the inspection server installs a
    #: :class:`repro.server.dedup.SweepRegistry`): the plan executor
    #: leases its sweep identities for the duration of the run, so
    #: concurrent queries needing the same cold extraction attach to one
    #: in-flight sweep instead of racing the caches.  ``None`` (the
    #: default) leaves runs ungated.
    sweep_gate: object | None = None
    stopwatch: Stopwatch | None = None
    max_records: int | None = None
    # memoized store-backed tiers (see with_store_tiers); never replace()d
    _store_tiers: tuple | None = field(default=None, init=False, repr=False,
                                       compare=False)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.scheduler is not None and not isinstance(
                self.scheduler, (str, Scheduler)):
            raise TypeError("scheduler must be a name or Scheduler, "
                            f"got {self.scheduler!r}")
        if isinstance(self.scheduler, str) \
                and self.scheduler not in _SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; expected one of "
                f"{tuple(_SCHEDULERS)} or a Scheduler instance")
        # a memory tier wired to one store while config.store names another
        # would silently split the persistent state across directories —
        # reject the conflict here, where every with_*() copy re-validates
        for label, tier in (("cache", self.cache),
                            ("unit_cache", self.unit_cache)):
            tier_store = getattr(tier, "store", None)
            if (tier_store is not None and self.store is not None
                    and tier_store is not self.store):
                raise ValueError(
                    f"conflicting store wiring: {label} is backed by a "
                    "different DiskBehaviorStore than config.store; pass "
                    "one store object to both (or drop store=)")
        if self.stopwatch is None:
            self.stopwatch = Stopwatch()

    def with_session_defaults(
            self, cache: HypothesisCache | None = None,
            unit_cache: UnitBehaviorCache | None = None,
            scheduler: Scheduler | str | None = None,
            store: DiskBehaviorStore | None = None,
            sweep_gate: object | None = None) -> "InspectConfig":
        """A copy with unset sharing knobs filled from session defaults.

        The session layer keeps per-session caches, a persistent behavior
        store and a thread-pool scheduler; a config that did not pin those
        fields inherits them, so repeated queries in one session share
        extracted behaviors (and across sessions, through the store), while
        an explicitly-configured run is left untouched.  The operation is
        idempotent: fields filled by one call are pinned, so a second call
        (with the same or another session's defaults) changes nothing.
        """
        if (cache is None or self.cache is not None) \
                and (unit_cache is None or self.unit_cache is not None) \
                and (store is None or self.store is not None) \
                and (scheduler is None or self.scheduler is not None) \
                and (sweep_gate is None or self.sweep_gate is not None):
            return self  # nothing to fill: don't build a copy per query
        return dataclasses.replace(
            self,
            cache=self.cache if self.cache is not None else cache,
            unit_cache=(self.unit_cache if self.unit_cache is not None
                        else unit_cache),
            store=self.store if self.store is not None else store,
            scheduler=(self.scheduler if self.scheduler is not None
                       else scheduler),
            sweep_gate=(self.sweep_gate if self.sweep_gate is not None
                        else sweep_gate))

    def with_store_tiers(self) -> "InspectConfig":
        """A copy whose caches sit on top of ``store``, when one is set.

        A configured disk tier implies caching: runs that did not pin their
        own memory tiers get fresh ones backed by the store, so behaviors
        persist (and warm reads come back) even across processes that never
        share a cache object.  The derived tiers are memoized on this
        config, so repeated calls (every plan build re-applies this) hand
        back the *same* memory tiers instead of silently stacking a fresh
        pair per run — repeated runs of one config share their memory tier
        and report coherent hit counters.
        """
        if self.store is None or (self.cache is not None
                                  and self.unit_cache is not None):
            return self
        with _STORE_TIER_LOCK:  # configs are shared across pool threads
            if self._store_tiers is None \
                    or self._store_tiers[0] is not self.store:
                self._store_tiers = (self.store,
                                     HypothesisCache(store=self.store),
                                     UnitBehaviorCache(store=self.store))
            _, hyp_tier, unit_tier = self._store_tiers
        return dataclasses.replace(
            self,
            cache=self.cache or hyp_tier,
            unit_cache=self.unit_cache or unit_tier)

    def threshold_for(self, score_id: str) -> float:
        if isinstance(self.error_threshold, (int, float)):
            return float(self.error_threshold)
        table = dict(DEFAULT_THRESHOLDS)
        if isinstance(self.error_threshold, dict):
            table.update(self.error_threshold)
        prefix = score_id.split(":")[0]
        return table.get(prefix, FALLBACK_THRESHOLD)


@dataclass
class GroupMeasureOutcome:
    """Result of one (unit group, measure) pair over all hypotheses."""

    group: UnitGroup
    measure: Measure
    result: MeasureResult
    hypothesis_names: list[str]
    records_processed: int = 0


# ----------------------------------------------------------------------
# operators
# ----------------------------------------------------------------------
def _total_units(extractor: Extractor, model) -> int | None:
    try:
        return int(extractor.n_units(model))
    except (AttributeError, NotImplementedError):
        return None


def _extract_hypotheses(hypotheses: list[HypothesisFunction],
                        dataset: Dataset, indices: np.ndarray,
                        cache: HypothesisCache | None) -> np.ndarray:
    if cache is not None:
        columns = [cache.extract(h, dataset, indices).reshape(-1)
                   for h in hypotheses]
        return np.stack(columns, axis=1)
    return HypothesisExtractor(hypotheses).extract(dataset, indices)


class BehaviorSource:
    """Serves aligned behavior blocks for record positions in ``order``.

    ``materialize=False`` (streaming) extracts lazily per request;
    ``materialize=True`` extracts everything on :meth:`prepare` and then
    serves row slices.  Either way unit extraction runs once per distinct
    (model, extractor) pair and — when the requesting groups cover a strict
    subset of a model's units — is narrowed to the union of their unit ids
    via ``hid_units``, so behaviors nobody asked for are never materialized.
    With a :class:`UnitBehaviorCache` configured, extraction instead runs at
    full width and slices columns on read: cache entries then reuse across
    runs regardless of which groups were active when they were filled.
    """

    def __init__(self, dataset: Dataset, hypotheses: list[HypothesisFunction],
                 groups: list[UnitGroup], default_extractor: Extractor,
                 config: InspectConfig, order: np.ndarray):
        self.dataset = dataset
        self.hypotheses = hypotheses
        self.groups = groups
        self.default_extractor = default_extractor
        self.config = config
        self.order = order
        self.materialize = config.mode in ("materialized", "full")
        self._h_all: np.ndarray | None = None
        self._u_all: dict[int, np.ndarray] | None = None
        # fingerprints and raw keys are stable for the lifetime of one plan
        # execution; memoize so warm cache hits don't re-hash model
        # parameters (or large extractor attributes) on every block.
        # id() is only the memo *index*, never part of the key — each
        # entry pins its referent so the address cannot be recycled and
        # handed to a different object while the memo lives
        self._model_keys: dict[int, tuple[object, str]] = {}
        self._raw_keys: dict[int, tuple[object, str | None]] = {}

    def _model_key(self, model) -> str:
        entry = self._model_keys.get(id(model))  # repro: allow[REP003]
        if entry is None or entry[0] is not model:
            entry = (model, model_fingerprint(model))
            self._model_keys[id(model)] = entry  # repro: allow[REP003]
        return entry[1]

    def _raw_key(self, extractor) -> str | None:
        """Stable raw identity, or None when the extractor has none.

        None keeps the extractor groupable per-instance; attempting to
        *cache or persist* under it still fails loudly downstream, exactly
        as calling ``extractor.cache_key()`` always did.
        """
        entry = self._raw_keys.get(id(extractor))  # repro: allow[REP003]
        if entry is None or entry[0] is not extractor:
            try:
                key = raw_key_of(extractor)
            except AttributeError:
                key = None
            entry = (extractor, key)
            self._raw_keys[id(extractor)] = entry  # repro: allow[REP003]
        return entry[1]

    # -- plumbing ------------------------------------------------------
    @property
    def n_records(self) -> int:
        return int(self.order.shape[0])

    def block_slices(self):
        """Record-position slices the executor iterates over."""
        if self.config.mode == "full":
            yield slice(0, self.n_records)
            return
        yield from iter_blocks(self.n_records, self.config.block_size)

    def _extract_units_for_pair(self, members: list[tuple[int, UnitGroup]],
                                indices: np.ndarray) -> dict[int, np.ndarray]:
        """One forward sweep for all groups sharing a (model, raw-key) pair.

        Members may carry *different* extractors — the grouping key is the
        raw sweep identity, so extractors differing only in transform,
        layer view or unit subset are fused here: the model runs once and
        each member's behaviors are derived as read-time views.
        """
        _, first = members[0]
        model = first.model
        out: dict[int, np.ndarray] = {}
        if self.config.unit_cache is not None:
            # cache raw behaviors at full width: entry keys stay independent
            # of the transform, the unit subset and which groups happen to
            # be active, so warm hits survive different views and
            # convergence trajectories; views are applied on read.  The
            # first extractor's miss runs the sweep; the rest hit memory.
            by_ext: dict[int, tuple[Extractor, list]] = {}
            for gi, group in members:
                ext = group.extractor or self.default_extractor
                by_ext.setdefault(id(ext), (ext, []))[1].append((gi, group))
            for ext, ext_members in by_ext.values():
                block = self.config.unit_cache.extract(
                    model, ext, self.dataset, indices, hid_units=None,
                    model_key=self._model_key(model),
                    raw_key=self._raw_key(ext))
                for gi, group in ext_members:
                    out[gi] = block[:, group.unit_ids]
            return out
        extractors = {}
        for _, group in members:
            ext = group.extractor or self.default_extractor
            extractors.setdefault(id(ext), ext)
        if len(extractors) == 1:
            # single behavior definition: narrow extraction to the union of
            # requested units, so behaviors nobody asked for are never
            # materialized
            ext = next(iter(extractors.values()))
            union = np.unique(
                np.concatenate([g.unit_ids for _, g in members]))
            total = _total_units(ext, model)
            narrow = total is not None and union.shape[0] < total
            block = ext.extract(model, self.dataset.symbols[indices],
                                hid_units=union if narrow else None)
            for gi, group in members:
                cols = (np.searchsorted(union, group.unit_ids) if narrow
                        else group.unit_ids)
                out[gi] = block[:, cols]
            return out
        # several views over one sweep, no cache to share through: extract
        # raw once and finalize per member
        rep = next(iter(extractors.values()))
        ns = self.dataset.n_symbols
        if not all(getattr(ext, "supports_raw", False)
                   for ext in extractors.values()):
            # duck-typed members: full-width sweep, plain column views
            raw = raw_rows_of(rep, model, self.dataset.symbols[indices])
            for gi, group in members:
                ext = group.extractor or self.default_extractor
                out[gi] = finalize_rows_of(ext, model, raw, ns,
                                           hid_units=group.unit_ids)
            return out
        # narrow the shared sweep to the union of *raw* columns the
        # members read (each member's unit ids mapped through its layer
        # view), so behaviors nobody asked for are never materialized —
        # the fused mirror of the single-extractor union path above
        raw_cols: dict[int, np.ndarray] = {}
        for gi, group in members:
            ext = group.extractor or self.default_extractor
            view = ext.view_columns(model)
            raw_cols[gi] = (np.asarray(view)[group.unit_ids]
                            if view is not None
                            else np.asarray(group.unit_ids))
        union = np.unique(np.concatenate(list(raw_cols.values())))
        try:
            total = int(rep.raw_width(model))
        except (AttributeError, NotImplementedError, TypeError):
            total = None
        narrow = total is not None and union.shape[0] < total
        raw = raw_rows_of(rep, model, self.dataset.symbols[indices],
                          columns=union if narrow else None)
        states = raw.reshape(-1, ns, raw.shape[-1])
        for gi, group in members:
            ext = group.extractor or self.default_extractor
            cols = (np.searchsorted(union, raw_cols[gi]) if narrow
                    else raw_cols[gi])
            block = apply_transform(
                states[:, :, cols],
                getattr(ext, "transform", "activation"))
            out[gi] = block.reshape(-1, block.shape[-1])
        return out

    def extraction_pairs(self, groups: list[tuple[int, UnitGroup]] | None
                         = None) -> dict:
        """Members grouped by shared (model, raw-sweep) identity.

        The pure task-description half of unit extraction: each key is
        one forward-sweep shard — extractors differing only in transform,
        layer view or unit subset fuse under one key — and carries the
        ``(gi, group)`` members it serves.  Both the in-process execution
        path (:meth:`_extract_unit_blocks`) and the shard-task builder
        (:class:`repro.core.shard.ShardExchange`) partition work on it,
        so they can never disagree about what one sweep covers.
        """
        if groups is None:
            groups = list(enumerate(self.groups))
        by_pair: dict[tuple[int, str], list[tuple[int, UnitGroup]]] = {}
        for gi, group in groups:
            ext = group.extractor or self.default_extractor
            # identity-less extractors group per instance: they can still
            # run, they just never fuse (or cache) with anything else
            raw_key = self._raw_key(ext) or f"@{id(ext):x}"
            by_pair.setdefault((id(group.model), raw_key),
                               []).append((gi, group))
        return by_pair

    def _extract_unit_blocks(self, groups: list[tuple[int, UnitGroup]],
                             indices: np.ndarray,
                             scheduler: Scheduler) -> dict[int, np.ndarray]:
        by_pair = self.extraction_pairs(groups)
        results = scheduler.map(
            lambda members: self._extract_units_for_pair(members, indices),
            list(by_pair.values()))
        merged: dict[int, np.ndarray] = {}
        for chunk in results:
            merged.update(chunk)
        return merged

    # -- executor interface --------------------------------------------
    def prepare(self, scheduler: Scheduler, watch: Stopwatch) -> None:
        if not self.materialize:
            return
        with watch.charge("hypothesis_extraction"):
            self._h_all = _extract_hypotheses(self.hypotheses, self.dataset,
                                              self.order, self.config.cache)
        with watch.charge("unit_extraction"):
            self._u_all = self._extract_unit_blocks(
                list(enumerate(self.groups)), self.order, scheduler)

    def hypothesis_block(self, sl: slice, watch: Stopwatch,
                         columns: np.ndarray | None = None) -> np.ndarray:
        """Hypothesis behaviors for the slice.

        ``columns`` narrows lazy extraction to the still-active hypothesis
        columns (the hypothesis-side mirror of ``hid_units``): frozen
        hypotheses are not re-evaluated for the remaining blocks.  Ignored
        when materialized — everything was extracted up front.
        """
        ns = self.dataset.n_symbols
        if self.materialize:
            assert self._h_all is not None
            return self._h_all[sl.start * ns:sl.stop * ns]
        hyps = (self.hypotheses if columns is None
                else [self.hypotheses[int(c)] for c in columns])
        with watch.charge("hypothesis_extraction"):
            return _extract_hypotheses(hyps, self.dataset,
                                       self.order[sl], self.config.cache)

    def unit_blocks(self, sl: slice, groups: list[tuple[int, UnitGroup]],
                    scheduler: Scheduler,
                    watch: Stopwatch) -> dict[int, np.ndarray]:
        ns = self.dataset.n_symbols
        if self.materialize:
            assert self._u_all is not None
            return {gi: self._u_all[gi][sl.start * ns:sl.stop * ns]
                    for gi, _ in groups}
        with watch.charge("unit_extraction"):
            return self._extract_unit_blocks(groups, self.order[sl],
                                             scheduler)

    def describe(self) -> str:
        parts = [f"materialize={self.materialize}",
                 f"block_size={self.config.block_size}",
                 f"hyp_cache={'on' if self.config.cache else 'off'}",
                 f"unit_cache={'on' if self.config.unit_cache else 'off'}",
                 f"store={'on' if self.config.store else 'off'}"]
        return f"BehaviorSource({', '.join(parts)})"


class ScoreTask:
    """One (unit group, measure) pair: state, convergence, freezing.

    With a partition-capable measure and early stopping on, hypothesis
    columns converge individually: a column whose error bound drops under
    the threshold has its scores snapshotted, is removed from the measure
    state's sufficient statistics, and stops being fed — later blocks only
    pay for the still-active columns.  The task finishes when every column
    is frozen (or, for non-partition measures, when the scalar criterion
    fires).
    """

    def __init__(self, gi: int, group: UnitGroup, mi: int, measure: Measure,
                 n_hyps: int, config: InspectConfig):
        self.gi = gi
        self.mi = mi
        self.group = group
        self.measure = measure
        self.n_hyps = n_hyps
        self.threshold = config.threshold_for(measure.score_id)
        self.single_shot = config.mode == "full"
        self.early_stop = (config.early_stop and measure.supports_early_stop
                           and not self.single_shot)
        self.partition = (self.early_stop and config.partition
                          and measure.supports_partition)
        self.partition_min_rows = config.partition_min_rows
        self.state = (None if self.single_shot
                      else measure.new_state(group.n_units, n_hyps))
        self.active_cols = np.arange(n_hyps)
        self.col_rows = np.zeros(n_hyps, dtype=np.int64)
        self.col_converged = np.zeros(n_hyps, dtype=bool)
        self._frozen_unit: np.ndarray | None = None
        self._frozen_group: np.ndarray | None = None
        self._last: MeasureResult | None = None
        self.records_processed = 0
        self.last_error = float("inf")  # error bound after the last block
        self.done = False

    # ------------------------------------------------------------------
    def process(self, u_block: np.ndarray, h_block: np.ndarray,
                n_records: int) -> None:
        """Consume one aligned block.

        ``h_block`` must already be restricted to this task's active
        hypothesis columns (the executor slices once per task, which lets
        the source skip extracting globally-frozen columns altogether).
        """
        if self.single_shot:
            self._last = self.measure.compute(u_block, h_block)
            self.col_rows[:] = u_block.shape[0]
            self.col_converged[:] = True
            self.records_processed = n_records
            self.last_error = 0.0
            self.done = True
            return
        result, err = self.measure.process_block(self.state, u_block,
                                                 h_block)
        self._last = result
        self.last_error = float(err)
        self.records_processed += n_records
        self.col_rows[self.active_cols] += u_block.shape[0]
        if not self.early_stop:
            return
        if self.partition:
            self._freeze_converged()
        elif err <= self.threshold:
            result.converged = True
            self.col_converged[:] = True
            self.done = True

    def _freeze_converged(self) -> None:
        if self.state.n_rows < self.partition_min_rows:
            return
        errors = self.state.column_errors()
        if errors is None:  # state opted out at runtime: scalar fallback
            if self.state.error() <= self.threshold:
                self._last.converged = True
                self.col_converged[:] = True
                self.done = True
            return
        # NaN marks a vacuous column (score pinned at a default but not
        # final, e.g. a hypothesis with no contrast yet): never freeze it --
        # later blocks may revive it -- but don't let it keep the task alive
        # once every informative column has converged.
        with np.errstate(invalid="ignore"):
            ready = errors <= self.threshold
        vacuous = np.isnan(errors)
        if ready.any():
            scores = self.state.unit_scores()
            group = self.state.group_scores()
            if self._frozen_unit is None:
                self._frozen_unit = np.zeros(
                    (self.group.n_units, self.n_hyps))
                if group is not None:
                    self._frozen_group = np.zeros(self.n_hyps)
            frozen_global = self.active_cols[ready]
            self._frozen_unit[:, frozen_global] = scores[:, ready]
            if group is not None and self._frozen_group is not None:
                self._frozen_group[frozen_global] = group[ready]
            self.col_converged[frozen_global] = True
            keep = ~ready
            self.active_cols = self.active_cols[keep]
            if self.active_cols.shape[0]:
                self.state.restrict_columns(np.flatnonzero(keep))
            vacuous = vacuous[keep]
        if self.active_cols.shape[0] == 0:
            self.done = True
        elif vacuous.all():
            # only vacuous columns remain: the task is converged the same
            # way the scalar criterion treats an all-degenerate state; their
            # live (pinned) scores are stitched into the result
            self.col_converged[self.active_cols] = True
            if self._last is not None:
                self._last.converged = True
            self.done = True

    # ------------------------------------------------------------------
    def outcome(self, names: list[str]) -> GroupMeasureOutcome:
        if self._frozen_unit is not None:
            result = self._stitched_result()
        elif self._last is not None:
            result = self._last
        else:  # zero blocks processed (empty dataset, or a progressive
            # snapshot taken before this task's first block — single-shot
            # tasks have no state yet, so build a throwaway empty one)
            state = (self.state if self.state is not None
                     else self.measure.new_state(self.group.n_units,
                                                 self.n_hyps))
            result = state.result()
        result.col_rows_seen = self.col_rows.copy()
        result.col_converged = self.col_converged.copy()
        return GroupMeasureOutcome(
            group=self.group, measure=self.measure, result=result,
            hypothesis_names=names,
            records_processed=self.records_processed)

    def _stitched_result(self) -> MeasureResult:
        """Merge frozen column snapshots with the live state's columns."""
        unit = self._frozen_unit.copy()
        group = (None if self._frozen_group is None
                 else self._frozen_group.copy())
        extras = None
        if self.active_cols.shape[0]:
            live = self.state.result()
            unit[:, self.active_cols] = live.unit_scores
            if group is not None and live.group_scores is not None:
                group[self.active_cols] = live.group_scores
            extras = live.extras
        return MeasureResult(
            unit_scores=unit, group_scores=group,
            n_rows_seen=int(self.col_rows.max(initial=0)),
            converged=bool(self.col_converged.all()),
            extras=extras)

    def describe(self) -> str:
        policy = ("single-shot" if self.single_shot
                  else "per-column" if self.partition
                  else "scalar" if self.early_stop else "exhaustive")
        return (f"ScoreTask({self.group.model_id}/{self.group.name} x "
                f"{self.measure.score_id}, stop={policy})")


# ----------------------------------------------------------------------
# plan
# ----------------------------------------------------------------------
@dataclass
class InspectionPlan:
    """A compiled inspection run: source + tasks + scheduling policy."""

    groups: list[UnitGroup]
    dataset: Dataset
    measures: list[Measure]
    hypotheses: list[HypothesisFunction]
    config: InspectConfig
    order: np.ndarray
    source: BehaviorSource = field(init=False)
    tasks: list[ScoreTask] = field(init=False)

    @classmethod
    def build(cls, groups: list[UnitGroup], dataset: Dataset,
              measures: list[Measure],
              hypotheses: list[HypothesisFunction],
              extractor: Extractor, config: InspectConfig) -> "InspectionPlan":
        if not groups:
            raise ValueError("need at least one unit group")
        if not measures:
            raise ValueError("need at least one measure")
        if not hypotheses:
            raise ValueError("need at least one hypothesis function")
        config = config.with_store_tiers()
        rng = new_rng(config.seed)
        n_records = dataset.n_records
        if config.max_records is not None:
            n_records = min(n_records, config.max_records)
        order = np.arange(n_records)
        if config.shuffle:
            rng.shuffle(order)
        plan = cls(groups=groups, dataset=dataset, measures=measures,
                   hypotheses=hypotheses, config=config, order=order)
        plan.source = BehaviorSource(dataset, hypotheses, groups, extractor,
                                     config, order)
        n_hyps = len(hypotheses)
        plan.tasks = [ScoreTask(gi, g, mi, m, n_hyps, config)
                      for gi, g in enumerate(groups)
                      for mi, m in enumerate(measures)]
        return plan

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Readable operator tree (the EXPLAIN of an inspection run)."""
        sched = self.config.scheduler
        sched_name = (sched.name if isinstance(sched, Scheduler)
                      else sched or "serial")
        lines = [f"InspectionPlan(mode={self.config.mode}, "
                 f"records={self.source.n_records}, "
                 f"scheduler={sched_name})",
                 f"  {self.source.describe()}"]
        lines += [f"  {task.describe()}" for task in self.tasks]
        return "\n".join(lines)

    def execute(self) -> list[GroupMeasureOutcome]:
        for _ in self.execute_blocks():
            pass
        return self.outcomes()

    # -- sweep identity (cross-query dedup surface) --------------------
    def sweep_keys(self) -> list[tuple[str, str, str]]:
        """Stable identities of the raw forward sweeps this run may issue.

        One ``(model fingerprint, raw-extractor key, dataset hash)`` triple
        per fused extraction pair — the exact granularity the
        :class:`~repro.core.cache.UnitBehaviorCache` and the disk store
        key entries by, so two plans that would fill the same cache entry
        report the same key.  Extractors without a raw identity get a
        process-local token (they can never share a sweep anyway).
        """
        dataset_key = self.dataset.cache_key()
        keys: set[tuple[str, str, str]] = set()
        for (_, raw_key), members in self.source.extraction_pairs().items():
            _, group = members[0]
            keys.add((self.source._model_key(group.model), raw_key,
                      dataset_key))
        return sorted(keys)

    def sweep_is_cold(self, key: tuple[str, str, str]) -> bool:
        """Whether serving ``key`` for this run still needs extraction.

        Probes the memory tier only (no counters move): a warm key must
        not be leased by a sweep gate, or concurrent warm queries would
        serialize behind each other for no benefit.  Without a unit cache
        there is nothing to share a sweep through, so everything counts
        as cold.
        """
        cache = self.config.unit_cache
        if cache is None:
            return True
        model_key, raw_key, _ = key
        missing = cache.missing_records(self.dataset, self.order,
                                        model_key=model_key,
                                        raw_key=raw_key)
        return bool(missing.shape[0])

    def execute_blocks(self):
        """Drive the executor loop, yielding once after each block.

        The run's full lifecycle rides on the generator: the scheduler is
        resolved up front (and an owned one shut down at exhaustion *or*
        abandonment), and the whole run shares one store commit scope —
        one manifest rewrite per run, not one per (entry, block); shard
        files still land (fsynced) as they are extracted, they just become
        visible together when the scope closes.  Callers snapshot whatever
        task state they need between steps (:meth:`outcomes`, or
        individual tasks for cheaper partial reads).

        With ``config.sweep_gate`` set, the run first leases its sweep
        identities: if another in-flight run is already extracting one of
        them, this run waits for that sweep to land in the shared caches
        instead of racing a duplicate forward pass (the server's
        cross-client dedup).  The lease is released — and waiters woken —
        even when the consumer abandons this generator mid-run.
        """
        scheduler, owned = _resolve_scheduler(self.config.scheduler)
        store_scope = (self.config.store.deferred_commits()
                       if self.config.store is not None
                       else contextlib.nullcontext())
        gate = self.config.sweep_gate
        gate_scope = (gate.lease(self.sweep_keys(), cold=self.sweep_is_cold)
                      if gate is not None else contextlib.nullcontext())
        try:
            with gate_scope, store_scope:
                yield from self._block_steps(scheduler)
        finally:
            if owned:
                scheduler.shutdown()

    def execute_progressive(self):
        """Generator over per-block result snapshots (Section 5.2.3).

        Yields the full outcome list after every processed block, so
        interactive callers watch scores refine as blocks arrive; the final
        snapshot is exactly :meth:`execute`'s return value (same loop, same
        states, same order).  Abandoning the generator stops the run
        cleanly: the store scope flushes and an owned scheduler shuts down
        on ``close()``, and no further extraction happens.
        """
        # closing(): GeneratorExit at our yield must still run the inner
        # generator's cleanup promptly (store flush, owned-pool shutdown)
        with contextlib.closing(self.execute_blocks()) as steps:
            for _ in steps:
                yield self.outcomes()

    def outcomes(self) -> list[GroupMeasureOutcome]:
        """Current (possibly partial) outcome snapshot of every task."""
        names = [h.name for h in self.hypotheses]
        return [task.outcome(names) for task in self.tasks]

    def _block_steps(self, scheduler: Scheduler):
        """The executor loop; yields once after each processed block.

        With a shard-executing scheduler, cold extraction is dispatched
        to worker processes up front (:class:`~repro.core.shard
        .ShardExchange`) and integrated just-in-time per block; the loop
        below then reads everything out of the (now warm) caches, so the
        scoring path — and therefore the frame — is the same under every
        scheduler.
        """
        from repro.core.shard import ShardExchange
        watch = self.config.stopwatch
        n_hyps = len(self.hypotheses)
        exchange = ShardExchange.build(self.source, scheduler)
        try:
            if exchange is not None:
                with watch.charge("unit_extraction"):
                    exchange.dispatch()
                if self.source.materialize:
                    exchange.ensure_all(watch)
            yield from self._run_blocks(scheduler, exchange, watch, n_hyps)
        finally:
            if exchange is not None:
                exchange.close()

    def _run_blocks(self, scheduler: Scheduler, exchange, watch,
                    n_hyps: int):
        """The per-block loop, double-buffered on overlapping schedulers.

        With ``config.prefetch`` on and a scheduler whose :meth:`Scheduler
        .submit` runs concurrently, block t+1's raw unit sweep is submitted
        before block t's scoring starts, so extraction BLAS and measure
        BLAS overlap.  Invariants:

        * **Frames are bit-identical** to serial execution: block order,
          per-block record slices and the per-group behavior values are
          unchanged — a prefetched sweep covers the groups pending at
          launch time, a superset of those pending at consumption (the
          pending set shrinks monotonically), and each group's block is
          independent of which other groups share the extraction call.
        * **Counters are exact** while every prefetched block is consumed:
          the consumed future *is* the block's extraction (the loop does
          not re-probe the caches), so cache hit/miss/extraction and model
          forward counts match serial execution.  Only a run whose tasks
          all converge exactly at a block boundary pays one speculative
          sweep serial execution would have skipped — the same surplus the
          process scheduler's up-front shard dispatch already accepts.
        * Shard-exchange runs keep their own overlap (``exchange`` already
          dispatched all cold work to worker processes), and materialized
          runs extracted everything in :meth:`BehaviorSource.prepare`, so
          both leave prefetch off.

        The background sweep runs with a serial scheduler (no nested pool
        fan-out from inside a worker) and a throwaway stopwatch; the main
        thread charges only its await-stall to ``unit_extraction``.
        """
        self.source.prepare(scheduler, watch)
        slices = list(self.source.block_slices())
        use_prefetch = (self.config.prefetch
                        and scheduler.supports_prefetch
                        and not self.source.materialize
                        and exchange is None)
        prefetched: tuple[int, Future] | None = None
        try:
            for bi, sl in enumerate(slices):
                pending = [t for t in self.tasks if not t.done]
                if not pending:
                    break
                if exchange is not None:
                    exchange.ensure(sl, watch)
                # hypothesis columns frozen in *every* pending task need no
                # further extraction (streaming only; materialized already
                # paid)
                cols_union = None
                if not self.source.materialize:
                    if any(t.active_cols.shape[0] < n_hyps for t in pending):
                        cols_union = np.unique(np.concatenate(
                            [t.active_cols for t in pending]))
                        if cols_union.shape[0] == n_hyps:
                            cols_union = None
                h_block = self.source.hypothesis_block(sl, watch,
                                                       columns=cols_union)

                def h_for(task):
                    """This task's active columns, within h_block."""
                    if cols_union is None:
                        if task.active_cols.shape[0] == n_hyps:
                            return h_block
                        return h_block[:, task.active_cols]
                    local = np.searchsorted(cols_union, task.active_cols)
                    if local.shape[0] == h_block.shape[1]:
                        return h_block
                    return h_block[:, local]

                needed: dict[int, UnitGroup] = {}
                for task in pending:
                    needed.setdefault(task.gi, task.group)
                needed_items = sorted(needed.items())
                if prefetched is not None and prefetched[0] == bi:
                    future = prefetched[1]
                    prefetched = None
                    with watch.charge("unit_extraction"):
                        u_blocks = future.result()
                else:
                    u_blocks = self.source.unit_blocks(
                        sl, needed_items, scheduler, watch)
                if use_prefetch and bi + 1 < len(slices):
                    nxt = slices[bi + 1]
                    prefetched = (bi + 1, scheduler.submit(
                        lambda sl=nxt, items=needed_items:
                            self.source.unit_blocks(
                                sl, items, SerialScheduler(), Stopwatch())))
                n_records = sl.stop - sl.start
                with watch.charge("inspection"):
                    scheduler.map(
                        lambda task: task.process(u_blocks[task.gi],
                                                  h_for(task), n_records),
                        pending)
                yield sl
        finally:
            if prefetched is not None:
                future = prefetched[1]
                # a sweep already in flight must finish before the run's
                # store scope closes (it may write through the caches);
                # swallow its error — nobody consumes the result
                if not future.cancel():
                    future.exception()


def run_inspection(groups: list[UnitGroup], dataset: Dataset,
                   measures: list[Measure],
                   hypotheses: list[HypothesisFunction],
                   extractor: Extractor,
                   config: InspectConfig) -> list[GroupMeasureOutcome]:
    """Execute DNI-General and return one outcome per (group, measure)."""
    plan = InspectionPlan.build(groups, dataset, measures, hypotheses,
                                extractor, config)
    return plan.execute()
