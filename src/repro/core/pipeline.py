"""The inspection pipeline: extraction + measures, with all optimizations.

Three execution modes mirror the designs of Section 5:

* ``full``          -- materialize all behaviors, then run each measure's
  exact full-data computation (the naive DeepBase design, Section 5.1.2;
  also the quality-experiment path).
* ``materialized``  -- materialize all behaviors, then feed them to the
  incremental measure states block-by-block with optional early stopping
  (the paper's ``+MM+ES`` configuration).
* ``streaming``     -- extract unit and hypothesis behaviors lazily per
  block and stop extracting the moment every score has converged
  (full DeepBase, Section 5.2.3).

Wall-clock is charged to ``unit_extraction``, ``hypothesis_extraction`` and
``inspection`` buckets, reproducing Figure 8's runtime breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import HypothesisCache
from repro.core.groups import UnitGroup
from repro.data.datasets import Dataset
from repro.extract.base import Extractor, HypothesisExtractor
from repro.hypotheses.base import HypothesisFunction
from repro.measures.base import Measure, MeasureResult
from repro.util.blocks import iter_blocks
from repro.util.rng import new_rng
from repro.util.timing import Stopwatch

MODES = ("streaming", "materialized", "full")

#: default convergence thresholds (Section 6.2: e=0.025 for correlation,
#: 0.01 for logistic regression; 0.01 elsewhere).
DEFAULT_THRESHOLDS = {"corr": 0.025, "logreg": 0.01}
FALLBACK_THRESHOLD = 0.01


@dataclass
class InspectConfig:
    """Execution knobs for one inspection run."""

    mode: str = "streaming"
    early_stop: bool = True
    block_size: int = 512                    # records per block (paper: 512)
    error_threshold: float | dict | None = None
    shuffle: bool = True
    seed: int = 0
    cache: HypothesisCache | None = None
    stopwatch: Stopwatch | None = None
    max_records: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.stopwatch is None:
            self.stopwatch = Stopwatch()

    def threshold_for(self, score_id: str) -> float:
        if isinstance(self.error_threshold, (int, float)):
            return float(self.error_threshold)
        table = dict(DEFAULT_THRESHOLDS)
        if isinstance(self.error_threshold, dict):
            table.update(self.error_threshold)
        prefix = score_id.split(":")[0]
        return table.get(prefix, FALLBACK_THRESHOLD)


@dataclass
class GroupMeasureOutcome:
    """Result of one (unit group, measure) pair over all hypotheses."""

    group: UnitGroup
    measure: Measure
    result: MeasureResult
    hypothesis_names: list[str]
    records_processed: int = 0


def _total_units(extractor: Extractor, model) -> int | None:
    try:
        return int(extractor.n_units(model))
    except (AttributeError, NotImplementedError):
        return None


def _extract_unit_blocks(groups: list[tuple[int, UnitGroup]],
                         default_extractor: Extractor, records: np.ndarray,
                         watch: Stopwatch) -> dict[int, np.ndarray]:
    """Unit behaviors for ``records``, one extraction per (model, extractor)
    pair, keyed by group index.

    When the groups sharing a pair cover only a strict subset of the model's
    units, the union of their unit ids is passed through ``hid_units`` so
    the extractor never materializes behaviors nobody asked for; each
    group's block is then sliced out of the union's column space.
    """
    by_pair: dict[tuple[int, int], list[tuple[int, UnitGroup]]] = {}
    for gi, group in groups:
        ext = group.extractor or default_extractor
        by_pair.setdefault((id(group.model), id(ext)), []).append((gi, group))

    out: dict[int, np.ndarray] = {}
    for members in by_pair.values():
        _, first = members[0]
        ext = first.extractor or default_extractor
        union = np.unique(np.concatenate([g.unit_ids for _, g in members]))
        total = _total_units(ext, first.model)
        narrow = total is not None and union.shape[0] < total
        with watch.charge("unit_extraction"):
            block = ext.extract(first.model, records,
                                hid_units=union if narrow else None)
        for gi, group in members:
            cols = (np.searchsorted(union, group.unit_ids) if narrow
                    else group.unit_ids)
            out[gi] = block[:, cols]
    return out


def _extract_hypotheses(hypotheses: list[HypothesisFunction],
                        dataset: Dataset, indices: np.ndarray,
                        cache: HypothesisCache | None) -> np.ndarray:
    if cache is not None:
        columns = [cache.extract(h, dataset, indices).reshape(-1)
                   for h in hypotheses]
        return np.stack(columns, axis=1)
    return HypothesisExtractor(hypotheses).extract(dataset, indices)


def run_inspection(groups: list[UnitGroup], dataset: Dataset,
                   measures: list[Measure],
                   hypotheses: list[HypothesisFunction],
                   extractor: Extractor,
                   config: InspectConfig) -> list[GroupMeasureOutcome]:
    """Execute DNI-General and return one outcome per (group, measure)."""
    if not groups:
        raise ValueError("need at least one unit group")
    if not measures:
        raise ValueError("need at least one measure")
    if not hypotheses:
        raise ValueError("need at least one hypothesis function")

    rng = new_rng(config.seed)
    n_records = dataset.n_records
    if config.max_records is not None:
        n_records = min(n_records, config.max_records)
    order = np.arange(n_records)
    if config.shuffle:
        rng.shuffle(order)

    if config.mode == "streaming":
        return _run_streaming(groups, dataset, measures, hypotheses,
                              extractor, config, order)
    return _run_materialized(groups, dataset, measures, hypotheses,
                             extractor, config, order)


# ----------------------------------------------------------------------
def _run_streaming(groups, dataset, measures, hypotheses, extractor,
                   config, order) -> list[GroupMeasureOutcome]:
    watch = config.stopwatch
    names = [h.name for h in hypotheses]
    n_hyps = len(hypotheses)
    states = {(gi, mi): m.new_state(g.n_units, n_hyps)
              for gi, g in enumerate(groups) for mi, m in enumerate(measures)}
    active = set(states)
    records_done = {key: 0 for key in states}
    last: dict[tuple[int, int], MeasureResult] = {}

    for block in iter_blocks(order.shape[0], config.block_size):
        indices = order[block]
        with watch.charge("hypothesis_extraction"):
            h_block = _extract_hypotheses(hypotheses, dataset, indices,
                                          config.cache)
        # extract each distinct (model, extractor) pair once per block,
        # narrowed to the units the still-active groups actually need
        active_groups = [
            (gi, group) for gi, group in enumerate(groups)
            if any((gi, mi) in active for mi in range(len(measures)))]
        u_blocks = _extract_unit_blocks(active_groups, extractor,
                                        dataset.symbols[indices], watch)
        for gi, group in active_groups:
            u_block = u_blocks[gi]
            for mi, measure in enumerate(measures):
                skey = (gi, mi)
                if skey not in active:
                    continue
                with watch.charge("inspection"):
                    result, err = measure.process_block(
                        states[skey], u_block, h_block)
                last[skey] = result
                records_done[skey] += indices.shape[0]
                if (config.early_stop and measure.supports_early_stop
                        and err <= config.threshold_for(measure.score_id)):
                    result.converged = True
                    active.discard(skey)
        if not active:
            break

    return _collect(groups, measures, states, last, records_done, names)


def _run_materialized(groups, dataset, measures, hypotheses, extractor,
                      config, order) -> list[GroupMeasureOutcome]:
    watch = config.stopwatch
    names = [h.name for h in hypotheses]
    n_hyps = len(hypotheses)

    with watch.charge("hypothesis_extraction"):
        h_all = _extract_hypotheses(hypotheses, dataset, order, config.cache)
    unit_all = _extract_unit_blocks(list(enumerate(groups)), extractor,
                                    dataset.symbols[order], watch)

    outcomes: list[GroupMeasureOutcome] = []
    ns = dataset.n_symbols
    for gi, group in enumerate(groups):
        u_full = unit_all[gi]
        for measure in measures:
            if config.mode == "full":
                with watch.charge("inspection"):
                    result = measure.compute(u_full, h_all)
                outcomes.append(GroupMeasureOutcome(
                    group=group, measure=measure, result=result,
                    hypothesis_names=names,
                    records_processed=order.shape[0]))
                continue
            state = measure.new_state(group.n_units, n_hyps)
            result = None
            records = 0
            rows_per_block = config.block_size * ns
            for block in iter_blocks(u_full.shape[0], rows_per_block):
                with watch.charge("inspection"):
                    result, err = measure.process_block(
                        state, u_full[block], h_all[block])
                records += (block.stop - block.start) // ns
                if (config.early_stop and measure.supports_early_stop
                        and err <= config.threshold_for(measure.score_id)):
                    result.converged = True
                    break
            assert result is not None
            outcomes.append(GroupMeasureOutcome(
                group=group, measure=measure, result=result,
                hypothesis_names=names, records_processed=records))
    return outcomes


def _collect(groups, measures, states, last, records_done, names):
    outcomes = []
    for gi, group in enumerate(groups):
        for mi, measure in enumerate(measures):
            key = (gi, mi)
            result = last.get(key)
            if result is None:  # zero blocks processed (empty dataset guard)
                result = states[key].result()
            outcomes.append(GroupMeasureOutcome(
                group=group, measure=measure, result=result,
                hypothesis_names=names,
                records_processed=records_done[key]))
    return outcomes
