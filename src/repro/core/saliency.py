"""Saliency analysis (Section 2.2).

Identifies the input symbols that have the largest "effect" on a unit or
group of units: collect the unit's behaviors over the dataset, find the
top-k highest-valued behaviors, and report the corresponding input symbols
with their contexts.  Supports both activation magnitude and the
input-gradient behavior via the extractor's ``transform``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset
from repro.extract.base import Extractor
from repro.extract.rnn import RnnActivationExtractor
from repro.util.frame import Frame


@dataclass
class SaliencyHit:
    """One high-behavior site: which symbol most excites the unit."""

    record: int
    position: int
    symbol: str
    value: float
    context: str


def top_symbols(model, dataset: Dataset, unit: int, k: int = 5,
                extractor: Extractor | None = None,
                context: int = 8, by_abs: bool = False,
                max_records: int | None = None) -> list[SaliencyHit]:
    """The k input symbols that trigger the unit's highest behaviors.

    Reproduces the paper's example: "whitespaces and periods trigger the
    five highest activations for u86" (Figure 1 discussion).
    """
    n_records = dataset.n_records
    if max_records is not None:
        n_records = min(n_records, max_records)
    extractor = extractor or RnnActivationExtractor()
    behaviors = extractor.extract(model, dataset.symbols[:n_records],
                                  hid_units=[unit])[:, 0]
    values = np.abs(behaviors) if by_abs else behaviors
    ns = dataset.n_symbols
    order = np.argsort(-values)[:k]

    hits = []
    for flat in order:
        record, pos = divmod(int(flat), ns)
        text = dataset.record_text(record)
        lo = max(0, pos - context)
        hi = min(len(text), pos + context + 1)
        hits.append(SaliencyHit(
            record=record, position=pos, symbol=text[pos],
            value=float(behaviors[flat]),
            context=text[lo:pos] + "[" + text[pos] + "]" + text[pos + 1:hi]))
    return hits


def saliency_frame(model, dataset: Dataset, units: list[int], k: int = 5,
                   extractor: Extractor | None = None,
                   max_records: int | None = None) -> Frame:
    """Top-k saliency table for several units."""
    rows = []
    for unit in units:
        for hit in top_symbols(model, dataset, unit, k=k,
                               extractor=extractor,
                               max_records=max_records):
            rows.append({"unit": unit, "record": hit.record,
                         "position": hit.position, "symbol": hit.symbol,
                         "value": hit.value, "context": hit.context})
    return Frame.from_records(
        rows, columns=["unit", "record", "position", "symbol", "value",
                       "context"])


def symbol_saliency_profile(model, dataset: Dataset, unit: int,
                            extractor: Extractor | None = None,
                            max_records: int | None = None) -> Frame:
    """Mean behavior per input character: which symbols drive the unit."""
    n_records = dataset.n_records
    if max_records is not None:
        n_records = min(n_records, max_records)
    extractor = extractor or RnnActivationExtractor()
    behaviors = extractor.extract(model, dataset.symbols[:n_records],
                                  hid_units=[unit])[:, 0]
    symbols = dataset.symbols[:n_records].reshape(-1)

    sums: dict[int, float] = {}
    counts: dict[int, int] = {}
    for sym_id, value in zip(symbols, behaviors):
        sums[int(sym_id)] = sums.get(int(sym_id), 0.0) + float(value)
        counts[int(sym_id)] = counts.get(int(sym_id), 0) + 1
    rows = [{"symbol": dataset.vocab.char(sym),
             "mean_behavior": sums[sym] / counts[sym],
             "count": counts[sym]} for sym in sorted(sums)]
    return Frame.from_records(
        rows, columns=["symbol", "mean_behavior", "count"]).sort(
        "mean_behavior", reverse=True)
