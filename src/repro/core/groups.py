"""Unit groups: which hidden units to inspect together (Definition 1).

A joint measure assigns different scores depending on the group it analyzes
(a probe over layer 0 differs from a probe over the whole model), so groups
are first-class inputs to :func:`repro.core.inspect`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extract.base import Extractor


@dataclass
class UnitGroup:
    """A named subset of a model's hidden units.

    ``unit_ids`` indexes units within the extractor's unit space;
    ``extractor`` defaults to the pipeline-level extractor when None, which
    lets groups from different layers carry their own extraction logic
    (e.g. encoder layer 0 vs. layer 1 of a seq2seq model).
    """

    model: object
    unit_ids: np.ndarray
    name: str = "all"
    extractor: Extractor | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.unit_ids = np.asarray(self.unit_ids, dtype=int)
        if self.unit_ids.ndim != 1:
            raise ValueError("unit_ids must be a flat index vector")
        if self.unit_ids.shape[0] == 0:
            raise ValueError(f"unit group {self.name!r} has no units")

    @property
    def model_id(self) -> str:
        return getattr(self.model, "model_id", type(self.model).__name__)

    @property
    def n_units(self) -> int:
        return int(self.unit_ids.shape[0])

    def __repr__(self) -> str:
        return (f"UnitGroup({self.model_id}/{self.name}, "
                f"{self.n_units} units)")


def all_units_group(model, extractor: Extractor | None = None,
                    name: str = "all") -> UnitGroup:
    """Group over every unit the (model, extractor) pair exposes."""
    if extractor is not None:
        n = extractor.n_units(model)
    else:
        n = model.n_units
    return UnitGroup(model=model, unit_ids=np.arange(n), name=name,
                     extractor=extractor)


def layer_groups(model, layer_extractors: dict[str, Extractor]) -> list[UnitGroup]:
    """One group per named extractor (e.g. {'layer0': ..., 'layer1': ...})."""
    groups = []
    for name, extractor in layer_extractors.items():
        groups.append(UnitGroup(model=model,
                                unit_ids=np.arange(extractor.n_units(model)),
                                name=name, extractor=extractor))
    return groups
