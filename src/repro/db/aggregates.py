"""User-defined aggregates, including the ``corr`` UDA the baseline uses.

Aggregates follow the PostgreSQL state-machine contract: ``init`` produces a
state, ``step(state, *values)`` folds one row, ``final(state)`` emits the
result.  Row-at-a-time stepping is the point -- it models the execution cost
the paper measures for the in-RDBMS design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable


@dataclass
class Aggregate:
    name: str
    init: Callable[[], Any]
    step: Callable[..., Any]
    final: Callable[[Any], Any]
    n_args: int = 1


# ---- count / sum / avg / min / max -----------------------------------
def _make_simple() -> dict[str, Aggregate]:
    aggs: dict[str, Aggregate] = {}
    aggs["count"] = Aggregate(
        "count", lambda: 0, lambda s, v=None: s + 1, lambda s: s, n_args=0)
    aggs["sum"] = Aggregate(
        "sum", lambda: 0.0, lambda s, v: s + v, lambda s: s)
    aggs["avg"] = Aggregate(
        "avg", lambda: [0.0, 0],
        lambda s, v: [s[0] + v, s[1] + 1],
        lambda s: s[0] / s[1] if s[1] else None)
    aggs["min"] = Aggregate(
        "min", lambda: None,
        lambda s, v: v if s is None or v < s else s, lambda s: s)
    aggs["max"] = Aggregate(
        "max", lambda: None,
        lambda s, v: v if s is None or v > s else s, lambda s: s)
    return aggs


# ---- corr: PostgreSQL's two-argument correlation aggregate ------------
def _corr_init() -> list[float]:
    # n, sum_x, sum_y, sum_xx, sum_yy, sum_xy
    return [0.0, 0.0, 0.0, 0.0, 0.0, 0.0]


def _corr_step(state: list[float], x: float, y: float) -> list[float]:
    state[0] += 1.0
    state[1] += x
    state[2] += y
    state[3] += x * x
    state[4] += y * y
    state[5] += x * y
    return state


def _corr_final(state: list[float]) -> float | None:
    n, sx, sy, sxx, syy, sxy = state
    if n < 2:
        return None
    cov = sxy / n - (sx / n) * (sy / n)
    vx = sxx / n - (sx / n) ** 2
    vy = syy / n - (sy / n) ** 2
    if vx <= 1e-12 or vy <= 1e-12:
        return 0.0
    return cov / math.sqrt(vx * vy)


def _make_stats() -> dict[str, Aggregate]:
    aggs: dict[str, Aggregate] = {}
    aggs["corr"] = Aggregate("corr", _corr_init, _corr_step, _corr_final,
                             n_args=2)
    aggs["var_pop"] = Aggregate(
        "var_pop", lambda: [0.0, 0.0, 0.0],
        lambda s, v: [s[0] + 1, s[1] + v, s[2] + v * v],
        lambda s: (s[2] / s[0] - (s[1] / s[0])**2) if s[0] else None)
    aggs["stddev_pop"] = Aggregate(
        "stddev_pop", lambda: [0.0, 0.0, 0.0],
        lambda s, v: [s[0] + 1, s[1] + v, s[2] + v * v],
        lambda s: math.sqrt(max(s[2] / s[0] - (s[1] / s[0])**2, 0.0))
        if s[0] else None)
    return aggs


AGGREGATES: dict[str, Aggregate] = {**_make_simple(), **_make_stats()}


def get_aggregate(name: str) -> Aggregate:
    try:
        return AGGREGATES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown aggregate {name!r}; "
                       f"available: {sorted(AGGREGATES)}") from None
