"""User-defined aggregates, including the ``corr`` UDA the baseline uses.

Aggregates follow the PostgreSQL state-machine contract: ``init`` produces a
state, ``step(state, *values)`` folds one row, ``final(state)`` emits the
result.  The row engine steps once per row -- deliberately, since that
models the execution cost the paper measures for the in-RDBMS design.

The columnar executor instead calls ``step_batch(state, *value_arrays)``,
which folds a whole column segment with numpy reductions; the sufficient
statistics are identical, so ``final`` is shared by both paths.  Aggregates
without ``step_batch`` fall back to per-row stepping under either engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable


@dataclass
class Aggregate:
    name: str
    init: Callable[[], Any]
    step: Callable[..., Any]
    final: Callable[[Any], Any]
    n_args: int = 1
    #: vectorized fold over numpy value arrays; same state/final contract.
    #: Zero-argument aggregates (``count``) receive the segment index array.
    step_batch: Callable[..., Any] | None = None


# ---- count / sum / avg / min / max -----------------------------------
def _min_step_batch(state, values):
    if values.shape[0] == 0:
        return state
    m = values.min()
    return m if state is None or m < state else state


def _max_step_batch(state, values):
    if values.shape[0] == 0:
        return state
    m = values.max()
    return m if state is None or m > state else state


def _make_simple() -> dict[str, Aggregate]:
    aggs: dict[str, Aggregate] = {}
    aggs["count"] = Aggregate(
        "count", lambda: 0, lambda s, v=None: s + 1, lambda s: s, n_args=0,
        step_batch=lambda s, seg: s + int(seg.shape[0]))
    aggs["sum"] = Aggregate(
        "sum", lambda: 0.0, lambda s, v: s + v, lambda s: s,
        step_batch=lambda s, v: s + v.sum())
    aggs["avg"] = Aggregate(
        "avg", lambda: [0.0, 0],
        lambda s, v: [s[0] + v, s[1] + 1],
        lambda s: s[0] / s[1] if s[1] else None,
        step_batch=lambda s, v: [s[0] + v.sum(), s[1] + int(v.shape[0])])
    aggs["min"] = Aggregate(
        "min", lambda: None,
        lambda s, v: v if s is None or v < s else s, lambda s: s,
        step_batch=_min_step_batch)
    aggs["max"] = Aggregate(
        "max", lambda: None,
        lambda s, v: v if s is None or v > s else s, lambda s: s,
        step_batch=_max_step_batch)
    return aggs


# ---- corr: PostgreSQL's two-argument correlation aggregate ------------
def _corr_init() -> list[float]:
    # n, sum_x, sum_y, sum_xx, sum_yy, sum_xy
    return [0.0, 0.0, 0.0, 0.0, 0.0, 0.0]


def _corr_step(state: list[float], x: float, y: float) -> list[float]:
    state[0] += 1.0
    state[1] += x
    state[2] += y
    state[3] += x * x
    state[4] += y * y
    state[5] += x * y
    return state


def _corr_step_batch(state: list[float], x, y) -> list[float]:
    state[0] += float(x.shape[0])
    state[1] += float(x.sum())
    state[2] += float(y.sum())
    state[3] += float(x @ x)
    state[4] += float(y @ y)
    state[5] += float(x @ y)
    return state


def _corr_final(state: list[float]) -> float | None:
    n, sx, sy, sxx, syy, sxy = state
    if n < 2:
        return None
    cov = sxy / n - (sx / n) * (sy / n)
    vx = sxx / n - (sx / n) ** 2
    vy = syy / n - (sy / n) ** 2
    if vx <= 1e-12 or vy <= 1e-12:
        return 0.0
    return cov / math.sqrt(vx * vy)


def _moments_step_batch(state, values):
    return [state[0] + float(values.shape[0]),
            state[1] + float(values.sum()),
            state[2] + float(values @ values)]


def _make_stats() -> dict[str, Aggregate]:
    aggs: dict[str, Aggregate] = {}
    aggs["corr"] = Aggregate("corr", _corr_init, _corr_step, _corr_final,
                             n_args=2, step_batch=_corr_step_batch)
    aggs["var_pop"] = Aggregate(
        "var_pop", lambda: [0.0, 0.0, 0.0],
        lambda s, v: [s[0] + 1, s[1] + v, s[2] + v * v],
        lambda s: (s[2] / s[0] - (s[1] / s[0])**2) if s[0] else None,
        step_batch=_moments_step_batch)
    aggs["stddev_pop"] = Aggregate(
        "stddev_pop", lambda: [0.0, 0.0, 0.0],
        lambda s, v: [s[0] + 1, s[1] + v, s[2] + v * v],
        lambda s: math.sqrt(max(s[2] / s[0] - (s[1] / s[0])**2, 0.0))
        if s[0] else None,
        step_batch=_moments_step_batch)
    return aggs


AGGREGATES: dict[str, Aggregate] = {**_make_simple(), **_make_stats()}


def get_aggregate(name: str) -> Aggregate:
    try:
        return AGGREGATES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown aggregate {name!r}; "
                       f"available: {sorted(AGGREGATES)}") from None
