"""SELECT execution: scan -> join -> filter -> group/aggregate -> project.

Two engines share the same logical plan, ``SelectQuery`` API and dict-row
output format:

* ``columnar`` (the default) -- operates on the numpy column arrays stored
  by :class:`repro.db.engine.Table`: predicates evaluate to boolean masks,
  equality joins gather matching index vectors, group-by keys are factorized
  with ``np.unique`` and aggregates fold whole column segments through their
  vectorized ``step_batch`` implementations.
* ``row`` -- the original Volcano-style interpreter over per-row dict
  environments with per-row aggregate stepping.  Retained for differential
  testing and because the MADLib baseline's cost profile (Section 5.1.1) is
  precisely this row-at-a-time dispatch.

The target list is limited to :data:`repro.db.engine.MAX_EXPRESSIONS`
entries, matching PostgreSQL -- the constraint that forces the MADLib
baseline to batch its hundreds of thousands of ``corr`` expressions into
many full scans.

SQL semantics shared by both engines:

* an aggregate query with no ``GROUP BY`` over zero input rows yields one
  row (``COUNT`` = 0, all other aggregates NULL);
* ``ORDER BY`` tolerates NULL values (NULLS LAST ascending, NULLS FIRST
  descending -- PostgreSQL's defaults).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.db.aggregates import get_aggregate
from repro.db.engine import MAX_EXPRESSIONS, Database
from repro.db.expr import AggregateRef, Expr
from repro.db.planner import plan_scan

Row = dict[str, Any]

ENGINES = ("columnar", "row")
DEFAULT_ENGINE = "columnar"


@dataclass
class SelectItem:
    expr: Expr
    alias: str


@dataclass
class JoinSpec:
    table: str
    alias: str
    left_col: str    # qualified column from tables already in scope
    right_col: str   # qualified column of the joined table


@dataclass
class SelectQuery:
    """A logical SELECT over the mini engine."""

    items: list[SelectItem]
    table: str
    alias: str | None = None
    joins: list[JoinSpec] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None
    into: str | None = None  # persist the result as a table (SELECT INTO)


def execute_select(db: Database, query: SelectQuery,
                   engine: str | None = None) -> list[Row]:
    """Run a SELECT and return projected rows as dicts."""
    engine = engine or DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected {ENGINES}")
    if len(query.items) > MAX_EXPRESSIONS:
        raise ValueError(
            f"target list has {len(query.items)} expressions; the engine "
            f"limit is {MAX_EXPRESSIONS} (batch your query)")
    if engine == "row":
        rows, presorted = _execute_row(db, query), False
    else:
        rows, presorted = _execute_columnar(db, query)
    rows = _finalize(rows, query, skip_order=presorted)
    if query.into:
        _materialize_into(db, query.into,
                          [it.alias for it in query.items], rows)
    return rows


def _materialize_into(db: Database, name: str, columns: list[str],
                      rows: list[Row]) -> None:
    """SELECT INTO: persist the result rows as a (committed) table."""
    table = db.create_table(name, columns, replace=True)
    table.insert_many([tuple(r[c] for c in columns) for r in rows])
    db.commit()  # no-op for in-memory databases


# ----------------------------------------------------------------------
# shared post-processing: empty-aggregate row, HAVING, ORDER BY, LIMIT
# ----------------------------------------------------------------------
def _has_aggregates(query: SelectQuery) -> bool:
    return any(isinstance(it.expr, AggregateRef) for it in query.items)


def _empty_aggregate_row(query: SelectQuery) -> Row:
    """SQL's one-row result for aggregates over zero input rows."""
    out: Row = {}
    for it in query.items:
        if isinstance(it.expr, AggregateRef) and it.expr.func.lower() == "count":
            out[it.alias] = 0
        else:
            out[it.alias] = None
    return out


def _null_safe_key(column: str):
    # NULLS sort greatest: LAST when ascending, FIRST under reverse=True
    # (descending) -- PostgreSQL's defaults.
    def key(row: Row):
        value = row[column]
        return (value is None, 0 if value is None else value)
    return key


def _having_passes(having: Expr, row: Row) -> bool:
    try:
        return bool(having.eval(row))
    except TypeError:
        # SQL: comparisons against NULL are not true, so the row is
        # dropped -- but only when a column the predicate actually
        # references is NULL; other TypeErrors are genuine bugs
        if any(row.get(c) is None for c in having.columns()):
            return False
        raise


def _finalize(rows: list[Row], query: SelectQuery,
              skip_order: bool = False) -> list[Row]:
    if not rows and _has_aggregates(query) and not query.group_by:
        rows = [_empty_aggregate_row(query)]
    if query.having is not None:
        rows = [r for r in rows if _having_passes(query.having, r)]
    if skip_order:  # the columnar engine already ordered + limited
        return rows
    if query.order_by is not None:
        rows.sort(key=_null_safe_key(query.order_by),
                  reverse=query.descending)
    if query.limit is not None:
        rows = rows[:query.limit]
    return rows


def _pyval(value):
    """Unwrap numpy scalars so output rows hold plain Python values."""
    return value.item() if isinstance(value, np.generic) else value


# ----------------------------------------------------------------------
# columnar engine
# ----------------------------------------------------------------------
def _scan_cols(db: Database, table_name: str,
               alias: str) -> tuple[dict[str, np.ndarray], int]:
    table = db.table(table_name)
    db.full_scans += 1
    cols: dict[str, np.ndarray] = {}
    for name, arr in zip(table.columns, table.column_arrays()):
        cols[f"{alias}.{name}"] = arr
        cols.setdefault(name, arr)
    return cols, len(table)


def _nan_positions(values: np.ndarray) -> np.ndarray | None:
    if values.dtype.kind != "f":
        return None
    nan = np.isnan(values)
    return nan if nan.any() else None


def equi_match(lvals: np.ndarray,
                rvals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Index pairs (li, ri) with lvals[li] == rvals[ri], left-major order.

    NaN keys never match (SQL equality): np.unique would otherwise collapse
    NaNs together, so NaN rows are dropped before code assignment.
    """
    l_nan = _nan_positions(lvals)
    r_nan = _nan_positions(rvals)
    if l_nan is not None or r_nan is not None:
        l_keep = np.flatnonzero(~l_nan) if l_nan is not None \
            else np.arange(lvals.shape[0])
        r_keep = np.flatnonzero(~r_nan) if r_nan is not None \
            else np.arange(rvals.shape[0])
        li, ri = equi_match(lvals[l_keep], rvals[r_keep])
        return l_keep[li], r_keep[ri]
    try:
        allv = np.concatenate([lvals, rvals])
        _, inv = np.unique(allv, return_inverse=True)
    except TypeError:  # incomparable mixed types: hash-based fallback
        index: dict[Any, list[int]] = {}
        for j, v in enumerate(rvals.tolist()):
            index.setdefault(v, []).append(j)
        li: list[int] = []
        ri: list[int] = []
        for i, v in enumerate(lvals.tolist()):
            for j in index.get(v, ()):
                li.append(i)
                ri.append(j)
        return (np.asarray(li, dtype=np.int64),
                np.asarray(ri, dtype=np.int64))
    lcodes = inv[:lvals.shape[0]]
    rcodes = inv[lvals.shape[0]:]
    order = np.argsort(rcodes, kind="stable")
    sorted_r = rcodes[order]
    starts = np.searchsorted(sorted_r, lcodes, side="left")
    ends = np.searchsorted(sorted_r, lcodes, side="right")
    counts = ends - starts
    left_idx = np.repeat(np.arange(lcodes.shape[0]), counts)
    offsets = np.cumsum(counts) - counts
    within = np.arange(int(counts.sum())) - np.repeat(offsets, counts)
    right_idx = order[np.repeat(starts, counts) + within]
    return left_idx, right_idx


def gather(cols: dict[str, np.ndarray], idx) -> dict[str, np.ndarray]:
    """Apply one index/mask to every column, deduplicating shared arrays."""
    memo: dict[int, np.ndarray] = {}
    return {k: memo.setdefault(id(v), v[idx]) for k, v in cols.items()}


def _join_columnar(db: Database, cols: dict[str, np.ndarray],
                   join: JoinSpec) -> tuple[dict[str, np.ndarray], int]:
    right = db.table(join.table)
    db.full_scans += 1
    lvals = cols.get(join.left_col)
    if lvals is None:
        lvals = cols[join.left_col.split(".")[-1]]
    rvals = right.column(join.right_col.split(".")[-1])
    left_idx, right_idx = equi_match(lvals, rvals)
    out = gather(cols, left_idx)
    for name, arr in zip(right.columns, right.column_arrays()):
        gathered = arr[right_idx]
        out[f"{join.alias}.{name}"] = gathered
        out.setdefault(name, gathered)
    return out, int(left_idx.shape[0])


def _broadcast(value, n: int) -> np.ndarray:
    arr = np.asarray(value)
    if arr.ndim == 0:
        full = np.empty(n, dtype=object if arr.dtype == object else arr.dtype)
        full[:] = arr.item() if arr.dtype == object else arr
        return full
    return arr


def sort_indices(values: np.ndarray,
                 descending: bool = False) -> np.ndarray | None:
    """Stable ORDER BY permutation over one output column, or None.

    Returns None when the column needs the row-at-a-time NULL-safe sort
    (object dtype that may hold None / mixed types, or float NaNs, whose
    ordering the shared ``_finalize`` path defines); plain numeric and
    string columns sort vectorized.  Ties keep first-occurrence order under
    both directions, matching Python's stable ``list.sort``.
    """
    arr = np.asarray(values)
    if arr.dtype == object:
        return None
    if _nan_positions(arr) is not None:
        return None
    if descending:
        # stable descending = ascending stable argsort of the negated
        # keys: equal keys keep first-occurrence order, and float ±0.0
        # still compare equal after negation.  Signed ints qualify unless
        # the minimum is unnegatable (INT_MIN overflows); everything else
        # (strings, unsigned) takes the reverse-and-remap double pass.
        if arr.dtype.kind == "f":
            return np.argsort(-arr, kind="stable")
        if arr.dtype.kind == "i" and (
                arr.shape[0] == 0
                or int(arr.min()) > np.iinfo(arr.dtype).min):
            return np.argsort(-arr, kind="stable")
        rev = np.argsort(arr[::-1], kind="stable")
        return (arr.shape[0] - 1 - rev)[::-1]
    return np.argsort(arr, kind="stable")


def topk_indices(values: np.ndarray, k: int,
                 descending: bool = False) -> np.ndarray | None:
    """First ``k`` indices of the stable ORDER BY permutation, or None.

    ``np.argpartition`` selects the k extreme rows in O(n); the boundary
    value's ties are refined to the smallest original indices and the
    survivors ordered by a stable lexsort over (dense value rank, index)
    -- bit-identical to ``sort_indices(values, descending)[:k]`` but
    without sorting the other n-k rows.  Returns None when the dtype
    needs the generic path or k is too large a fraction of n to pay off.
    """
    arr = np.asarray(values)
    n = arr.shape[0]
    if arr.dtype.kind not in "iuf" or k <= 0 or k >= n or k * 4 >= n:
        return None
    if _nan_positions(arr) is not None:
        return None
    if descending:
        boundary = arr[np.argpartition(arr, n - k)[n - k]]
        strict = np.flatnonzero(arr > boundary)
    else:
        boundary = arr[np.argpartition(arr, k - 1)[k - 1]]
        strict = np.flatnonzero(arr < boundary)
    ties = np.flatnonzero(arr == boundary)[:k - strict.shape[0]]
    cand = np.concatenate([strict, ties])
    # dense ranks avoid negating raw int64 keys (INT_MIN has no negation)
    _, rank = np.unique(arr[cand], return_inverse=True)
    key = -rank.astype(np.int64) if descending else rank
    return cand[np.lexsort((cand, key))]


def _execute_columnar(db: Database,
                      query: SelectQuery) -> tuple[list[Row], bool]:
    # planner step: a clean persistent table may answer scan + WHERE
    # (and ORDER BY + LIMIT) from its B-tree indexes
    planned = plan_scan(db, query) if not query.joins else None
    if planned is not None:
        cols, n, index_ordered = planned
    else:
        index_ordered = False
        cols, n = _scan_cols(db, query.table, query.alias or query.table)
        for join in query.joins:
            cols, n = _join_columnar(db, cols, join)

        if query.where is not None:
            mask = np.asarray(query.where.eval_batch(cols))
            if mask.ndim == 0:
                mask = np.full(n, bool(mask))
            mask = mask.astype(bool)
            cols = gather(cols, mask)
            n = int(mask.sum())

    if query.group_by or _has_aggregates(query):
        return _group_aggregate_columnar(cols, n, query), False

    aliases = [it.alias for it in query.items]
    out_arrays = [_broadcast(it.expr.eval_batch(cols), n)
                  for it in query.items]

    # ORDER BY + LIMIT push down into the columnar path: sort the column
    # arrays and slice before materializing dict rows, so a LIMIT k query
    # builds k rows instead of n.  HAVING (applied to projected rows in
    # _finalize) must run first, so the push-down is skipped when present.
    presorted = index_ordered
    if not presorted and query.order_by is not None \
            and query.having is None and query.order_by in aliases:
        key_array = out_arrays[aliases.index(query.order_by)]
        order = None
        if query.limit is not None:
            order = topk_indices(key_array, query.limit, query.descending)
        if order is None:
            order = sort_indices(key_array, query.descending)
            if order is not None and query.limit is not None:
                order = order[:query.limit]
        if order is not None:
            out_arrays = [a[order] for a in out_arrays]
            presorted = True

    out_lists = [a.tolist() for a in out_arrays]
    return [dict(zip(aliases, vals)) for vals in zip(*out_lists)], presorted


def group_ids(key_cols: list[np.ndarray], n: int) -> tuple[np.ndarray, int]:
    """Factorize multi-column keys into group ids in first-seen order.

    NaN keys each get their own group: np.unique collapses NaNs, but the
    row engine's dict keying treats every NaN as distinct (nan != nan),
    and the engines must agree.
    """
    codes: np.ndarray | None = None
    for col in key_cols:
        try:
            uniq, inv = np.unique(col, return_inverse=True)
            c, k = inv.astype(np.int64), int(uniq.shape[0])
        except TypeError:  # incomparable mixed types
            seen: dict[Any, int] = {}
            c = np.empty(col.shape[0], dtype=np.int64)
            for i, v in enumerate(col.tolist()):
                c[i] = seen.setdefault(v, len(seen))
            k = len(seen)
        nan = _nan_positions(col)
        if nan is not None:
            c[nan] = k + np.arange(int(nan.sum()))
            k += int(nan.sum())
        codes = c if codes is None else codes * k + c
    assert codes is not None
    uniq, first_pos, inv = np.unique(codes, return_index=True,
                                     return_inverse=True)
    # relabel so group ids follow first occurrence (matches the row
    # engine's dict-insertion group order)
    rank = np.empty(uniq.shape[0], dtype=np.int64)
    rank[np.argsort(first_pos, kind="stable")] = np.arange(uniq.shape[0])
    return rank[inv], int(uniq.shape[0])


def _group_aggregate_columnar(cols: dict[str, np.ndarray], n: int,
                              query: SelectQuery) -> list[Row]:
    if n == 0:
        return []  # _finalize supplies the empty-aggregate row if needed

    if query.group_by:
        key_cols = [_broadcast(e.eval_batch(cols), n) for e in query.group_by]
        gids, n_groups = group_ids(key_cols, n)
    else:
        gids = np.zeros(n, dtype=np.int64)
        n_groups = 1

    order = np.argsort(gids, kind="stable")
    sorted_g = gids[order]
    starts = np.searchsorted(sorted_g, np.arange(n_groups), side="left")
    ends = np.searchsorted(sorted_g, np.arange(n_groups), side="right")
    rep = order[starts]  # first input row of each group

    out = [dict() for _ in range(n_groups)]
    for it in query.items:
        if not isinstance(it.expr, AggregateRef):
            values = _broadcast(it.expr.eval_batch(cols), n)[rep].tolist()
            for g in range(n_groups):
                out[g][it.alias] = values[g]
            continue
        agg = get_aggregate(it.expr.func)
        arg_arrays = [_broadcast(a.eval_batch(cols), n)
                      for a in it.expr.args]
        for g in range(n_groups):
            # one group (the MADLib corr path) needs no segment gather
            seg = None if n_groups == 1 else order[starts[g]:ends[g]]
            state = agg.init()
            if agg.step_batch is not None:
                if arg_arrays:
                    args = (arg_arrays if seg is None
                            else [a[seg] for a in arg_arrays])
                else:
                    args = [np.arange(n) if seg is None else seg]
                state = agg.step_batch(state, *args)
            elif arg_arrays:
                segmented = (arg_arrays if seg is None
                             else [a[seg] for a in arg_arrays])
                for tup in zip(*(a.tolist() for a in segmented)):
                    state = agg.step(state, *tup)
            else:
                size = n if seg is None else seg.shape[0]
                for _ in range(size):
                    state = agg.step(state)
            out[g][it.alias] = _pyval(agg.final(state))
    return out


# ----------------------------------------------------------------------
# row engine (the original Volcano interpreter)
# ----------------------------------------------------------------------
def _env_from_row(alias: str, columns: list[str], row: tuple) -> Row:
    env: Row = {}
    for col, val in zip(columns, row):
        env[f"{alias}.{col}"] = val
        env.setdefault(col, val)
    return env


def _merge_env(base: Row, extra: Row) -> Row:
    merged = dict(base)
    for key, val in extra.items():
        if "." in key or key not in merged:
            merged[key] = val
    return merged


def _execute_row(db: Database, query: SelectQuery) -> list[Row]:
    # 1. scan + joins (hash join on single-column equality)
    base = db.table(query.table)
    alias = query.alias or query.table
    envs = [_env_from_row(alias, base.columns, row)
            for row in db.scan(query.table)]
    for join in query.joins:
        right = db.table(join.table)
        index: dict[Any, list[Row]] = {}
        right_key = join.right_col.split(".")[-1]
        for row in db.scan(join.table):
            env = _env_from_row(join.alias, right.columns, row)
            index.setdefault(env[f"{join.alias}.{right_key}"], []).append(env)
        joined: list[Row] = []
        for env in envs:
            key = env.get(join.left_col, env.get(join.left_col.split(".")[-1]))
            for match in index.get(key, []):
                joined.append(_merge_env(env, match))
        envs = joined

    # 2. filter
    if query.where is not None:
        envs = [env for env in envs if query.where.eval(env)]

    if query.group_by or _has_aggregates(query):
        return _group_and_aggregate(envs, query)
    return [{it.alias: it.expr.eval(env) for it in query.items}
            for env in envs]


def _group_and_aggregate(envs: list[Row], query: SelectQuery) -> list[Row]:
    """Hash group-by with row-at-a-time aggregate stepping."""
    agg_items = [(i, it) for i, it in enumerate(query.items)
                 if isinstance(it.expr, AggregateRef)]
    plain_items = [(i, it) for i, it in enumerate(query.items)
                   if not isinstance(it.expr, AggregateRef)]

    groups: dict[tuple, dict] = {}
    for env in envs:
        key = tuple(expr.eval(env) for expr in query.group_by)
        slot = groups.get(key)
        if slot is None:
            slot = {
                "env": env,
                "states": [get_aggregate(it.expr.func).init()
                           for _, it in agg_items],
            }
            groups[key] = slot
        for pos, (_, item) in enumerate(agg_items):
            agg = get_aggregate(item.expr.func)
            args = [a.eval(env) for a in item.expr.args]
            slot["states"][pos] = agg.step(slot["states"][pos], *args)

    rows: list[Row] = []
    for slot in groups.values():
        out: Row = {}
        for _, item in plain_items:
            out[item.alias] = item.expr.eval(slot["env"])
        for pos, (_, item) in enumerate(agg_items):
            agg = get_aggregate(item.expr.func)
            out[item.alias] = _pyval(agg.final(slot["states"][pos]))
        rows.append(out)
    return rows
