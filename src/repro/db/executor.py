"""SELECT execution: scan -> join -> filter -> group/aggregate -> project.

A deliberately classical Volcano-style pipeline over row tuples.  The target
list is limited to :data:`repro.db.engine.MAX_EXPRESSIONS` entries, matching
PostgreSQL -- the constraint that forces the MADLib baseline to batch its
hundreds of thousands of ``corr`` expressions into many full scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.db.aggregates import get_aggregate
from repro.db.engine import MAX_EXPRESSIONS, Database
from repro.db.expr import AggregateRef, Expr

Row = dict[str, Any]


@dataclass
class SelectItem:
    expr: Expr
    alias: str


@dataclass
class JoinSpec:
    table: str
    alias: str
    left_col: str    # qualified column from tables already in scope
    right_col: str   # qualified column of the joined table


@dataclass
class SelectQuery:
    """A logical SELECT over the mini engine."""

    items: list[SelectItem]
    table: str
    alias: str | None = None
    joins: list[JoinSpec] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None


def _env_from_row(alias: str, columns: list[str], row: tuple) -> Row:
    env: Row = {}
    for col, val in zip(columns, row):
        env[f"{alias}.{col}"] = val
        env.setdefault(col, val)
    return env


def _merge_env(base: Row, extra: Row) -> Row:
    merged = dict(base)
    for key, val in extra.items():
        if "." in key or key not in merged:
            merged[key] = val
    return merged


def execute_select(db: Database, query: SelectQuery) -> list[Row]:
    """Run a SELECT and return projected rows as dicts."""
    if len(query.items) > MAX_EXPRESSIONS:
        raise ValueError(
            f"target list has {len(query.items)} expressions; the engine "
            f"limit is {MAX_EXPRESSIONS} (batch your query)")

    # 1. scan + joins (hash join on single-column equality)
    base = db.table(query.table)
    alias = query.alias or query.table
    envs = [_env_from_row(alias, base.columns, row) for row in db.scan(query.table)]
    for join in query.joins:
        right = db.table(join.table)
        index: dict[Any, list[Row]] = {}
        right_key = join.right_col.split(".")[-1]
        for row in db.scan(join.table):
            env = _env_from_row(join.alias, right.columns, row)
            index.setdefault(env[f"{join.alias}.{right_key}"], []).append(env)
        joined: list[Row] = []
        for env in envs:
            key = env.get(join.left_col, env.get(join.left_col.split(".")[-1]))
            for match in index.get(key, []):
                joined.append(_merge_env(env, match))
        envs = joined

    # 2. filter
    if query.where is not None:
        envs = [env for env in envs if query.where.eval(env)]

    has_aggs = any(isinstance(it.expr, AggregateRef) for it in query.items)
    if query.group_by or has_aggs:
        rows = _group_and_aggregate(envs, query)
    else:
        rows = [{it.alias: it.expr.eval(env) for it in query.items}
                for env in envs]

    if query.having is not None:
        rows = [r for r in rows if query.having.eval(r)]
    if query.order_by is not None:
        rows.sort(key=lambda r: r[query.order_by], reverse=query.descending)
    if query.limit is not None:
        rows = rows[:query.limit]
    return rows


def _group_and_aggregate(envs: list[Row], query: SelectQuery) -> list[Row]:
    """Hash group-by with row-at-a-time aggregate stepping."""
    agg_items = [(i, it) for i, it in enumerate(query.items)
                 if isinstance(it.expr, AggregateRef)]
    plain_items = [(i, it) for i, it in enumerate(query.items)
                   if not isinstance(it.expr, AggregateRef)]

    groups: dict[tuple, dict] = {}
    for env in envs:
        key = tuple(expr.eval(env) for expr in query.group_by)
        slot = groups.get(key)
        if slot is None:
            slot = {
                "env": env,
                "states": [get_aggregate(it.expr.func).init()
                           for _, it in agg_items],
            }
            groups[key] = slot
        for pos, (_, item) in enumerate(agg_items):
            agg = get_aggregate(item.expr.func)
            args = [a.eval(env) for a in item.expr.args]
            slot["states"][pos] = agg.step(slot["states"][pos], *args)

    rows: list[Row] = []
    for slot in groups.values():
        out: Row = {}
        for _, item in plain_items:
            out[item.alias] = item.expr.eval(slot["env"])
        for pos, (_, item) in enumerate(agg_items):
            agg = get_aggregate(item.expr.func)
            out[item.alias] = agg.final(slot["states"][pos])
        rows.append(out)
    return rows
