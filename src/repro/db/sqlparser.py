"""SQL parser for the mini engine, including the INSPECT clause (Appendix B).

Grammar subset::

    query      := SELECT items [INTO name] [inspect] FROM tables
                  [WHERE pred] [GROUP BY exprs] [HAVING pred]
                  [ORDER BY col [DESC]] [LIMIT n]
    inspect    := INSPECT colref AND colref [USING name (, name)*]
                  OVER colref AS alias
    items      := expr [AS alias] (, expr [AS alias])*
    tables     := name [alias] (, name [alias])*
    pred       := conj (OR conj)* ; conj := atom (AND atom)*
    atom       := expr cmp expr | ( pred ) | NOT atom

Plain queries parse to :class:`repro.db.executor.SelectQuery`; queries with
an INSPECT clause parse to :class:`InspectSpec` consumed by
:mod:`repro.db.inspect_clause`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.db.executor import JoinSpec, SelectItem, SelectQuery
from repro.db.expr import (AggregateRef, BoolOp, Column, Compare, Expr,
                           Literal)

_TOKEN_RE = re.compile(r"""
      (?P<string>'(?:[^'])*')
    | (?P<number>\d+\.\d+|\d+)
    | (?P<name>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)
    | (?P<op><>|<=|>=|!=|=|<|>|\(|\)|,|\*)
    | (?P<ws>\s+)
""", re.VERBOSE)

_KEYWORDS = {"select", "inspect", "and", "or", "not", "using", "over", "as",
             "from", "where", "group", "by", "having", "order", "limit",
             "desc", "asc", "into"}


@dataclass
class Token:
    kind: str  # keyword | name | number | string | op
    value: str


class SqlSyntaxError(ValueError):
    """Raised on malformed SQL input."""


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if not match:
            raise SqlSyntaxError(f"cannot tokenize at: {sql[pos:pos + 20]!r}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        kind = match.lastgroup or "op"
        if kind == "name" and value.lower() in _KEYWORDS:
            tokens.append(Token("keyword", value.lower()))
        else:
            tokens.append(Token(kind, value))
    return tokens


@dataclass
class InspectSpec:
    """Parsed form of a query containing an INSPECT clause."""

    select_items: list[SelectItem]
    unit_ref: str
    hyp_ref: str
    measures: list[str]
    dataset_ref: str
    inspect_alias: str
    tables: list[tuple[str, str]]            # (table, alias)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: str | None = None              # an output-column alias
    descending: bool = False
    limit: int | None = None
    into: str | None = None                  # persist the result (INTO t)


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    def peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise SqlSyntaxError("unexpected end of input")
        self.pos += 1
        return tok

    def accept_keyword(self, *words: str) -> bool:
        tok = self.peek()
        if tok and tok.kind == "keyword" and tok.value in words:
            self.pos += 1
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            found = self.peek()
            raise SqlSyntaxError(f"expected {word.upper()}, found "
                                 f"{found.value if found else 'EOF'!r}")

    def expect_op(self, op: str) -> None:
        tok = self.next()
        if tok.kind != "op" or tok.value != op:
            raise SqlSyntaxError(f"expected {op!r}, found {tok.value!r}")

    def expect_name(self) -> str:
        tok = self.next()
        if tok.kind != "name":
            raise SqlSyntaxError(f"expected identifier, found {tok.value!r}")
        return tok.value

    # ------------------------------------------------------------------
    def parse_query(self) -> SelectQuery | InspectSpec:
        self.expect_keyword("select")
        items = self._select_items()

        into = None
        if self.accept_keyword("into"):
            into = self.expect_name()

        inspect_part = None
        if self.accept_keyword("inspect"):
            inspect_part = self._inspect_clause()

        self.expect_keyword("from")
        tables = self._tables()
        where = group_by = having = None
        order_by, descending, limit = None, False, None
        if self.accept_keyword("where"):
            where = self._predicate()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = self._expr_list()
        if self.accept_keyword("having"):
            having = self._predicate()
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = self.expect_name()
            if self.accept_keyword("desc"):
                descending = True
            else:
                self.accept_keyword("asc")
        if self.accept_keyword("limit"):
            tok = self.next()
            if tok.kind != "number":
                raise SqlSyntaxError("LIMIT expects a number")
            limit = int(float(tok.value))
        if self.peek() is not None:
            raise SqlSyntaxError(f"trailing tokens at {self.peek().value!r}")

        if inspect_part is not None:
            unit_ref, hyp_ref, measures, dataset_ref, alias = inspect_part
            return InspectSpec(
                select_items=items, unit_ref=unit_ref, hyp_ref=hyp_ref,
                measures=measures, dataset_ref=dataset_ref,
                inspect_alias=alias, tables=tables, where=where,
                group_by=group_by or [], having=having,
                order_by=order_by, descending=descending, limit=limit,
                into=into)

        # plain SELECT: express FROM list as base table + equi-joins
        base_table, base_alias = tables[0]
        return SelectQuery(items=items, table=base_table, alias=base_alias,
                           joins=self._joins_from(tables[1:], where),
                           where=where, group_by=group_by or [],
                           having=having, order_by=order_by,
                           descending=descending, limit=limit, into=into)

    @staticmethod
    def _joins_from(tables: list[tuple[str, str]],
                    where: Expr | None) -> list[JoinSpec]:
        # plain multi-table FROM is only supported via explicit WHERE
        # equality; the DNI baselines use single-join queries built
        # programmatically, so cross products are rejected for safety.
        if tables:
            raise SqlSyntaxError(
                "multi-table FROM in plain SELECT is not supported; "
                "use the programmatic SelectQuery with JoinSpec")
        return []

    # ------------------------------------------------------------------
    def _select_items(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self._accept_op(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        expr = self._expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_name()
        if alias is None:
            alias = str(expr) if not isinstance(expr, Column) else expr.name
        return SelectItem(expr=expr, alias=alias)

    def _inspect_clause(self):
        unit_ref = self.expect_name()
        self.expect_keyword("and")
        hyp_ref = self.expect_name()
        measures = ["corr"]  # the paper's default measure
        if self.accept_keyword("using"):
            measures = [self.expect_name()]
            while self._accept_op(","):
                measures.append(self.expect_name())
        self.expect_keyword("over")
        dataset_ref = self.expect_name()
        self.expect_keyword("as")
        alias = self.expect_name()
        return unit_ref, hyp_ref, measures, dataset_ref, alias

    def _tables(self) -> list[tuple[str, str]]:
        tables = [self._table_ref()]
        while self._accept_op(","):
            tables.append(self._table_ref())
        return tables

    def _table_ref(self) -> tuple[str, str]:
        name = self.expect_name()
        alias = name
        tok = self.peek()
        if tok and tok.kind == "name":
            alias = self.next().value
        return name, alias

    # ------------------------------------------------------------------
    def _predicate(self) -> Expr:
        left = self._conjunction()
        operands = [left]
        while self.accept_keyword("or"):
            operands.append(self._conjunction())
        return operands[0] if len(operands) == 1 else BoolOp("or", operands)

    def _conjunction(self) -> Expr:
        operands = [self._atom()]
        while self.accept_keyword("and"):
            operands.append(self._atom())
        return operands[0] if len(operands) == 1 else BoolOp("and", operands)

    def _atom(self) -> Expr:
        if self.accept_keyword("not"):
            return BoolOp("not", [self._atom()])
        if self._accept_op("("):
            inner = self._predicate()
            self.expect_op(")")
            return inner
        left = self._expr()
        tok = self.next()
        if tok.kind != "op" or tok.value not in ("=", "<>", "!=", "<", "<=",
                                                 ">", ">="):
            raise SqlSyntaxError(f"expected comparator, found {tok.value!r}")
        right = self._expr()
        return Compare(tok.value, left, right)

    def _expr_list(self) -> list[Expr]:
        exprs = [self._expr()]
        while self._accept_op(","):
            exprs.append(self._expr())
        return exprs

    def _expr(self) -> Expr:
        tok = self.next()
        if tok.kind == "number":
            value = float(tok.value)
            return Literal(int(value) if value.is_integer() else value)
        if tok.kind == "string":
            return Literal(tok.value[1:-1])
        if tok.kind == "name":
            nxt = self.peek()
            if nxt and nxt.kind == "op" and nxt.value == "(":
                self.next()
                args = []
                if not (self.peek() and self.peek().value == ")"):
                    args = self._expr_list()
                self.expect_op(")")
                return AggregateRef(tok.value.lower(), args)
            return Column(tok.value)
        raise SqlSyntaxError(f"unexpected token {tok.value!r} in expression")

    def _accept_op(self, op: str) -> bool:
        tok = self.peek()
        if tok and tok.kind == "op" and tok.value == op:
            self.pos += 1
            return True
        return False


def parse_sql(sql: str) -> SelectQuery | InspectSpec:
    """Parse one SQL statement (optionally containing an INSPECT clause)."""
    return _Parser(tokenize(sql)).parse_query()
