"""Row and batch expressions for the mini engine.

Expressions evaluate in two modes:

* :meth:`Expr.eval` -- against an environment mapping qualified and
  unqualified column names to scalar values (the row engine).
* :meth:`Expr.eval_batch` -- against a mapping of column names to numpy
  column arrays; every operator broadcasts, so a predicate evaluates to a
  boolean mask and an arithmetic expression to a value column (the columnar
  engine).

The node set covers what the DNI baseline and the INSPECT integration need:
column refs, literals, comparison/boolean/arithmetic operators and
function-style aggregate references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class AmbiguousColumnError(ValueError):
    """An unqualified column reference matches more than one relation.

    Raised during name resolution (the INSPECT frontend resolves every
    column to its owning relation before execution) instead of silently
    binding the reference to whichever FROM table happens to come first.
    """


class Expr:
    """Base expression node."""

    def eval(self, env: dict[str, Any]) -> Any:
        raise NotImplementedError

    def eval_batch(self, cols: dict[str, np.ndarray]) -> Any:
        """Vectorized evaluation over column arrays (broadcasts scalars)."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Referenced column names (for projection pruning / validation)."""
        return set()


@dataclass
class Column(Expr):
    name: str

    def eval(self, env: dict[str, Any]) -> Any:
        if self.name in env:
            return env[self.name]
        raise KeyError(f"unbound column {self.name!r}")

    def eval_batch(self, cols: dict[str, np.ndarray]) -> np.ndarray:
        if self.name in cols:
            return cols[self.name]
        raise KeyError(f"unbound column {self.name!r}")

    def columns(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass
class Literal(Expr):
    value: Any

    def eval(self, env: dict[str, Any]) -> Any:
        return self.value

    def eval_batch(self, cols: dict[str, np.ndarray]) -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass
class Compare(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparator {self.op!r}")

    def eval(self, env: dict[str, Any]) -> bool:
        return _COMPARATORS[self.op](self.left.eval(env), self.right.eval(env))

    def eval_batch(self, cols: dict[str, np.ndarray]) -> Any:
        return _COMPARATORS[self.op](self.left.eval_batch(cols),
                                     self.right.eval_batch(cols))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class Arith(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise ValueError(f"unknown operator {self.op!r}")

    def eval(self, env: dict[str, Any]) -> Any:
        return _ARITHMETIC[self.op](self.left.eval(env), self.right.eval(env))

    def eval_batch(self, cols: dict[str, np.ndarray]) -> Any:
        return _ARITHMETIC[self.op](self.left.eval_batch(cols),
                                    self.right.eval_batch(cols))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


@dataclass
class BoolOp(Expr):
    op: str  # "and" | "or" | "not"
    operands: list[Expr]

    def eval(self, env: dict[str, Any]) -> bool:
        if self.op == "and":
            return all(o.eval(env) for o in self.operands)
        if self.op == "or":
            return any(o.eval(env) for o in self.operands)
        if self.op == "not":
            return not self.operands[0].eval(env)
        raise ValueError(f"unknown boolean op {self.op!r}")

    def eval_batch(self, cols: dict[str, np.ndarray]) -> Any:
        batches = [o.eval_batch(cols) for o in self.operands]
        if self.op == "and":
            out = batches[0]
            for b in batches[1:]:
                out = np.logical_and(out, b)
            return out
        if self.op == "or":
            out = batches[0]
            for b in batches[1:]:
                out = np.logical_or(out, b)
            return out
        if self.op == "not":
            return np.logical_not(batches[0])
        raise ValueError(f"unknown boolean op {self.op!r}")

    def columns(self) -> set[str]:
        out: set[str] = set()
        for operand in self.operands:
            out |= operand.columns()
        return out


@dataclass
class AggregateRef(Expr):
    """A call like ``corr(U.val, H.val)`` in a target list.

    Evaluated by the group-by executor, not row-wise; ``eval`` raises to
    catch misuse.
    """

    func: str
    args: list[Expr]

    def eval(self, env: dict[str, Any]) -> Any:
        raise RuntimeError("aggregates are evaluated by the group-by executor")

    def eval_batch(self, cols: dict[str, np.ndarray]) -> Any:
        raise RuntimeError("aggregates are evaluated by the group-by executor")

    def columns(self) -> set[str]:
        out: set[str] = set()
        for arg in self.args:
            out |= arg.columns()
        return out

    def __str__(self) -> str:
        return f"{self.func}({', '.join(map(str, self.args))})"
