"""Row expressions for the mini engine.

Expressions evaluate against an environment mapping qualified and unqualified
column names to values.  The node set covers what the DNI baseline and the
INSPECT integration need: column refs, literals, comparison/boolean/arithmetic
operators and function-style aggregate references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class Expr:
    """Base expression node."""

    def eval(self, env: dict[str, Any]) -> Any:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Referenced column names (for projection pruning / validation)."""
        return set()


@dataclass
class Column(Expr):
    name: str

    def eval(self, env: dict[str, Any]) -> Any:
        if self.name in env:
            return env[self.name]
        raise KeyError(f"unbound column {self.name!r}")

    def columns(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass
class Literal(Expr):
    value: Any

    def eval(self, env: dict[str, Any]) -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass
class Compare(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparator {self.op!r}")

    def eval(self, env: dict[str, Any]) -> bool:
        return _COMPARATORS[self.op](self.left.eval(env), self.right.eval(env))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class Arith(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise ValueError(f"unknown operator {self.op!r}")

    def eval(self, env: dict[str, Any]) -> Any:
        return _ARITHMETIC[self.op](self.left.eval(env), self.right.eval(env))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


@dataclass
class BoolOp(Expr):
    op: str  # "and" | "or" | "not"
    operands: list[Expr]

    def eval(self, env: dict[str, Any]) -> bool:
        if self.op == "and":
            return all(o.eval(env) for o in self.operands)
        if self.op == "or":
            return any(o.eval(env) for o in self.operands)
        if self.op == "not":
            return not self.operands[0].eval(env)
        raise ValueError(f"unknown boolean op {self.op!r}")

    def columns(self) -> set[str]:
        out: set[str] = set()
        for operand in self.operands:
            out |= operand.columns()
        return out


@dataclass
class AggregateRef(Expr):
    """A call like ``corr(U.val, H.val)`` in a target list.

    Evaluated by the group-by executor, not row-wise; ``eval`` raises to
    catch misuse.
    """

    func: str
    args: list[Expr]

    def eval(self, env: dict[str, Any]) -> Any:
        raise RuntimeError("aggregates are evaluated by the group-by executor")

    def columns(self) -> set[str]:
        out: set[str] = set()
        for arg in self.args:
            out |= arg.columns()
        return out

    def __str__(self) -> str:
        return f"{self.func}({', '.join(map(str, self.args))})"
