"""Slotted-page heap file: fixed-width rows appended across pager pages.

A heap file owns an ordered list of logical page ids.  Rows are
fixed-width (one :class:`~repro.db.storage.rowcodec.RowCodec` structured
record), so a row id is simply the global row ordinal and locating it is
arithmetic: ``page = rid // rows_per_page``, ``slot = rid %
rows_per_page``.  Each page starts with an 8-byte header holding the
page's row count; rows follow back-to-back.

The file is append-only — the engine models updates as whole-table
replacement (drop + create), which keeps row ids stable for every index
that references them.
"""

from __future__ import annotations

import numpy as np

from .pager import Pager

HEADER = 8


class HeapFile:
    """Fixed-width rows over a list of pager pages, addressed by rid."""

    def __init__(self, pager: Pager, row_width: int,
                 page_ids: list[int] | None = None, n_rows: int = 0):
        if row_width <= 0:
            raise ValueError("heap rows must be at least one byte wide")
        self.pager = pager
        self.row_width = int(row_width)
        self.rows_per_page = (pager.page_size - HEADER) // self.row_width
        if self.rows_per_page < 1:
            raise ValueError(
                f"row of {row_width} bytes does not fit a "
                f"{pager.page_size}-byte page")
        self.page_ids: list[int] = list(page_ids) if page_ids else []
        self.n_rows = int(n_rows)

    def append(self, packed: np.ndarray) -> int:
        """Append structured rows; returns the first new rid."""
        first_rid = self.n_rows
        pos, total = 0, int(packed.shape[0])
        while pos < total:
            slot = self.n_rows % self.rows_per_page
            if slot == 0:
                page = self.pager.allocate()
                self.page_ids.append(page.page_id)
            else:
                page = self.pager.get(self.page_ids[-1])
            pid = page.page_id
            take = min(self.rows_per_page - slot, total - pos)
            off = HEADER + slot * self.row_width
            page.data[off:off + take * self.row_width] = \
                packed[pos:pos + take].tobytes()
            np.frombuffer(page.data, dtype="<i8", count=1)[0] = slot + take
            self.pager.mark_dirty(pid)
            self.pager.unpin(pid)
            self.n_rows += take
            pos += take
        return first_rid

    def read_all(self, dtype: np.dtype) -> np.ndarray:
        """Every row in rid order as one structured array."""
        out = np.empty(self.n_rows, dtype=dtype)
        done = 0
        for pid in self.page_ids:
            if done >= self.n_rows:
                break
            take = min(self.rows_per_page, self.n_rows - done)
            with self.pager.page(pid) as page:
                out[done:done + take] = np.frombuffer(
                    page.data, dtype=dtype, count=take, offset=HEADER)
            done += take
        return out

    def gather(self, rids: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Rows at ``rids``, in the order given (one page visit per page)."""
        rids = np.asarray(rids, dtype=np.int64)
        out = np.empty(rids.shape[0], dtype=dtype)
        if rids.shape[0] == 0:
            return out
        if rids.min() < 0 or rids.max() >= self.n_rows:
            raise IndexError("rid out of range")
        page_idx = rids // self.rows_per_page
        slots = rids % self.rows_per_page
        order = np.argsort(page_idx, kind="stable")
        sorted_pages = page_idx[order]
        bounds = np.flatnonzero(np.diff(sorted_pages)) + 1
        starts = np.concatenate(([0], bounds, [order.shape[0]]))
        for gi in range(starts.shape[0] - 1):
            a, b = int(starts[gi]), int(starts[gi + 1])
            sel = order[a:b]
            pid = self.page_ids[int(sorted_pages[a])]
            with self.pager.page(pid) as page:
                view = np.frombuffer(page.data, dtype=dtype,
                                     count=self.rows_per_page, offset=HEADER)
                out[sel] = view[slots[sel]]
        return out

    def free(self) -> None:
        """Release every page back to the pager."""
        for pid in self.page_ids:
            self.pager.free(pid)
        self.page_ids = []
        self.n_rows = 0
