"""On-disk B+-tree index over pager pages.

Keys are 8-byte scalars (``int64`` column values, dictionary codes, or
``float64`` scores — NaN is never indexed, so float ordering is total).
Entries are ordered by ``(key, rid)``: within one key, row ids ascend.
The engine only ever appends rows with increasing rids, so a plain
``searchsorted(..., side="right")`` insert preserves that invariant; bulk
loads sort with a stable argsort for the same reason.

Node layout (all 8-byte little-endian fields, order from the page size):

* header  — ``[type, count, prev, next]`` (prev/next used by leaves)
* leaf    — ``count`` keys at byte 32, then ``count`` rids in a second
  fixed block at ``32 + leaf_cap*8``
* internal — ``count`` separator keys at byte 32, then ``count+1`` child
  page ids; separator ``i`` is the first key of child ``i+1``'s subtree

Duplicate keys may span node boundaries, so descents are one-sided:
lower-bound searches descend with ``side='left'`` (duplicates equal to a
separator can spill into the left child) and insert/upper-bound searches
with ``side='right'``.  Range scans stream rid batches in ``(key, rid)``
order; descending scans emit keys high-to-low but keep each equal-key run
in ascending rid order (buffering runs across leaf boundaries), which
makes index-ordered output bit-identical to a stable argsort.
"""

from __future__ import annotations

import numpy as np

from .pager import Pager

LEAF, INTERNAL = 1, 2
HEADER = 32


def _merge_run(parts: list[np.ndarray]) -> np.ndarray:
    # parts are collected walking right-to-left; earlier leaves hold the
    # smaller rids of the run, so the ascending order is the reverse
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts[::-1])


class BTree:
    """B+-tree of ``(key, rid)`` entries stored in pager pages."""

    def __init__(self, pager: Pager, *, key_dtype: str | np.dtype = "<i8",
                 root: int = -1, n_entries: int = 0):
        self.pager = pager
        self.key_dtype = np.dtype(key_dtype)
        self.root = int(root)
        self.n_entries = int(n_entries)
        ps = pager.page_size
        self.leaf_cap = (ps - HEADER) // 16
        self.int_cap = (ps - HEADER - 8) // 16
        if self.leaf_cap < 2 or self.int_cap < 3:
            raise ValueError(f"page size {ps} too small for a B-tree node")

    # -- node views -----------------------------------------------------
    def _hdr(self, page):
        return np.frombuffer(page.data, dtype="<i8", count=4)

    def _lkeys(self, page):
        return np.frombuffer(page.data, dtype=self.key_dtype,
                             count=self.leaf_cap, offset=HEADER)

    def _lrids(self, page):
        return np.frombuffer(page.data, dtype="<i8", count=self.leaf_cap,
                             offset=HEADER + self.leaf_cap * 8)

    def _ikeys(self, page):
        return np.frombuffer(page.data, dtype=self.key_dtype,
                             count=self.int_cap, offset=HEADER)

    def _ichildren(self, page):
        return np.frombuffer(page.data, dtype="<i8", count=self.int_cap + 1,
                             offset=HEADER + self.int_cap * 8)

    def _new_node(self, kind: int):
        page = self.pager.allocate()
        hdr = self._hdr(page)
        hdr[0] = kind
        hdr[1] = 0
        hdr[2] = -1
        hdr[3] = -1
        return page

    # -- insertion ------------------------------------------------------
    def insert(self, key, rid: int) -> None:
        """Insert one entry (rid must exceed every rid already present)."""
        if self.root < 0:
            page = self._new_node(LEAF)
            self._lkeys(page)[0] = key
            self._lrids(page)[0] = rid
            self._hdr(page)[1] = 1
            self.root = page.page_id
            self.pager.unpin(page.page_id)
            self.n_entries = 1
            return
        path: list[tuple[int, int]] = []  # (page_id, child index taken)
        pid = self.root
        page = self.pager.get(pid)
        hdr = self._hdr(page)
        while hdr[0] == INTERNAL:
            n = int(hdr[1])
            ci = int(np.searchsorted(self._ikeys(page)[:n], key,
                                     side="right"))
            child = int(self._ichildren(page)[ci])
            path.append((pid, ci))
            self.pager.unpin(pid)
            pid = child
            page = self.pager.get(pid)
            hdr = self._hdr(page)
        n = int(hdr[1])
        keys, rids = self._lkeys(page), self._lrids(page)
        pos = int(np.searchsorted(keys[:n], key, side="right"))
        if n < self.leaf_cap:
            keys[pos + 1:n + 1] = keys[pos:n].copy()
            rids[pos + 1:n + 1] = rids[pos:n].copy()
            keys[pos] = key
            rids[pos] = rid
            hdr[1] = n + 1
            self.pager.mark_dirty(pid)
            self.pager.unpin(pid)
        else:
            ck = np.insert(keys[:n], pos, key)
            cr = np.insert(rids[:n], pos, rid)
            left_n = (n + 1) // 2
            right_n = n + 1 - left_n
            new = self._new_node(LEAF)
            nh = self._hdr(new)
            self._lkeys(new)[:right_n] = ck[left_n:]
            self._lrids(new)[:right_n] = cr[left_n:]
            nh[1] = right_n
            nh[2] = pid
            old_next = int(hdr[3])
            nh[3] = old_next
            keys[:left_n] = ck[:left_n]
            rids[:left_n] = cr[:left_n]
            hdr[1] = left_n
            hdr[3] = new.page_id
            if old_next >= 0:
                with self.pager.page(old_next) as nxt:
                    self._hdr(nxt)[2] = new.page_id
                    self.pager.mark_dirty(old_next)
            self.pager.mark_dirty(pid)
            sep = ck[left_n]
            new_pid = new.page_id
            self.pager.unpin(pid)
            self.pager.unpin(new_pid)
            self._insert_into_parent(path, sep, new_pid)
        self.n_entries += 1

    def _insert_into_parent(self, path, sep, right_pid: int) -> None:
        while path:
            pid, ci = path.pop()
            page = self.pager.get(pid)
            hdr = self._hdr(page)
            n = int(hdr[1])
            keys, ch = self._ikeys(page), self._ichildren(page)
            if n < self.int_cap:
                keys[ci + 1:n + 1] = keys[ci:n].copy()
                ch[ci + 2:n + 2] = ch[ci + 1:n + 1].copy()
                keys[ci] = sep
                ch[ci + 1] = right_pid
                hdr[1] = n + 1
                self.pager.mark_dirty(pid)
                self.pager.unpin(pid)
                return
            ck = np.insert(keys[:n], ci, sep)
            cc = np.insert(ch[:n + 1], ci + 1, right_pid)
            mid = (n + 1) // 2
            up = ck[mid]
            new = self._new_node(INTERNAL)
            nh = self._hdr(new)
            right_n = n - mid
            self._ikeys(new)[:right_n] = ck[mid + 1:]
            self._ichildren(new)[:right_n + 1] = cc[mid + 1:]
            nh[1] = right_n
            keys[:mid] = ck[:mid]
            ch[:mid + 1] = cc[:mid + 1]
            hdr[1] = mid
            self.pager.mark_dirty(pid)
            sep, right_pid = up, new.page_id
            self.pager.unpin(pid)
            self.pager.unpin(new.page_id)
        # the root itself split
        page = self._new_node(INTERNAL)
        self._hdr(page)[1] = 1
        self._ikeys(page)[0] = sep
        ch = self._ichildren(page)
        ch[0] = self.root
        ch[1] = right_pid
        self.root = page.page_id
        self.pager.unpin(page.page_id)

    def insert_many(self, keys: np.ndarray, rids: np.ndarray) -> None:
        for k, r in zip(keys.tolist(), rids.tolist()):
            self.insert(k, r)

    # -- bulk load ------------------------------------------------------
    def bulk_load(self, keys: np.ndarray, rids: np.ndarray,
                  fill: float = 0.8) -> None:
        """Rebuild from entries already sorted by ``(key, rid)``."""
        self.free()
        n = int(keys.shape[0])
        self.n_entries = n
        if n == 0:
            return
        per = min(max(2, int(self.leaf_cap * fill)), self.leaf_cap)
        n_leaves = -(-n // per)
        base, extra = divmod(n, n_leaves)
        level: list[tuple[object, int]] = []  # (first key, page id)
        prev_page = None
        pos = 0
        for i in range(n_leaves):
            cnt = base + (1 if i < extra else 0)
            page = self._new_node(LEAF)
            hdr = self._hdr(page)
            hdr[1] = cnt
            self._lkeys(page)[:cnt] = keys[pos:pos + cnt]
            self._lrids(page)[:cnt] = rids[pos:pos + cnt]
            if prev_page is not None:
                hdr[2] = prev_page.page_id
                self._hdr(prev_page)[3] = page.page_id
                self.pager.unpin(prev_page.page_id)
            level.append((keys[pos], page.page_id))
            prev_page = page
            pos += cnt
        self.pager.unpin(prev_page.page_id)
        while len(level) > 1:
            per_i = min(max(2, int(self.int_cap * fill)), self.int_cap)
            total = len(level)
            n_nodes = max(1, min(-(-total // per_i), total // 2))
            base, extra = divmod(total, n_nodes)
            nxt: list[tuple[object, int]] = []
            pos = 0
            for i in range(n_nodes):
                cnt = base + (1 if i < extra else 0)
                chunk = level[pos:pos + cnt]
                pos += cnt
                page = self._new_node(INTERNAL)
                self._hdr(page)[1] = cnt - 1
                ik, ic = self._ikeys(page), self._ichildren(page)
                for j, (first_key, pid) in enumerate(chunk):
                    ic[j] = pid
                    if j:
                        ik[j - 1] = first_key
                nxt.append((chunk[0][0], page.page_id))
                self.pager.unpin(page.page_id)
            level = nxt
        self.root = level[0][1]

    # -- scans ----------------------------------------------------------
    def _leaf_for_lower(self, lo, incl: bool):
        pid = self.root
        page = self.pager.get(pid)
        hdr = self._hdr(page)
        while hdr[0] == INTERNAL:
            n = int(hdr[1])
            if lo is None:
                ci = 0
            else:
                ci = int(np.searchsorted(self._ikeys(page)[:n], lo,
                                         side="left" if incl else "right"))
            child = int(self._ichildren(page)[ci])
            self.pager.unpin(pid)
            pid = child
            page = self.pager.get(pid)
            hdr = self._hdr(page)
        return page, hdr

    def _leaf_for_upper(self, hi, incl: bool):
        pid = self.root
        page = self.pager.get(pid)
        hdr = self._hdr(page)
        while hdr[0] == INTERNAL:
            n = int(hdr[1])
            if hi is None:
                ci = n
            else:
                ci = int(np.searchsorted(self._ikeys(page)[:n], hi,
                                         side="right" if incl else "left"))
            child = int(self._ichildren(page)[ci])
            self.pager.unpin(pid)
            pid = child
            page = self.pager.get(pid)
            hdr = self._hdr(page)
        return page, hdr

    def scan(self, lo=None, hi=None, lo_incl: bool = True,
             hi_incl: bool = True, descending: bool = False):
        """Yield rid arrays in ``(key, rid)`` order over ``[lo, hi]``.

        Descending scans yield one batch per distinct key, highest key
        first, rids ascending within the batch.
        """
        if self.root < 0:
            return iter(())
        if descending:
            return self._scan_desc(lo, hi, lo_incl, hi_incl)
        return self._scan_asc(lo, hi, lo_incl, hi_incl)

    def _scan_asc(self, lo, hi, lo_incl, hi_incl):
        page, hdr = self._leaf_for_lower(lo, lo_incl)
        while True:
            n = int(hdr[1])
            keys = self._lkeys(page)[:n]
            start = 0 if lo is None else int(
                np.searchsorted(keys, lo, side="left" if lo_incl else "right"))
            end = n if hi is None else int(
                np.searchsorted(keys, hi, side="right" if hi_incl else "left"))
            batch = self._lrids(page)[start:end].copy()
            nxt = int(hdr[3])
            stop = (hi is not None and end < n) or nxt < 0
            self.pager.unpin(page.page_id)
            if batch.size:
                yield batch
            if stop:
                return
            lo, lo_incl = None, True  # later leaves only hold larger keys
            page = self.pager.get(nxt)
            hdr = self._hdr(page)

    def _scan_desc(self, lo, hi, lo_incl, hi_incl):
        page, hdr = self._leaf_for_upper(hi, hi_incl)
        pend_key = None
        pend_parts: list[np.ndarray] = []
        while True:
            n = int(hdr[1])
            keys = self._lkeys(page)[:n]
            start = 0 if lo is None else int(
                np.searchsorted(keys, lo, side="left" if lo_incl else "right"))
            end = n if hi is None else int(
                np.searchsorted(keys, hi, side="right" if hi_incl else "left"))
            sk = keys[start:end].copy()
            sr = self._lrids(page)[start:end].copy()
            prev = int(hdr[2])
            stop = start > 0 or prev < 0
            self.pager.unpin(page.page_id)
            if sk.size:
                run_starts = np.flatnonzero(sk[1:] != sk[:-1]) + 1
                bounds = np.concatenate(([0], run_starts, [sk.size]))
                for ri in range(bounds.shape[0] - 2, -1, -1):
                    a, b = int(bounds[ri]), int(bounds[ri + 1])
                    k = sk[a]
                    if pend_key is not None and k == pend_key:
                        # this key's run continues from the next leaf over
                        pend_parts.append(sr[a:b])
                    else:
                        if pend_key is not None:
                            yield _merge_run(pend_parts)
                        pend_key, pend_parts = k, [sr[a:b]]
            if stop:
                if pend_key is not None:
                    yield _merge_run(pend_parts)
                return
            hi, hi_incl = None, True  # earlier leaves only hold smaller keys
            page = self.pager.get(prev)
            hdr = self._hdr(page)

    # -- maintenance ----------------------------------------------------
    def free(self) -> None:
        """Release every node back to the pager."""
        if self.root < 0:
            self.n_entries = 0
            return
        stack = [self.root]
        while stack:
            pid = stack.pop()
            page = self.pager.get(pid)
            hdr = self._hdr(page)
            if hdr[0] == INTERNAL:
                n = int(hdr[1])
                stack.extend(int(c) for c in self._ichildren(page)[:n + 1])
            self.pager.unpin(pid)
            self.pager.free(pid)
        self.root = -1
        self.n_entries = 0
