"""Paged, B-tree-indexed on-disk storage for the relational engine.

Layers, bottom up:

* :mod:`.pager` — fixed-size pages, LRU cache, shadow-paged atomic
  commits with per-page checksums (:class:`CorruptPageError` on torn
  writes).
* :mod:`.rowcodec` — fixed-width typed rows for the columnar schema
  (int64 / float64 / dictionary-encoded object columns).
* :mod:`.heap` — append-only slotted-page heap files addressed by rid.
* :mod:`.btree` — on-disk B+-tree ``(key, rid)`` indexes with
  stable-order range scans.
* :mod:`.tablestore` — the table catalog gluing it together behind
  :class:`repro.db.engine.Database`.
"""

from .btree import BTree
from .heap import HeapFile
from .pager import PAGE_SIZE, CorruptPageError, Page, Pager
from .rowcodec import DictEncoder, RowCodec, UnsupportedColumnError, derive_kinds
from .tablestore import AUTO_INDEX_COLUMNS, TableStorage

__all__ = [
    "PAGE_SIZE",
    "Page",
    "Pager",
    "CorruptPageError",
    "RowCodec",
    "DictEncoder",
    "UnsupportedColumnError",
    "derive_kinds",
    "HeapFile",
    "BTree",
    "TableStorage",
    "AUTO_INDEX_COLUMNS",
]
