"""Typed row (de)serialization for the columnar schema.

The engine's tables hold three physical column kinds:

* ``i8``   -- ``int64`` arrays,
* ``f8``   -- ``float64`` arrays,
* ``dict`` -- everything else (``object`` arrays: strings, None, bools,
  mixed values), stored as dictionary codes.

Every kind maps to an 8-byte field, so a whole table row is fixed-width
and a page of rows is one numpy structured array: encoding a million-row
batch is a handful of vectorized field assignments, and decoding a page is
one ``np.frombuffer``.  Dictionary columns keep their value list in the
table catalog (pickled, so values round-trip exactly); the in-memory
column is rebuilt with one fancy-index over the value array, which for
pure-string columns also makes equality predicates index-able (a string
literal becomes a code, codes live in a B-tree).

Columns whose values cannot be dictionary-encoded (unhashable or
unpicklable objects, or pathologically high cardinality that would bloat
the catalog) raise :class:`UnsupportedColumnError`; the database keeps
such tables memory-only instead of corrupting them.
"""

from __future__ import annotations

import base64
import pickle

import numpy as np

KINDS = ("i8", "f8", "dict")

#: refuse dictionaries that would bloat the manifest catalog
MAX_DICT_VALUES = 1 << 18


class UnsupportedColumnError(ValueError):
    """A column cannot be serialized (unhashable / unpicklable values)."""


class DictEncoder:
    """Append-only value dictionary for one column (code = list index)."""

    def __init__(self, values: list | None = None):
        self.values: list = list(values) if values else []
        self._code: dict = {}
        for i, v in enumerate(self.values):
            self._code[_dict_key(v)] = i

    def encode(self, column: np.ndarray) -> np.ndarray:
        codes = np.empty(column.shape[0], dtype=np.int64)
        code_of = self._code
        values = self.values
        try:
            for i, v in enumerate(column.tolist()):
                key = _dict_key(v)
                code = code_of.get(key)
                if code is None:
                    code = len(values)
                    if code >= MAX_DICT_VALUES:
                        raise UnsupportedColumnError(
                            f"column exceeds {MAX_DICT_VALUES} distinct "
                            f"values; too wide for dictionary encoding")
                    values.append(v)
                    code_of[key] = code
                codes[i] = code
        except TypeError as exc:  # unhashable value
            raise UnsupportedColumnError(
                f"unhashable column value: {exc}") from exc
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        lookup = np.empty(len(self.values), dtype=object)
        lookup[:] = self.values
        return lookup[codes]

    def all_str(self) -> bool:
        return all(isinstance(v, str) for v in self.values)

    def code_for(self, value) -> int | None:
        """Dictionary code of ``value``, or None if it was never stored."""
        try:
            return self._code.get(_dict_key(value))
        except TypeError:
            return None

    def serialize(self) -> str:
        try:
            return base64.b64encode(
                pickle.dumps(self.values, protocol=4)).decode("ascii")
        except Exception as exc:
            raise UnsupportedColumnError(
                f"unpicklable column value: {exc}") from exc

    @classmethod
    def deserialize(cls, payload: str) -> "DictEncoder":
        return cls(pickle.loads(base64.b64decode(payload.encode("ascii"))))


def _dict_key(value):
    """Hash key distinguishing values numpy equality would conflate.

    ``1 == 1.0 == True`` under both ``dict`` lookup and numpy broadcasting,
    but dictionary codes must round-trip the *exact* stored value; keying
    by (type, value) keeps ``1`` and ``1.0`` as distinct dictionary
    entries.  (Such mixed columns are never indexed — only all-string
    dictionary columns are — so predicate semantics stay numpy's.)
    """
    return (type(value).__name__, value)


def derive_kinds(arrays: list[np.ndarray]) -> list[str]:
    """Physical kind of each column array (``i8`` / ``f8`` / ``dict``)."""
    kinds = []
    for arr in arrays:
        if arr.dtype.kind == "i":
            kinds.append("i8")
        elif arr.dtype.kind == "f":
            kinds.append("f8")
        else:
            kinds.append("dict")
    return kinds


class RowCodec:
    """Fixed-width row codec for one table's schema."""

    def __init__(self, kinds: list[str],
                 encoders: dict[int, DictEncoder] | None = None):
        self.kinds = list(kinds)
        self.encoders: dict[int, DictEncoder] = encoders or {}
        for i, kind in enumerate(self.kinds):
            if kind not in KINDS:
                raise ValueError(f"unknown column kind {kind!r}")
            if kind == "dict" and i not in self.encoders:
                self.encoders[i] = DictEncoder()
        self.dtype = np.dtype([(f"f{i}", "<i8" if k != "f8" else "<f8")
                               for i, k in enumerate(self.kinds)])

    @property
    def row_width(self) -> int:
        return self.dtype.itemsize

    def encode(self, arrays: list[np.ndarray]) -> np.ndarray:
        """Columns -> one structured array (a flat block of rows)."""
        n = arrays[0].shape[0] if arrays else 0
        out = np.empty(n, dtype=self.dtype)
        for i, (kind, arr) in enumerate(zip(self.kinds, arrays)):
            if kind == "i8":
                out[f"f{i}"] = arr.astype(np.int64, copy=False)
            elif kind == "f8":
                out[f"f{i}"] = arr.astype(np.float64, copy=False)
            else:
                out[f"f{i}"] = self.encoders[i].encode(arr)
        return out

    def decode(self, packed: np.ndarray) -> list[np.ndarray]:
        """Structured rows -> column arrays (exact value round-trip)."""
        columns: list[np.ndarray] = []
        for i, kind in enumerate(self.kinds):
            field = np.ascontiguousarray(packed[f"f{i}"])
            if kind == "dict":
                columns.append(self.encoders[i].decode(field))
            else:
                columns.append(field)
        return columns

    def key_column(self, packed: np.ndarray, col: int) -> np.ndarray:
        """One column's raw key values (codes for dict columns)."""
        return np.ascontiguousarray(packed[f"f{col}"])

    # -- catalog round-trip --------------------------------------------
    def serialize_dicts(self) -> dict[str, str]:
        return {str(i): enc.serialize() for i, enc in self.encoders.items()}

    @classmethod
    def from_catalog(cls, kinds: list[str],
                     dicts: dict[str, str]) -> "RowCodec":
        encoders = {int(i): DictEncoder.deserialize(payload)
                    for i, payload in dicts.items()}
        return cls(kinds, encoders)
