"""Table-level persistence: heap files, auto-indexes, and the catalog.

``TableStorage`` is the storage engine behind a persistent
:class:`repro.db.engine.Database`.  It keeps one :class:`Pager` whose
manifest ``meta`` carries the whole table catalog — column names, kinds,
dictionary payloads, heap page lists, and index roots — so one pager
commit atomically publishes every table mutation staged since the last
commit.

Indexes are created automatically on hot columns (unit/model/hypothesis
ids, epochs, scores) when a table is created or rebuilt.  Float columns
containing NaN and dictionary columns holding non-string values are never
indexed — their comparison semantics under numpy diverge from key order —
and an append that introduces such values drops the affected index rather
than serving wrong answers.

Tables whose values cannot be serialized at all (unhashable or
unpicklable objects) raise :class:`UnsupportedColumnError`; the engine
keeps those tables memory-only.
"""

from __future__ import annotations

import numpy as np

from .btree import BTree
from .heap import HeapFile
from .pager import PAGE_SIZE, Pager
from .rowcodec import RowCodec, UnsupportedColumnError, derive_kinds

#: hot columns of the catalog/score schemas that get automatic indexes
AUTO_INDEX_COLUMNS = frozenset({
    "uid", "mid", "hid", "h", "did", "name", "layer", "epoch",
    "unit_score", "group_score", "score",
})


class TableStorage:
    """All persistent tables of one database, over one pager."""

    def __init__(self, path, *, page_size: int = PAGE_SIZE,
                 cache_bytes: int = 64 << 20, auto_index: bool = True):
        self.pager = Pager(path, page_size=page_size, cache_bytes=cache_bytes)
        self.auto_index = auto_index
        meta = self.pager.meta or {}
        self._catalog: dict = meta.get("tables", {})
        self._codecs: dict[str, RowCodec] = {}
        self._heaps: dict[str, HeapFile | None] = {}
        self._btrees: dict[str, dict[str, BTree]] = {}

    # -- catalog --------------------------------------------------------
    def table_names(self) -> list[str]:
        return list(self._catalog)

    def __contains__(self, name: str) -> bool:
        return name in self._catalog

    def columns(self, name: str) -> list[str]:
        return list(self._catalog[name]["columns"])

    def n_rows(self, name: str) -> int:
        return int(self._catalog[name]["n_rows"])

    def kinds(self, name: str) -> list[str]:
        return list(self._catalog[name]["kinds"])

    def codec_for(self, name: str) -> RowCodec:
        if name not in self._codecs:
            ent = self._catalog[name]
            self._codecs[name] = RowCodec.from_catalog(
                ent["kinds"], ent.get("dicts", {}))
        return self._codecs[name]

    def _heap(self, name: str) -> HeapFile | None:
        if name not in self._heaps:
            ent = self._catalog[name]
            codec = self.codec_for(name)
            heap = None
            if codec.row_width > 0:
                heap = HeapFile(self.pager, codec.row_width,
                                ent["heap_pages"], ent["n_rows"])
            self._heaps[name] = heap
        return self._heaps[name]

    # -- table mutation (staged; published by commit()) -----------------
    def create(self, name: str, columns: list[str],
               arrays: list[np.ndarray], n_rows: int | None = None) -> None:
        """(Re)write a table wholesale and build its auto-indexes.

        Raises :class:`UnsupportedColumnError` before any page is touched
        if a column cannot be serialized; the table is left absent.
        """
        kinds = derive_kinds(arrays)
        codec = RowCodec(kinds)
        packed = codec.encode(arrays)
        dicts = codec.serialize_dicts()  # validates picklability up front
        self.drop(name)
        n = int(n_rows if n_rows is not None else
                (arrays[0].shape[0] if arrays else 0))
        heap = None
        if codec.row_width > 0:
            heap = HeapFile(self.pager, codec.row_width)
            if n:
                heap.append(packed)
        ent = {
            "columns": list(columns),
            "kinds": kinds,
            "dicts": dicts,
            "n_rows": n,
            "heap_pages": heap.page_ids if heap is not None else [],
            "indexes": {},
        }
        self._catalog[name] = ent
        self._codecs[name] = codec
        self._heaps[name] = heap
        self._btrees[name] = {}
        if self.auto_index:
            for ci, col in enumerate(columns):
                if col in AUTO_INDEX_COLUMNS:
                    self._build_index(name, col, ci, packed)

    def append(self, name: str, arrays: list[np.ndarray]) -> None:
        """Append rows and maintain every live index."""
        ent = self._catalog[name]
        codec = self.codec_for(name)
        packed = codec.encode(arrays)
        ent["dicts"] = codec.serialize_dicts()
        heap = self._heap(name)
        n_new = int(packed.shape[0])
        if heap is None or n_new == 0:
            ent["n_rows"] = int(ent["n_rows"]) + n_new
            return
        start_rid = heap.append(packed)
        ent["n_rows"] = heap.n_rows
        ent["heap_pages"] = heap.page_ids
        for col in list(ent["indexes"]):
            ci = ent["columns"].index(col)
            keys = codec.key_column(packed, ci)
            if not self._indexable(codec, ci, keys):
                self.drop_index(name, col)
                continue
            tree = self.btree(name, col)
            if n_new > tree.n_entries:
                full = codec.key_column(heap.read_all(codec.dtype), ci)
                order = np.argsort(full, kind="stable")
                tree.bulk_load(full[order],
                               order.astype(np.int64, copy=False))
            else:
                rids = np.arange(start_rid, start_rid + n_new,
                                 dtype=np.int64)
                order = np.argsort(keys, kind="stable")
                tree.insert_many(keys[order], rids[order])
            info = ent["indexes"][col]
            info["root"] = tree.root
            info["n"] = tree.n_entries

    def drop(self, name: str) -> None:
        if name not in self._catalog:
            return
        for col in list(self._catalog[name]["indexes"]):
            self.drop_index(name, col)
        heap = self._heap(name)
        if heap is not None:
            heap.free()
        del self._catalog[name]
        self._codecs.pop(name, None)
        self._heaps.pop(name, None)
        self._btrees.pop(name, None)

    # -- indexes --------------------------------------------------------
    def _indexable(self, codec: RowCodec, ci: int, keys: np.ndarray) -> bool:
        kind = codec.kinds[ci]
        if kind == "f8" and bool(np.isnan(keys).any()):
            return False
        if kind == "dict" and not codec.encoders[ci].all_str():
            return False
        return True

    def _build_index(self, name: str, col: str, ci: int,
                     packed: np.ndarray) -> None:
        codec = self.codec_for(name)
        keys = codec.key_column(packed, ci)
        if not self._indexable(codec, ci, keys):
            return
        key_dtype = "<f8" if codec.kinds[ci] == "f8" else "<i8"
        tree = BTree(self.pager, key_dtype=key_dtype)
        order = np.argsort(keys, kind="stable")
        tree.bulk_load(keys[order], order.astype(np.int64, copy=False))
        self._catalog[name]["indexes"][col] = {
            "root": tree.root,
            "n": tree.n_entries,
            "dtype": key_dtype,
            "eq_only": codec.kinds[ci] == "dict",
        }
        self._btrees.setdefault(name, {})[col] = tree

    def drop_index(self, name: str, col: str) -> None:
        tree = self.btree(name, col)
        if tree is not None:
            tree.free()
        self._catalog[name]["indexes"].pop(col, None)
        self._btrees.get(name, {}).pop(col, None)

    def btree(self, name: str, col: str) -> BTree | None:
        trees = self._btrees.setdefault(name, {})
        if col not in trees:
            info = self._catalog.get(name, {}).get("indexes", {}).get(col)
            if info is None:
                return None
            trees[col] = BTree(self.pager, key_dtype=info["dtype"],
                               root=info["root"], n_entries=info["n"])
        return trees[col]

    def index_info(self, name: str, col: str) -> dict | None:
        if name not in self._catalog:
            return None
        return self._catalog[name]["indexes"].get(col)

    # -- reads ----------------------------------------------------------
    def load_columns(self, name: str) -> tuple[list[str], list[np.ndarray]]:
        """Decode a whole table into (column names, column arrays)."""
        ent = self._catalog[name]
        codec = self.codec_for(name)
        heap = self._heap(name)
        if heap is None or ent["n_rows"] == 0:
            empty = []
            for kind in codec.kinds:
                dtype = {"i8": np.int64, "f8": np.float64}.get(kind, object)
                empty.append(np.empty(0, dtype=dtype))
            return list(ent["columns"]), empty
        packed = heap.read_all(codec.dtype)
        return list(ent["columns"]), codec.decode(packed)

    def gather(self, name: str, rids: np.ndarray,
               cols: list[str]) -> dict[str, np.ndarray]:
        """Decode only ``cols`` at ``rids`` (rid order preserved)."""
        ent = self._catalog[name]
        codec = self.codec_for(name)
        heap = self._heap(name)
        packed = heap.gather(rids, codec.dtype)
        out: dict[str, np.ndarray] = {}
        for col in cols:
            ci = ent["columns"].index(col)
            field = codec.key_column(packed, ci)
            if codec.kinds[ci] == "dict":
                out[col] = codec.encoders[ci].decode(field)
            else:
                out[col] = field
        return out

    # -- durability -----------------------------------------------------
    def commit(self) -> None:
        """Atomically publish every staged table mutation."""
        self.pager.commit({"tables": self._catalog})

    @property
    def has_uncommitted(self) -> bool:
        return self.pager.has_uncommitted

    def close(self) -> None:
        self.pager.close()

    def stats(self) -> dict:
        s = self.pager.stats()
        s["tables"] = len(self._catalog)
        s["indexes"] = sum(len(t["indexes"]) for t in self._catalog.values())
        return s


__all__ = ["TableStorage", "AUTO_INDEX_COLUMNS", "UnsupportedColumnError"]
