"""Fixed-size page store with a pinned LRU cache and shadow-paged commits.

The relational engine's persistence layer stores everything — heap pages,
B-tree nodes — as fixed-size pages in one ``pages.bin`` file, addressed by
*logical* page id.  The durability design reuses the behavior store's
atomic-manifest pattern (:mod:`repro.store.disk`):

* **Shadow paging.**  A committed page is never overwritten in place.  The
  first time a logical page is dirtied after a commit it is assigned a
  fresh *physical* slot; all writes (including eviction write-back) go to
  that slot, which no committed state references.
* **Atomic manifest.**  ``manifest.json`` maps logical ids to physical
  slots and carries a CRC32 per page plus caller metadata (the table
  catalog).  :meth:`Pager.commit` writes every dirty page, fsyncs the data
  file, and then atomically renames a new manifest into place — the single
  commit point.  A crash at any moment leaves the previous manifest (and
  every physical slot it references) untouched, so reopening recovers to
  the last commit; at worst the data file carries orphan slots, which the
  next commit reuses.
* **Checksums.**  Every page read from disk is verified against its
  manifest CRC; a torn or truncated page raises :class:`CorruptPageError`
  instead of being served.

The page cache holds decoded pages under a byte budget with LRU eviction;
pinned pages are never evicted, and evicted dirty pages are written back
to their shadow slot (re-read through their recorded CRC).

Single-writer: one process commits at a time (an flock around the commit
guards against accidental concurrent writers); readers need no lock
because the manifest swap is atomic.
"""

from __future__ import annotations

import contextlib
import json
import os
import zlib
from collections import OrderedDict
from pathlib import Path

try:  # POSIX advisory locking, like the behavior store
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

PAGE_SIZE = 4096
MANIFEST = "manifest.json"
DATA_FILE = "pages.bin"
_VERSION = 1


class CorruptPageError(Exception):
    """A page's bytes disagree with the committed checksum."""


class Page:
    """One cached page: a mutable ``bytearray`` of ``page_size`` bytes."""

    __slots__ = ("page_id", "data", "pins", "dirty")

    def __init__(self, page_id: int, data: bytearray):
        self.page_id = page_id
        self.data = data
        self.pins = 0
        self.dirty = False


class Pager:
    """Logical pages over one data file, committed via an atomic manifest."""

    def __init__(self, root: str | os.PathLike, *, page_size: int = PAGE_SIZE,
                 cache_bytes: int = 64 << 20):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.page_size = int(page_size)
        self.cache_bytes = int(cache_bytes)
        self._path = self.root / DATA_FILE
        if not self._path.exists():
            self._path.touch()
        self._file = open(self._path, "r+b")
        manifest = self._load_manifest()
        if manifest.get("page_size", self.page_size) != self.page_size:
            self.page_size = int(manifest["page_size"])
        #: committed logical -> physical slot (-1 = free logical id)
        self._table: list[int] = list(manifest.get("table", []))
        self._crc: list[int] = list(manifest.get("crc", []))
        self._n_slots: int = int(manifest.get("n_slots", 0))
        self._free_phys: list[int] = list(manifest.get("free_phys", []))
        self._free_logical: list[int] = [
            lid for lid, phys in enumerate(self._table) if phys < 0]
        self.meta: dict = manifest.get("meta", {})
        # uncommitted transaction state
        self._shadow: dict[int, int] = {}      # dirty logical -> fresh slot
        self._shadow_crc: dict[int, int] = {}  # crc of evicted dirty pages
        self._freed: set[int] = set()          # logical ids freed this txn
        self._cache: OrderedDict[int, Page] = OrderedDict()
        # instrumentation
        self.pages_read = 0
        self.pages_written = 0
        self.evictions = 0
        self.commits = 0

    # -- manifest -------------------------------------------------------
    def _load_manifest(self) -> dict:
        path = self.root / MANIFEST
        if not path.exists():
            return {}
        with open(path, encoding="utf-8") as f:
            manifest = json.load(f)
        if manifest.get("version") != _VERSION:
            raise ValueError(f"unsupported pager manifest version "
                             f"{manifest.get('version')!r} at {path}")
        return manifest

    @contextlib.contextmanager
    def _commit_lock(self):
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        with open(self.root / ".lock", "a+b") as lock:
            fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)

    def _write_manifest(self, manifest: dict) -> None:
        path = self.root / MANIFEST
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        payload = json.dumps(manifest).encode("utf-8")
        with open(tmp, "wb") as f:
            f.write(payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)

    # -- physical I/O ---------------------------------------------------
    def _read_slot(self, phys: int) -> bytearray:
        self._file.seek(phys * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) < self.page_size:  # truncated tail
            data = data + b"\x00" * (self.page_size - len(data))
        self.pages_read += 1
        return bytearray(data)

    def _write_slot(self, phys: int, data: bytes) -> int:
        self._file.seek(phys * self.page_size)
        self._file.write(data)
        self.pages_written += 1
        return zlib.crc32(data)

    def _take_slot(self) -> int:
        if self._free_phys:
            return self._free_phys.pop()
        slot = self._n_slots
        self._n_slots += 1
        return slot

    # -- page API -------------------------------------------------------
    def __len__(self) -> int:
        """Logical pages currently allocated (committed + this txn)."""
        return len(self._table) - len(self._free_logical) - len(self._freed)

    def allocate(self) -> Page:
        """A fresh zeroed page, pinned and dirty."""
        if self._free_logical:
            lid = self._free_logical.pop()
        else:
            lid = len(self._table)
            self._table.append(-1)
            self._crc.append(0)
        self._freed.discard(lid)
        self._shadow[lid] = self._take_slot()
        page = Page(lid, bytearray(self.page_size))
        page.pins = 1
        page.dirty = True
        self._insert(page)
        return page

    def get(self, page_id: int, pin: bool = True) -> Page:
        """Fetch a page (cache hit or disk read with CRC verification)."""
        page = self._cache.get(page_id)
        if page is not None:
            self._cache.move_to_end(page_id)
            if pin:
                page.pins += 1
            return page
        if page_id in self._shadow and page_id in self._shadow_crc:
            phys, crc = self._shadow[page_id], self._shadow_crc[page_id]
        else:
            if page_id >= len(self._table) or self._table[page_id] < 0 \
                    or page_id in self._freed:
                raise KeyError(f"page {page_id} is not allocated")
            phys, crc = self._table[page_id], self._crc[page_id]
        data = self._read_slot(phys)
        if zlib.crc32(bytes(data)) != crc:
            raise CorruptPageError(
                f"page {page_id} (slot {phys}) failed its checksum: "
                f"torn or truncated write; the table recovers only to the "
                f"last committed state")
        page = Page(page_id, data)
        # a page read back from its shadow slot is still part of the
        # uncommitted transaction: keep it marked dirty so commit()
        # rewrites its final bytes and records the final CRC
        page.dirty = page_id in self._shadow
        if pin:
            page.pins = 1
        self._insert(page)
        return page

    def unpin(self, page_id: int) -> None:
        page = self._cache.get(page_id)
        if page is None:
            return
        if page.pins <= 0:
            raise RuntimeError(f"page {page_id} is not pinned")
        page.pins -= 1

    @contextlib.contextmanager
    def page(self, page_id: int):
        """``with pager.page(pid) as p:`` — pinned for the block."""
        page = self.get(page_id)
        try:
            yield page
        finally:
            self.unpin(page_id)

    def mark_dirty(self, page_id: int) -> None:
        """Record a mutation; assigns the page's shadow slot (COW)."""
        page = self._cache.get(page_id)
        if page is None:
            raise KeyError(f"page {page_id} is not cached; get() it first")
        page.dirty = True
        if page_id not in self._shadow:
            self._shadow[page_id] = self._take_slot()

    def free(self, page_id: int) -> None:
        """Release a logical page (effective at the next commit)."""
        self._cache.pop(page_id, None)
        shadow = self._shadow.pop(page_id, None)
        self._shadow_crc.pop(page_id, None)
        if shadow is not None:
            self._free_phys.append(shadow)  # never committed-referenced
        if page_id < len(self._table) and self._table[page_id] >= 0:
            self._freed.add(page_id)  # committed slot released at commit
        else:
            self._free_logical.append(page_id)

    # -- cache ----------------------------------------------------------
    def _insert(self, page: Page) -> None:
        self._cache[page.page_id] = page
        self._cache.move_to_end(page.page_id)
        budget = max(self.cache_bytes // self.page_size, 8)
        if len(self._cache) <= budget:
            return
        for lid in list(self._cache):
            if len(self._cache) <= budget:
                break
            victim = self._cache[lid]
            if victim.pins > 0 or victim is page:
                continue
            if victim.dirty:
                crc = self._write_slot(self._shadow[lid], bytes(victim.data))
                self._shadow_crc[lid] = crc
            del self._cache[lid]
            self.evictions += 1

    # -- commit ---------------------------------------------------------
    def commit(self, meta: dict | None = None) -> None:
        """Write dirty pages, fsync, and atomically publish the manifest."""
        if meta is not None:
            self.meta = meta
        for lid, page in self._cache.items():
            if page.dirty:
                self._shadow_crc[lid] = self._write_slot(
                    self._shadow[lid], bytes(page.data))
                page.dirty = False
        self._file.flush()
        os.fsync(self._file.fileno())
        # fold the transaction into the committed page table
        for lid, phys in self._shadow.items():
            old = self._table[lid]
            if old >= 0:
                self._free_phys.append(old)
            self._table[lid] = phys
            self._crc[lid] = self._shadow_crc.get(lid, 0)
        for lid in self._freed:
            old = self._table[lid]
            if old >= 0:
                self._free_phys.append(old)
            self._table[lid] = -1
            self._free_logical.append(lid)
        self._shadow.clear()
        self._shadow_crc.clear()
        self._freed.clear()
        manifest = {
            "version": _VERSION,
            "page_size": self.page_size,
            "n_slots": self._n_slots,
            "table": self._table,
            "crc": self._crc,
            "free_phys": self._free_phys,
            "meta": self.meta,
        }
        with self._commit_lock():
            self._write_manifest(manifest)
        self.commits += 1

    @property
    def has_uncommitted(self) -> bool:
        return bool(self._shadow or self._freed)

    def close(self) -> None:
        """Release the file handle (uncommitted pages are discarded)."""
        try:
            self._file.close()
        except ValueError:  # pragma: no cover - already closed
            pass

    def stats(self) -> dict:
        return {"pages": len(self), "page_size": self.page_size,
                "slots": self._n_slots, "cached": len(self._cache),
                "reads": self.pages_read, "writes": self.pages_written,
                "evictions": self.evictions, "commits": self.commits}
