"""Index-aware scan planning for the columnar executor.

For single-table queries over a **clean** persistent table (in-memory
state identical to the last commit) the planner can answer the scan +
WHERE stage from the on-disk B-tree indexes instead of a full column
pass:

* **Top-k streaming** — ``ORDER BY col LIMIT k`` where ``col`` carries a
  range index: rid batches stream out of the B-tree in ``(key, rid)``
  order (descending scans keep equal-key runs in ascending rid order),
  residual predicates filter each batch, and the scan stops after ``k``
  survivors.  Only the referenced columns of those ``k`` rows are ever
  decoded — a reopened session answers the query without loading the
  table.
* **Range scan** — sargable WHERE conjuncts (``col <op> literal`` under
  an AND chain) on an indexed column become index range bounds; the
  matching rids are re-sorted ascending so downstream operators see rows
  in exactly full-scan order, and residual conjuncts are evaluated on
  the gathered batch.

Bounds are converted into the index's key space *exactly*: comparing an
int64 column against a fractional float literal floors/ceils the bound
(``x > 2.5`` ⇢ ``x >= 3``), string literals on dictionary columns become
dictionary codes, NaN literals prove emptiness.  Anything the planner
cannot prove equivalent falls back to the vectorized full scan, so index
on/off is bit-identical by construction.

This module must not import :mod:`repro.db.executor` (which imports it).
"""

from __future__ import annotations

import math

import numpy as np

from repro.db.engine import Database, Table
from repro.db.expr import AggregateRef, BoolOp, Column, Compare, Expr, Literal

_IMAX = np.iinfo(np.int64).max
_IMIN = np.iinfo(np.int64).min

#: sentinel bound conversion result: the predicate provably selects nothing
_EMPTY = object()


def _flatten_and(expr: Expr) -> list[Expr]:
    """Conjuncts of an AND chain (the expression itself when not AND)."""
    if isinstance(expr, BoolOp) and expr.op == "and":
        out: list[Expr] = []
        for operand in expr.operands:
            out.extend(_flatten_and(operand))
        return out
    return [expr]


def _and_together(conjuncts: list[Expr]) -> Expr | None:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return BoolOp("and", conjuncts)


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def _as_sarg(expr: Expr) -> tuple[str, str, object] | None:
    """``(column, op, literal)`` for an index-able comparison, else None."""
    if not isinstance(expr, Compare) or expr.op not in _FLIP:
        return None
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(left, Literal) and isinstance(right, Column):
        left, right, op = right, left, _FLIP[op]
    if not (isinstance(left, Column) and isinstance(right, Literal)):
        return None
    value = right.value
    if not isinstance(value, (bool, int, float, str, np.integer, np.floating)):
        return None
    return left.name, op, value


class _Bounds:
    """Intersection of range constraints in the index's key space."""

    def __init__(self) -> None:
        self.lo = None
        self.lo_incl = True
        self.hi = None
        self.hi_incl = True
        self.constrained = False

    def add_lo(self, value, incl: bool) -> None:
        self.constrained = True
        if self.lo is None or value > self.lo or \
                (value == self.lo and self.lo_incl and not incl):
            self.lo, self.lo_incl = value, incl

    def add_hi(self, value, incl: bool) -> None:
        self.constrained = True
        if self.hi is None or value < self.hi or \
                (value == self.hi and self.hi_incl and not incl):
            self.hi, self.hi_incl = value, incl

    def add_eq(self, value) -> None:
        self.add_lo(value, True)
        self.add_hi(value, True)

    @property
    def empty(self) -> bool:
        if self.lo is None or self.hi is None:
            return False
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and not (self.lo_incl and self.hi_incl)


def _apply_float_sarg(bounds: _Bounds, op: str, value) -> bool:
    """Fold one conjunct into float-key bounds; False ⇒ provably empty."""
    v = float(value)
    if math.isnan(v):
        return False  # every comparison with NaN is false
    if op == "=":
        bounds.add_eq(v)
    elif op == ">":
        bounds.add_lo(v, False)
    elif op == ">=":
        bounds.add_lo(v, True)
    elif op == "<":
        bounds.add_hi(v, False)
    else:
        bounds.add_hi(v, True)
    return True


def _apply_int_sarg(bounds: _Bounds, op: str, value) -> bool:
    """Exact int64 bound for ``int_column <op> value``; False ⇒ empty.

    Fractional float literals floor/ceil to the tightest equivalent
    integer bound (``x > 2.5`` ⇢ ``x > 2`` strict ⇢ ``x >= 3``), so the
    index scan matches numpy's mixed int/float comparison bit for bit.
    """
    if isinstance(value, (float, np.floating)):
        v = float(value)
        if math.isnan(v):
            return False
        if math.isinf(v):
            if op == "=":
                return False
            if v > 0:  # +inf: x < +inf is no constraint, x > +inf empty
                return op in ("<", "<=")
            return op in (">", ">=")  # -inf mirrored
        integral = v == int(v)
        b = math.floor(v)
        if op == "=":
            if not integral:
                return False
            op, b = "=", int(v)
        elif op == ">":
            op = ">"          # x > 2.0 ⇔ x > 2; x > 2.5 ⇔ x > 2
        elif op == ">=":
            op = ">=" if integral else ">"
        elif op == "<":
            op = "<" if integral else "<="
        else:  # <=
            op = "<="
    else:
        b = int(value)
    # clamp into the int64 key domain
    if op == "=":
        if b < _IMIN or b > _IMAX:
            return False
        bounds.add_eq(b)
    elif op == ">":
        if b >= _IMAX:
            return False
        if b >= _IMIN:
            bounds.add_lo(b, False)
        else:
            bounds.constrained = True
    elif op == ">=":
        if b > _IMAX:
            return False
        if b > _IMIN:
            bounds.add_lo(b, True)
        else:
            bounds.constrained = True
    elif op == "<":
        if b <= _IMIN:
            return False
        if b <= _IMAX:
            bounds.add_hi(b, False)
        else:
            bounds.constrained = True
    else:  # <=
        if b < _IMIN:
            return False
        if b < _IMAX:
            bounds.add_hi(b, True)
        else:
            bounds.constrained = True
    return True


class _TableScope:
    """Column-name resolution for the single FROM table."""

    def __init__(self, db: Database, query) -> None:
        self.db = db
        self.name = query.table
        self.table: Table = db.table(query.table)
        self.alias = query.alias or query.table
        self._cols = set(self.table.columns)

    def resolve(self, ref: str) -> str | None:
        """Bare table column for a (possibly qualified) reference."""
        if ref in self._cols:
            return ref
        prefix = self.alias + "."
        if ref.startswith(prefix) and ref[len(prefix):] in self._cols:
            return ref[len(prefix):]
        return None

    def gather(self, rids: np.ndarray,
               bare_cols: list[str]) -> dict[str, np.ndarray]:
        """Column dict (qualified + bare names) for the rows at ``rids``.

        Loaded tables gather from their in-memory arrays; lazy tables go
        through :meth:`TableStorage.gather`, decoding only the touched
        pages — this is what lets a reopened session answer an indexed
        query without materializing the table.
        """
        if self.table.is_loaded:
            arrays = {c: self.table.column(c)[rids] for c in bare_cols}
        else:
            arrays = self.db.storage.gather(self.name, rids, bare_cols) \
                if bare_cols else {}
        out: dict[str, np.ndarray] = {}
        for col, arr in arrays.items():
            out[f"{self.alias}.{col}"] = arr
            out.setdefault(col, arr)
        return out


def _collect_bounds(scope: _TableScope, conjuncts: list[Expr],
                    col: str, info: dict):
    """Split conjuncts into bounds on ``col`` + residual predicates.

    Returns ``(bounds, residual)`` — ``bounds`` is ``_EMPTY`` when some
    conjunct proves the result empty, else a :class:`_Bounds`.
    """
    bounds = _Bounds()
    residual: list[Expr] = []
    for conj in conjuncts:
        sarg = _as_sarg(conj)
        target = scope.resolve(sarg[0]) if sarg else None
        if target != col:
            residual.append(conj)
            continue
        _, op, value = sarg
        if info["eq_only"]:
            # dictionary codes carry no range order: only `=` on a string
            if op != "=" or not isinstance(value, str):
                residual.append(conj)
                continue
            code = scope.db.storage.codec_for(scope.name) \
                .encoders[scope.table.columns.index(col)].code_for(value)
            if code is None:
                return _EMPTY, residual
            bounds.add_eq(int(code))
        elif isinstance(value, str):
            residual.append(conj)  # str vs numeric column: not sargable
        elif info["dtype"] == "<f8":
            if not _apply_float_sarg(bounds, op, value):
                return _EMPTY, residual
        else:
            if not _apply_int_sarg(bounds, op, value):
                return _EMPTY, residual
        if bounds.empty:
            return _EMPTY, residual
    return bounds, residual


def _residual_mask(residual: Expr | None, cols: dict[str, np.ndarray],
                   n: int) -> np.ndarray | None:
    if residual is None:
        return None
    mask = np.asarray(residual.eval_batch(cols))
    if mask.ndim == 0:
        mask = np.full(n, bool(mask))
    return mask.astype(bool)


def plan_scan(db: Database, query):
    """Try to answer scan+WHERE (and ORDER BY+LIMIT) from an index.

    Returns ``(cols, n, ordered)`` — a column dict covering every name
    the query references, the surviving row count, and whether the rows
    already sit in final ORDER BY+LIMIT order — or None to fall back to
    the vectorized full scan.  Increments ``db.index_scans`` (never
    ``db.full_scans``) when a plan is taken.
    """
    if db.storage is None or not db.use_indexes or query.joins:
        return None
    if not db.table_clean(query.table):
        return None
    scope = _TableScope(db, query)

    # every referenced name must resolve to a table column, otherwise the
    # full scan's KeyError behavior must be preserved
    needed: set[str] = set()
    for item in query.items:
        needed |= item.expr.columns()
    for expr in query.group_by:
        needed |= expr.columns()
    if query.having is not None:
        needed |= query.having.columns()
    if query.where is not None:
        needed |= query.where.columns()
    bare_needed: list[str] = []
    for ref in sorted(needed):
        bare = scope.resolve(ref)
        if bare is None:
            return None
        if bare not in bare_needed:
            bare_needed.append(bare)

    conjuncts = _flatten_and(query.where) if query.where is not None else []

    plan = _plan_topk(db, query, scope, conjuncts, bare_needed)
    if plan is not None:
        return plan
    return _plan_range(db, query, scope, conjuncts, bare_needed)


def _order_column(query, scope: _TableScope) -> str | None:
    """The table column behind ``ORDER BY alias``, when it is a plain ref."""
    for item in query.items:
        if item.alias == query.order_by:
            if isinstance(item.expr, Column):
                return scope.resolve(item.expr.name)
            return None
    return None


def _plan_topk(db: Database, query, scope: _TableScope,
               conjuncts: list[Expr], bare_needed: list[str]):
    """ORDER BY col LIMIT k streamed straight out of the B-tree."""
    if query.limit is None or query.order_by is None:
        return None
    if query.group_by or query.having is not None or \
            any(isinstance(it.expr, AggregateRef) for it in query.items):
        return None
    col = _order_column(query, scope)
    if col is None:
        return None
    indexed = db.index_for(query.table, col)
    if indexed is None or indexed[1]["eq_only"]:
        return None
    tree, info = indexed

    bounds, residual_list = _collect_bounds(scope, conjuncts, col, info)
    residual = _and_together(residual_list)
    residual_cols: list[str] = []
    if residual is not None:
        for ref in sorted(residual.columns()):
            bare = scope.resolve(ref)
            if bare is not None and bare not in residual_cols:
                residual_cols.append(bare)

    want = max(int(query.limit), 0)
    parts: list[np.ndarray] = []
    got = 0
    if bounds is not _EMPTY and want > 0:
        for batch in tree.scan(bounds.lo, bounds.hi, bounds.lo_incl,
                               bounds.hi_incl, descending=query.descending):
            if residual is not None:
                rcols = scope.gather(batch, residual_cols)
                mask = _residual_mask(residual, rcols, batch.shape[0])
                batch = batch[mask]
            if batch.size:
                parts.append(batch)
                got += int(batch.size)
            if got >= want:
                break
    rids = np.concatenate(parts)[:want] if parts \
        else np.empty(0, dtype=np.int64)
    db.index_scans += 1
    return scope.gather(rids, bare_needed), int(rids.shape[0]), True


def _plan_range(db: Database, query, scope: _TableScope,
                conjuncts: list[Expr], bare_needed: list[str]):
    """Sargable WHERE conjuncts answered by one index range scan."""
    if not conjuncts:
        return None
    best = None  # (has_eq, col, tree, info)
    for conj in conjuncts:
        sarg = _as_sarg(conj)
        if sarg is None:
            continue
        col = scope.resolve(sarg[0])
        if col is None:
            continue
        indexed = db.index_for(query.table, col)
        if indexed is None:
            continue
        if indexed[1]["eq_only"] and \
                not (sarg[1] == "=" and isinstance(sarg[2], str)):
            continue
        has_eq = sarg[1] == "="
        if best is None or (has_eq and not best[0]):
            best = (has_eq, col, *indexed)
    if best is None:
        return None
    _, col, tree, info = best

    bounds, residual_list = _collect_bounds(scope, conjuncts, col, info)
    if bounds is not _EMPTY and not bounds.constrained:
        return None  # nothing actually narrowed: full scan is better
    if bounds is _EMPTY:
        rids = np.empty(0, dtype=np.int64)
    else:
        parts = list(tree.scan(bounds.lo, bounds.hi,
                               bounds.lo_incl, bounds.hi_incl))
        rids = np.concatenate(parts) if parts else np.empty(0, np.int64)
        # downstream operators expect rows in original order, which for
        # the append-only heap is ascending rid order
        rids = np.sort(rids, kind="stable")
        if scope.table.is_loaded and rids.shape[0] * 2 > len(scope.table):
            return None  # unselective over a loaded table: scan it

    residual = _and_together(residual_list)
    gather_cols = list(bare_needed)
    if residual is not None:
        for ref in sorted(residual.columns()):
            bare = scope.resolve(ref)
            if bare is not None and bare not in gather_cols:
                gather_cols.append(bare)
    cols = scope.gather(rids, gather_cols)
    n = int(rids.shape[0])
    mask = _residual_mask(residual, cols, n)
    if mask is not None:
        cols = {name: arr[mask] for name, arr in cols.items()}
        n = int(mask.sum())
    db.index_scans += 1
    return cols, n, False


__all__ = ["plan_scan"]
