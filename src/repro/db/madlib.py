"""MADLib-style training UDAs: logistic regression inside the database.

``logregr_train`` mimics MADLib's iterated gradient-descent UDA: every
optimization pass is a full scan of the source relation with per-row state
stepping, and the fitted coefficients land in an output table.  This is the
cost profile Section 5.1.1 measures ("a full scan of the behavior tables and
a full execution of the UDF for every hypothesis").

Like ``execute_select``, each UDA runs on one of two engines: ``columnar``
(the default) reads the relation's numpy column arrays once and performs
each gradient pass as a matrix product, while ``row`` retains the original
per-row stepping.  Both charge one ``full_scans`` tick per optimization
pass, so the pass-count instrumentation the paper reports is identical.
"""

from __future__ import annotations

import math

import numpy as np

from repro.db.engine import Database


def _sigmoid(z: float) -> float:
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    e = math.exp(z)
    return e / (1.0 + e)


def _sigmoid_vec(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _resolve_engine(engine: str | None) -> str:
    from repro.db.executor import DEFAULT_ENGINE, ENGINES
    engine = engine or DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected {ENGINES}")
    return engine


def logregr_train(db: Database, source_table: str, out_table: str,
                  dep_col: str, indep_cols: list[str],
                  max_iter: int = 8, lr: float = 0.1,
                  l2: float = 1e-3, engine: str | None = None) -> list[float]:
    """Train binary logistic regression with full-scan gradient passes.

    Returns the coefficient vector (bias last) and materializes it into
    ``out_table`` with schema (coef_name, value).
    """
    table = db.table(source_table)
    n_rows = len(table)
    if n_rows == 0:
        raise ValueError(f"{source_table} is empty")
    d = len(indep_cols)

    if _resolve_engine(engine) == "columnar":
        x = np.column_stack(
            [np.asarray(table.column(c), dtype=np.float64)
             for c in indep_cols]) if d else np.zeros((n_rows, 0))
        y = (np.asarray(table.column(dep_col), dtype=np.float64) > 0) \
            .astype(np.float64)
        w = np.zeros(d)
        bias = 0.0
        for _ in range(max_iter):
            db.full_scans += 1  # one pass over the relation per iteration
            err = _sigmoid_vec(x @ w + bias) - y
            w -= lr * ((x.T @ err) / n_rows + l2 * w)
            bias -= lr * float(err.sum()) / n_rows
        weights = [*w.tolist(), bias]
    else:
        dep_idx = table.col_index(dep_col)
        indep_idx = [table.col_index(c) for c in indep_cols]
        weights = [0.0] * (d + 1)  # bias last
        for _ in range(max_iter):
            grad = [0.0] * (d + 1)
            for row in db.scan(source_table):  # one full scan per pass
                z = weights[d]
                for k, idx in enumerate(indep_idx):
                    z += weights[k] * row[idx]
                err = _sigmoid(z) - (1.0 if row[dep_idx] > 0 else 0.0)
                for k, idx in enumerate(indep_idx):
                    grad[k] += err * row[idx]
                grad[d] += err
            for k in range(d):
                weights[k] -= lr * (grad[k] / n_rows + l2 * weights[k])
            weights[d] -= lr * grad[d] / n_rows

    rows = [(name, w) for name, w in zip(indep_cols + ["__bias__"], weights)]
    db.create_table(out_table, ["coef_name", "value"], rows, replace=True)
    return weights


def logregr_predict(db: Database, source_table: str, coef_table: str,
                    indep_cols: list[str],
                    engine: str | None = None) -> list[float]:
    """Predicted probabilities, one full scan."""
    coefs = {name: val for name, val in db.table(coef_table).rows}
    table = db.table(source_table)
    bias = coefs["__bias__"]
    if _resolve_engine(engine) == "columnar":
        cols = db.scan_columns(source_table, indep_cols)
        z = np.full(len(table), float(bias))
        for col, arr in zip(indep_cols, cols):
            z += coefs[col] * np.asarray(arr, dtype=np.float64)
        return _sigmoid_vec(z).tolist()
    indep_idx = [table.col_index(c) for c in indep_cols]
    out = []
    for row in db.scan(source_table):
        z = bias
        for col, idx in zip(indep_cols, indep_idx):
            z += coefs[col] * row[idx]
        out.append(_sigmoid(z))
    return out


def logregr_f1(db: Database, source_table: str, coef_table: str,
               dep_col: str, indep_cols: list[str],
               engine: str | None = None) -> float:
    """F1 of the trained model over the source relation (one more scan)."""
    probs = logregr_predict(db, source_table, coef_table, indep_cols,
                            engine=engine)
    table = db.table(source_table)
    if _resolve_engine(engine) == "columnar":
        pred = np.asarray(probs) > 0.5
        truth = np.asarray(table.column(dep_col), dtype=np.float64) > 0
        tp = int(np.sum(pred & truth))
        fp = int(np.sum(pred & ~truth))
        fn = int(np.sum(~pred & truth))
    else:
        dep_idx = table.col_index(dep_col)
        tp = fp = fn = 0
        for prob, row in zip(probs, table.rows):
            pred_i = prob > 0.5
            truth_i = row[dep_idx] > 0
            if pred_i and truth_i:
                tp += 1
            elif pred_i:
                fp += 1
            elif truth_i:
                fn += 1
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom else 0.0
