"""MADLib-style training UDAs: logistic regression inside the database.

``logregr_train`` mimics MADLib's iterated gradient-descent UDA: every
optimization pass is a full scan of the source relation with per-row state
stepping, and the fitted coefficients land in an output table.  This is the
cost profile Section 5.1.1 measures ("a full scan of the behavior tables and
a full execution of the UDF for every hypothesis").
"""

from __future__ import annotations

import math

from repro.db.engine import Database


def _sigmoid(z: float) -> float:
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    e = math.exp(z)
    return e / (1.0 + e)


def logregr_train(db: Database, source_table: str, out_table: str,
                  dep_col: str, indep_cols: list[str],
                  max_iter: int = 8, lr: float = 0.1,
                  l2: float = 1e-3) -> list[float]:
    """Train binary logistic regression with full-scan gradient passes.

    Returns the coefficient vector (bias last) and materializes it into
    ``out_table`` with schema (coef_name, value).
    """
    table = db.table(source_table)
    dep_idx = table.col_index(dep_col)
    indep_idx = [table.col_index(c) for c in indep_cols]
    d = len(indep_cols)
    weights = [0.0] * (d + 1)  # bias last

    n_rows = len(table)
    if n_rows == 0:
        raise ValueError(f"{source_table} is empty")

    for _ in range(max_iter):
        grad = [0.0] * (d + 1)
        for row in db.scan(source_table):  # one full scan per pass
            z = weights[d]
            for k, idx in enumerate(indep_idx):
                z += weights[k] * row[idx]
            err = _sigmoid(z) - (1.0 if row[dep_idx] > 0 else 0.0)
            for k, idx in enumerate(indep_idx):
                grad[k] += err * row[idx]
            grad[d] += err
        for k in range(d):
            weights[k] -= lr * (grad[k] / n_rows + l2 * weights[k])
        weights[d] -= lr * grad[d] / n_rows

    rows = [(name, w) for name, w in zip(indep_cols + ["__bias__"], weights)]
    db.create_table(out_table, ["coef_name", "value"], rows, replace=True)
    return weights


def logregr_predict(db: Database, source_table: str, coef_table: str,
                    indep_cols: list[str]) -> list[float]:
    """Predicted probabilities, one full scan."""
    coefs = {name: val for name, val in db.table(coef_table).rows}
    table = db.table(source_table)
    indep_idx = [table.col_index(c) for c in indep_cols]
    bias = coefs["__bias__"]
    out = []
    for row in db.scan(source_table):
        z = bias
        for col, idx in zip(indep_cols, indep_idx):
            z += coefs[col] * row[idx]
        out.append(_sigmoid(z))
    return out


def logregr_f1(db: Database, source_table: str, coef_table: str,
               dep_col: str, indep_cols: list[str]) -> float:
    """F1 of the trained model over the source relation (one more scan)."""
    probs = logregr_predict(db, source_table, coef_table, indep_cols)
    table = db.table(source_table)
    dep_idx = table.col_index(dep_col)
    tp = fp = fn = 0
    for prob, row in zip(probs, table.rows):
        pred = prob > 0.5
        truth = row[dep_idx] > 0
        if pred and truth:
            tp += 1
        elif pred:
            fp += 1
        elif truth:
            fn += 1
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom else 0.0
