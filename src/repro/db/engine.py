"""Tables and catalog for the mini relational engine.

Rows are stored as Python tuples and scanned one at a time -- deliberately:
the DB baseline's cost profile (Section 5.1.1) comes from row-at-a-time
aggregation over large behavior relations, and this engine reproduces it.

PostgreSQL limits the number of columns/expressions per relation and target
list (1,600 by default); :data:`MAX_EXPRESSIONS` enforces the same limit so
the MADLib baseline must batch its correlation queries exactly as the paper
describes.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

#: PostgreSQL's default limit on columns / target-list entries.
MAX_EXPRESSIONS = 1600


class Table:
    """A named relation: column names + list of row tuples."""

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[Sequence[Any]] | None = None):
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {name!r}")
        if len(columns) > MAX_EXPRESSIONS:
            raise ValueError(
                f"table {name!r} exceeds the {MAX_EXPRESSIONS}-column limit")
        self.name = name
        self.columns = list(columns)
        self._index = {c: i for i, c in enumerate(self.columns)}
        self.rows: list[tuple] = [tuple(r) for r in rows] if rows else []

    # ------------------------------------------------------------------
    def col_index(self, column: str) -> int:
        try:
            return self._index[column]
        except KeyError:
            raise KeyError(
                f"no column {column!r} in table {self.name!r} "
                f"(has {self.columns})") from None

    def insert(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row arity {len(row)} != table arity {len(self.columns)}")
        self.rows.append(tuple(row))

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    def scan(self) -> Iterable[tuple]:
        """Full sequential scan (the only access path -- no indexes)."""
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self.columns)} cols, {len(self)} rows)"


class Database:
    """A catalog of tables plus simple scan statistics."""

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}
        self.full_scans = 0  # instrumentation for the benchmarks

    def create_table(self, name: str, columns: Sequence[str],
                     rows: Iterable[Sequence[Any]] | None = None,
                     replace: bool = False) -> Table:
        if name in self.tables and not replace:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, columns, rows)
        self.tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        self.tables.pop(name, None)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    def scan(self, name: str) -> Iterable[tuple]:
        self.full_scans += 1
        return self.table(name).scan()
