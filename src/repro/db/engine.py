"""Tables and catalog for the mini relational engine.

Tables are stored **columnar**: each column is one numpy array (float64 /
int64 for numeric columns, ``object`` for everything else).  The columnar
executor consumes these arrays directly; the retained row engine (and the
MADLib UDAs that deliberately model row-at-a-time cost, Section 5.1.1) go
through the materialized :attr:`Table.rows` tuple view, which is rebuilt
lazily from the column arrays.

Inserts land in a small row buffer that is flushed into the column arrays
the next time a columnar (or row) view is requested, so single-row
``insert`` stays cheap while bulk loads pay one transpose.

A :class:`Database` opened with ``path=`` is **persistent**: tables are
mirrored into a paged, B-tree-indexed :class:`~repro.db.storage.TableStorage`
next to the behavior store.  Mutations stage in memory and
:meth:`Database.commit` publishes them atomically (shadow-paged pages, one
manifest rename); reopening the path restores the catalog, with column
arrays loaded lazily on first access.  Hot columns get automatic B-tree
indexes that the executor's planner step routes sargable WHERE conjuncts
and ORDER BY+LIMIT through (see :mod:`repro.db.planner`).  Tables whose
values cannot be serialized degrade to memory-only instead of failing.

PostgreSQL limits the number of columns/expressions per relation and target
list (1,600 by default); :data:`MAX_EXPRESSIONS` enforces the same limit so
the MADLib baseline must batch its correlation queries exactly as the paper
describes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import Any

import numpy as np

#: PostgreSQL's default limit on columns / target-list entries.
MAX_EXPRESSIONS = 1600


def _as_column(values: list) -> np.ndarray:
    """Build a column array, preserving exact values for non-float data."""
    numeric = True
    has_float = False
    for v in values:
        if isinstance(v, bool):
            numeric = False
            break
        if isinstance(v, (float, np.floating)):
            has_float = True
        elif not isinstance(v, (int, np.integer)):
            numeric = False
            break
    if numeric:
        if has_float:
            return np.asarray(values, dtype=np.float64)
        return np.asarray(values, dtype=np.int64)
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    return arr


def _append_column(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    if old.shape[0] == 0:
        return new
    if new.shape[0] == 0:
        return old
    if old.dtype == object or new.dtype == object:
        out = np.empty(old.shape[0] + new.shape[0], dtype=object)
        out[:old.shape[0]] = old
        out[old.shape[0]:] = new
        return out
    return np.concatenate([old, new])


class Table:
    """A named relation: column names + numpy column arrays."""

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[Sequence[Any]] | None = None, *,
                 loader: Callable[[], list[np.ndarray]] | None = None,
                 n_rows: int = 0):
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {name!r}")
        if len(columns) > MAX_EXPRESSIONS:
            raise ValueError(
                f"table {name!r} exceeds the {MAX_EXPRESSIONS}-column limit")
        self.name = name
        self.columns = list(columns)
        self._index = {c: i for i, c in enumerate(self.columns)}
        self._cols: list[np.ndarray] = [
            np.empty(0, dtype=np.float64) for _ in self.columns]
        self._n_stored = 0
        self._buffer: list[tuple] = []
        self._rows_cache: list[tuple] | None = None
        # lazily-loaded persistent tables know their row count up front but
        # defer decoding the column arrays until something touches them
        self._loader = loader
        if loader is not None:
            self._n_stored = int(n_rows)
        if rows:
            self._buffer = [tuple(r) for r in rows]
            for i, row in enumerate(self._buffer):
                if len(row) != len(self.columns):
                    raise ValueError(
                        f"row {i} arity {len(row)} != table arity "
                        f"{len(self.columns)}")
            self._flush()

    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, name: str,
                     columns: dict[str, np.ndarray]) -> "Table":
        """Build a table directly from column arrays (no row transpose).

        The INSPECT frontend materializes its temporary score relation this
        way: arrays produced by the inspection plan become a first-class
        relation the columnar executor can filter, project and sort without
        ever constructing row tuples.
        """
        table = cls(name, list(columns))
        arrays = [np.asarray(a) for a in columns.values()]
        lengths = {a.shape[0] for a in arrays}
        if len(lengths) > 1:
            raise ValueError(f"column lengths differ in {name!r}: {lengths}")
        table._cols = arrays
        table._n_stored = arrays[0].shape[0] if arrays else 0
        return table

    # ------------------------------------------------------------------
    def _ensure_loaded(self) -> None:
        if self._loader is not None:
            # clear the loader only on success: a failed load (e.g. a
            # corrupt page) must leave the table lazy, not silently empty
            self._cols = self._loader()
            self._loader = None

    @property
    def is_loaded(self) -> bool:
        """False while a persistent table's arrays are still on disk."""
        return self._loader is None

    def _flush(self) -> None:
        """Fold buffered rows into the column arrays."""
        self._ensure_loaded()
        if not self._buffer:
            return
        transposed = list(zip(*self._buffer)) or [
            () for _ in self.columns]
        self._cols = [_append_column(old, _as_column(list(vals)))
                      for old, vals in zip(self._cols, transposed)]
        self._n_stored += len(self._buffer)
        self._buffer = []

    def col_index(self, column: str) -> int:
        try:
            return self._index[column]
        except KeyError:
            raise KeyError(
                f"no column {column!r} in table {self.name!r} "
                f"(has {self.columns})") from None

    def column(self, name: str) -> np.ndarray:
        """The numpy array backing one column (the columnar access path)."""
        self._flush()
        return self._cols[self.col_index(name)]

    def column_arrays(self) -> list[np.ndarray]:
        """All column arrays, in schema order."""
        self._flush()
        return list(self._cols)

    @property
    def rows(self) -> list[tuple]:
        """Row-tuple view, rebuilt lazily from the column arrays."""
        if self._rows_cache is None:
            self._flush()
            self._rows_cache = list(
                zip(*(c.tolist() for c in self._cols))) if self._n_stored \
                else []
        return self._rows_cache

    def insert(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row arity {len(row)} != table arity {len(self.columns)}")
        self._buffer.append(tuple(row))
        self._rows_cache = None

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    def scan(self) -> Iterable[tuple]:
        """Full sequential row scan (no indexes)."""
        return iter(self.rows)

    def __len__(self) -> int:
        return self._n_stored + len(self._buffer)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self.columns)} cols, {len(self)} rows)"


class Database:
    """A catalog of tables plus simple scan statistics.

    With ``path=`` the catalog is backed by a paged on-disk
    :class:`~repro.db.storage.TableStorage`: mutations (creates, drops,
    inserts) stage in memory and :meth:`commit` publishes them atomically;
    reopening the same path restores every committed table.  The planner
    consults :meth:`index_for` to route queries through the automatic
    B-tree indexes — only tables whose in-memory state matches the last
    commit are served from an index, so uncommitted rows can never be
    silently missing from a result.
    """

    def __init__(self, path: str | None = None, *,
                 page_size: int | None = None,
                 cache_bytes: int = 64 << 20,
                 auto_index: bool = True) -> None:
        self.tables: dict[str, Table] = {}
        self.full_scans = 0   # instrumentation for the benchmarks
        self.index_scans = 0  # queries answered via a B-tree range scan
        self.use_indexes = True
        self.storage = None
        self._memory_only: set[str] = set()   # unserializable tables
        self._created: set[str] = set()       # need a full rewrite
        self._dropped: set[str] = set()
        self._synced_rows: dict[str, int] = {}
        if path is not None:
            from repro.db.storage import PAGE_SIZE, TableStorage
            self.storage = TableStorage(
                path, page_size=page_size or PAGE_SIZE,
                cache_bytes=cache_bytes, auto_index=auto_index)
            for name in self.storage.table_names():
                n = self.storage.n_rows(name)
                self.tables[name] = Table(
                    name, self.storage.columns(name),
                    loader=self._loader_for(name), n_rows=n)
                self._synced_rows[name] = n

    def _loader_for(self, name: str) -> Callable[[], list[np.ndarray]]:
        def load() -> list[np.ndarray]:
            _, arrays = self.storage.load_columns(name)
            return arrays
        return load

    @property
    def path(self) -> str | None:
        return str(self.storage.pager.root) if self.storage is not None \
            else None

    def create_table(self, name: str, columns: Sequence[str],
                     rows: Iterable[Sequence[Any]] | None = None,
                     replace: bool = False) -> Table:
        if name in self.tables and not replace:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, columns, rows)
        self.tables[name] = table
        if self.storage is not None:
            self._created.add(name)
            self._dropped.discard(name)
            self._memory_only.discard(name)
            self._synced_rows.pop(name, None)
        return table

    def drop_table(self, name: str) -> None:
        self.tables.pop(name, None)
        if self.storage is not None:
            self._dropped.add(name)
            self._created.discard(name)
            self._memory_only.discard(name)
            self._synced_rows.pop(name, None)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    # -- persistence -----------------------------------------------------
    def commit(self) -> None:
        """Publish every staged table mutation atomically.

        A no-op for in-memory databases.  Tables whose values cannot be
        serialized degrade to memory-only rather than failing the commit.
        """
        if self.storage is None:
            return
        from repro.db.storage import UnsupportedColumnError, derive_kinds
        for name in self._dropped:
            if name in self.storage:
                self.storage.drop(name)
        self._dropped.clear()
        for name, table in self.tables.items():
            if name in self._memory_only:
                continue
            if table._loader is not None and not table._buffer:
                continue  # never touched since load: already synced
            arrays = table.column_arrays()
            n = len(table)
            synced = self._synced_rows.get(name)
            rewrite = (
                name in self._created or synced is None
                or n < synced
                or self.storage.columns(name) != table.columns
                or self.storage.kinds(name) != derive_kinds(arrays))
            try:
                if rewrite:
                    self.storage.create(name, table.columns, arrays,
                                        n_rows=n)
                elif n > synced:
                    self.storage.append(
                        name, [a[synced:] for a in arrays])
            except UnsupportedColumnError as exc:
                from repro.util.debuglog import degraded
                degraded("db.table-memory-only", name, exc=exc)
                if name in self.storage:
                    self.storage.drop(name)
                self._memory_only.add(name)
                self._synced_rows.pop(name, None)
                continue
            self._synced_rows[name] = n
        self._created.clear()
        self.storage.commit()

    def table_clean(self, name: str) -> bool:
        """True when a table's in-memory state matches the last commit.

        Only then may the planner answer from the on-disk indexes —
        otherwise uncommitted rows would be missing from results.
        """
        if self.storage is None or name not in self.storage:
            return False
        if name in self._created or name in self._memory_only:
            return False
        table = self.tables.get(name)
        if table is None or table._buffer:
            return False
        return len(table) == self._synced_rows.get(name, -1)

    def index_for(self, name: str, col: str):
        """``(BTree, info)`` for a usable index on ``name.col``, else None."""
        if not self.use_indexes or not self.table_clean(name):
            return None
        info = self.storage.index_info(name, col)
        if info is None:
            return None
        return self.storage.btree(name, col), info

    def close(self) -> None:
        """Commit pending changes and release the storage files."""
        if self.storage is not None:
            self.commit()
            self.storage.close()

    def scan(self, name: str) -> Iterable[tuple]:
        self.full_scans += 1
        return self.table(name).scan()

    def scan_columns(self, name: str,
                     columns: Sequence[str] | None = None) -> list[np.ndarray]:
        """One full columnar pass: counted like :meth:`scan`."""
        self.full_scans += 1
        table = self.table(name)
        names = table.columns if columns is None else columns
        return [table.column(c) for c in names]
