"""Tables and catalog for the mini relational engine.

Tables are stored **columnar**: each column is one numpy array (float64 /
int64 for numeric columns, ``object`` for everything else).  The columnar
executor consumes these arrays directly; the retained row engine (and the
MADLib UDAs that deliberately model row-at-a-time cost, Section 5.1.1) go
through the materialized :attr:`Table.rows` tuple view, which is rebuilt
lazily from the column arrays.

Inserts land in a small row buffer that is flushed into the column arrays
the next time a columnar (or row) view is requested, so single-row
``insert`` stays cheap while bulk loads pay one transpose.

PostgreSQL limits the number of columns/expressions per relation and target
list (1,600 by default); :data:`MAX_EXPRESSIONS` enforces the same limit so
the MADLib baseline must batch its correlation queries exactly as the paper
describes.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

#: PostgreSQL's default limit on columns / target-list entries.
MAX_EXPRESSIONS = 1600


def _as_column(values: list) -> np.ndarray:
    """Build a column array, preserving exact values for non-float data."""
    numeric = True
    has_float = False
    for v in values:
        if isinstance(v, bool):
            numeric = False
            break
        if isinstance(v, (float, np.floating)):
            has_float = True
        elif not isinstance(v, (int, np.integer)):
            numeric = False
            break
    if numeric:
        if has_float:
            return np.asarray(values, dtype=np.float64)
        return np.asarray(values, dtype=np.int64)
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    return arr


def _append_column(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    if old.shape[0] == 0:
        return new
    if new.shape[0] == 0:
        return old
    if old.dtype == object or new.dtype == object:
        out = np.empty(old.shape[0] + new.shape[0], dtype=object)
        out[:old.shape[0]] = old
        out[old.shape[0]:] = new
        return out
    return np.concatenate([old, new])


class Table:
    """A named relation: column names + numpy column arrays."""

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[Sequence[Any]] | None = None):
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {name!r}")
        if len(columns) > MAX_EXPRESSIONS:
            raise ValueError(
                f"table {name!r} exceeds the {MAX_EXPRESSIONS}-column limit")
        self.name = name
        self.columns = list(columns)
        self._index = {c: i for i, c in enumerate(self.columns)}
        self._cols: list[np.ndarray] = [
            np.empty(0, dtype=np.float64) for _ in self.columns]
        self._n_stored = 0
        self._buffer: list[tuple] = []
        self._rows_cache: list[tuple] | None = None
        if rows:
            self._buffer = [tuple(r) for r in rows]
            for i, row in enumerate(self._buffer):
                if len(row) != len(self.columns):
                    raise ValueError(
                        f"row {i} arity {len(row)} != table arity "
                        f"{len(self.columns)}")
            self._flush()

    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, name: str,
                     columns: dict[str, np.ndarray]) -> "Table":
        """Build a table directly from column arrays (no row transpose).

        The INSPECT frontend materializes its temporary score relation this
        way: arrays produced by the inspection plan become a first-class
        relation the columnar executor can filter, project and sort without
        ever constructing row tuples.
        """
        table = cls(name, list(columns))
        arrays = [np.asarray(a) for a in columns.values()]
        lengths = {a.shape[0] for a in arrays}
        if len(lengths) > 1:
            raise ValueError(f"column lengths differ in {name!r}: {lengths}")
        table._cols = arrays
        table._n_stored = arrays[0].shape[0] if arrays else 0
        return table

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Fold buffered rows into the column arrays."""
        if not self._buffer:
            return
        transposed = list(zip(*self._buffer)) or [
            () for _ in self.columns]
        self._cols = [_append_column(old, _as_column(list(vals)))
                      for old, vals in zip(self._cols, transposed)]
        self._n_stored += len(self._buffer)
        self._buffer = []

    def col_index(self, column: str) -> int:
        try:
            return self._index[column]
        except KeyError:
            raise KeyError(
                f"no column {column!r} in table {self.name!r} "
                f"(has {self.columns})") from None

    def column(self, name: str) -> np.ndarray:
        """The numpy array backing one column (the columnar access path)."""
        self._flush()
        return self._cols[self.col_index(name)]

    def column_arrays(self) -> list[np.ndarray]:
        """All column arrays, in schema order."""
        self._flush()
        return list(self._cols)

    @property
    def rows(self) -> list[tuple]:
        """Row-tuple view, rebuilt lazily from the column arrays."""
        if self._rows_cache is None:
            self._flush()
            self._rows_cache = list(
                zip(*(c.tolist() for c in self._cols))) if self._n_stored \
                else []
        return self._rows_cache

    def insert(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row arity {len(row)} != table arity {len(self.columns)}")
        self._buffer.append(tuple(row))
        self._rows_cache = None

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    def scan(self) -> Iterable[tuple]:
        """Full sequential row scan (no indexes)."""
        return iter(self.rows)

    def __len__(self) -> int:
        return self._n_stored + len(self._buffer)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self.columns)} cols, {len(self)} rows)"


class Database:
    """A catalog of tables plus simple scan statistics."""

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}
        self.full_scans = 0  # instrumentation for the benchmarks

    def create_table(self, name: str, columns: Sequence[str],
                     rows: Iterable[Sequence[Any]] | None = None,
                     replace: bool = False) -> Table:
        if name in self.tables and not replace:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, columns, rows)
        self.tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        self.tables.pop(name, None)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    def scan(self, name: str) -> Iterable[tuple]:
        self.full_scans += 1
        return self.table(name).scan()

    def scan_columns(self, name: str,
                     columns: Sequence[str] | None = None) -> list[np.ndarray]:
        """One full columnar pass: counted like :meth:`scan`."""
        self.full_scans += 1
        table = self.table(name)
        names = table.columns if columns is None else columns
        return [table.column(c) for c in names]
