"""A miniature relational engine (PostgreSQL/MADLib substitute).

Implements just enough of an RDBMS to host the paper's DB-oriented DNI
baseline (Section 5.1.1) and the ``INSPECT`` SQL extension (Appendix B):
columnar tables (numpy column arrays), expression evaluation, filters, hash
joins, hash group-by with aggregates (including ``corr``), an
expression-count limit per SELECT clause (PostgreSQL's 1,600 default, which
forces the baseline to batch), and MADLib-style training UDAs that perform
one full table pass per optimization step.

``execute_select`` runs on one of two engines: the vectorized ``columnar``
default, or the original row-at-a-time Volcano interpreter
(``engine="row"``), retained for differential testing and for reproducing
the paper's baseline cost profile.
"""

from repro.db.aggregates import AGGREGATES
from repro.db.engine import Database, Table
from repro.db.executor import (DEFAULT_ENGINE, ENGINES, SelectQuery,
                               execute_select)
from repro.db.expr import AmbiguousColumnError
from repro.db.inspect_clause import (InspectQuery, run_inspect_spec,
                                     run_inspect_sql)
from repro.db.madlib import logregr_predict, logregr_train
from repro.db.planner import plan_scan
from repro.db.sqlparser import parse_sql
from repro.db.storage import TableStorage

__all__ = [
    "AGGREGATES",
    "AmbiguousColumnError",
    "DEFAULT_ENGINE",
    "ENGINES",
    "Database",
    "InspectQuery",
    "SelectQuery",
    "Table",
    "TableStorage",
    "execute_select",
    "plan_scan",
    "logregr_predict",
    "logregr_train",
    "parse_sql",
    "run_inspect_spec",
    "run_inspect_sql",
]
