"""Execution of the INSPECT SQL extension (Appendix B).

Models, hidden units and hypotheses are modeled as catalog relations::

    models(mid, epoch, ...)          -- one row per trained model snapshot
    units(mid, uid, layer, ...)      -- one row per hidden unit
    hypotheses(h, name, ...)         -- one row per hypothesis function
    inputs(did, seq)                 -- one row per dataset

A query like the paper's::

    SELECT M.epoch, S.uid
    INSPECT U.uid AND H.h USING corr OVER D.seq AS S
    FROM models M, units U, hypotheses H, inputs D
    WHERE M.mid = U.mid AND U.layer = 0 AND H.name = 'keywords'
    GROUP BY M.epoch
    HAVING S.unit_score > 0.8
    ORDER BY S.unit_score DESC LIMIT 20

compiles through three planning stages, each executed by the columnar
engine rather than interpreted row-at-a-time:

1. **Catalog plan** -- every column reference is resolved against the FROM
   schema (ambiguous unqualified names raise
   :class:`~repro.db.expr.AmbiguousColumnError`), the WHERE conjunction is
   split into per-table predicates (pushed into the scans), equi-join edges
   (executed as vectorized hash joins) and residual predicates; unjoined
   relations fall back to a columnar cross product.
2. **Shared inspection plan** -- GROUP BY keys are factorized over the
   joined relation, the per-group (model, unit-set, hypothesis) workloads
   are deduplicated across groups, and ONE plan-engine run
   (:func:`repro.core.pipeline.run_inspection`) scores everything, wired to
   the session's :class:`~repro.core.cache.HypothesisCache` /
   :class:`~repro.core.cache.UnitBehaviorCache` and scheduler.  The
   scheduler is resolved once per statement and shared across the
   per-dataset runs a GROUP BY sweep fans into — a session-owned pool
   (thread or process) is reused as-is, so an INSPECT statement on a
   process-scheduler session exchanges shards through the same worker
   pool and store as the Python builder, and its frames stay
   bit-identical to serial execution.  A ``GROUP BY M.epoch`` sweep
   therefore extracts each model's behavior once, and the hypothesis
   behaviors once in total.
3. **Columnar S relation** -- scores are materialized as a temporary
   columnar table ``S(uid, hid, mid, score_id, group_score, unit_score)``
   joined with the surviving catalog columns, and HAVING, the SELECT
   projection, ORDER BY and LIMIT run through
   :func:`repro.db.executor.execute_select`.
"""

from __future__ import annotations

import contextlib
import dataclasses
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.cache import HypothesisCache, UnitBehaviorCache
from repro.core.groups import UnitGroup
from repro.core.pipeline import (InspectConfig, InspectionPlan, Scheduler,
                                 _resolve_scheduler, run_inspection)
from repro.data.datasets import Dataset
from repro.db.engine import Database, Table
from repro.db.executor import (SelectItem, SelectQuery, _broadcast,
                               equi_match, execute_select, gather, group_ids)
from repro.db.expr import (AggregateRef, AmbiguousColumnError, Arith, BoolOp,
                           Column, Compare, Expr)
from repro.db.sqlparser import InspectSpec, parse_sql
from repro.extract.base import Extractor
from repro.hypotheses.base import HypothesisFunction
from repro.measures.registry import get_measure
from repro.store import DiskBehaviorStore
from repro.util.frame import Frame

#: schema of the temporary score relation produced by the INSPECT clause
S_COLUMNS = ("uid", "hid", "mid", "score_id", "group_score", "unit_score")

_TMP_TABLE = "__inspect_s__"


@dataclass
class InspectQuery:
    """Binding context: catalog database + live Python objects.

    Since PR 5 this is a thin shim over :class:`repro.session.Session` —
    the context creates one session that owns the resource lifecycle
    (shared caches, an optional persistent store, one scheduler pool), and
    mirrors the session's resources onto its public fields.  Unless the
    supplied :class:`InspectConfig` pins them, queries share a
    hypothesis-behavior cache, a unit-behavior cache and a thread-pool
    scheduler across calls, so a repeated or refined query only pays for
    what changed.  Point ``store_path`` (or ``store``) at a directory and
    the session caches become memory tiers over a persistent
    :class:`~repro.store.DiskBehaviorStore`: a new process opening a
    context on the same path serves previously-inspected queries without
    re-running any model.
    """

    db: Database
    models: dict[str, Any]                       # mid -> model object
    hypotheses: dict[str, HypothesisFunction]    # h -> hypothesis object
    datasets: dict[str, Dataset]                 # did -> dataset object
    extractor: Extractor
    config: InspectConfig = field(default_factory=InspectConfig)
    hyp_cache: HypothesisCache | None = None
    unit_cache: UnitBehaviorCache | None = None
    scheduler: Scheduler | str | None = None
    store: DiskBehaviorStore | None = None
    store_path: str | None = None
    session_defaults: bool = True   # False: run with config exactly as given

    def __post_init__(self) -> None:
        from repro.session import Session  # session builds on this module
        self._session = Session(
            db=self.db, models=self.models, hypotheses=self.hypotheses,
            datasets=self.datasets, extractor=self.extractor,
            config=self.config, hyp_cache=self.hyp_cache,
            unit_cache=self.unit_cache, scheduler=self.scheduler,
            store=self.store, store_path=self.store_path,
            session_defaults=self.session_defaults)
        # the registries are shared by reference; mirror the resources the
        # session resolved/created so the public fields stay live
        self.store = self._session.store
        self.hyp_cache = self._session.hyp_cache
        self.unit_cache = self._session.unit_cache
        self.scheduler = self._session.scheduler

    @property
    def session(self):
        """The owning :class:`repro.session.Session`."""
        return self._session

    def effective_config(self) -> InspectConfig:
        """The per-run config with session defaults filled in."""
        return self._session.effective_config()

    def close(self) -> None:
        """Flush the session store and release the scheduler's pool."""
        self._session.close()

    def __enter__(self) -> "InspectQuery":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def register_model(self, mid: str, model, **attrs) -> None:
        # seed-exact behavior: a models catalog row only (no implicit
        # units rows), and *any* attr name is a column — including names
        # Session.register_model reserves as keywords (units, layer, ...)
        self.models[mid] = model
        table = self.db.tables.get("models")
        if table is None:
            table = self.db.create_table(
                "models", ["mid"] + sorted(attrs))
        table.insert([mid] + [attrs[c] for c in table.columns[1:]])


# ----------------------------------------------------------------------
# stage 1a: name resolution
# ----------------------------------------------------------------------
class Schema:
    """Column namespace over a set of relations (alias -> column names)."""

    def __init__(self) -> None:
        self.qualified: set[str] = set()
        self.owners: dict[str, list[str]] = {}  # unqualified name -> aliases

    def add(self, alias: str, columns: list[str]) -> None:
        for col in columns:
            self.qualified.add(f"{alias}.{col}")
            owners = self.owners.setdefault(col, [])
            if alias not in owners:
                owners.append(alias)

    def copy(self) -> "Schema":
        out = Schema()
        out.qualified = set(self.qualified)
        out.owners = {name: list(aliases)
                      for name, aliases in self.owners.items()}
        return out

    def resolve(self, name: str) -> str:
        """Qualified form of a reference; ambiguity is an error."""
        if "." in name:
            if name not in self.qualified:
                raise KeyError(f"unbound column {name!r}")
            return name
        owners = self.owners.get(name)
        if not owners:
            raise KeyError(f"unbound column {name!r}")
        if len(owners) > 1:
            raise AmbiguousColumnError(
                f"column reference {name!r} is ambiguous: it appears in "
                f"{sorted(owners)}; qualify it, e.g. {owners[0]}.{name}")
        return f"{owners[0]}.{name}"


def resolve_expr(expr: Expr, schema: Schema) -> Expr:
    """Rewrite an expression so every column reference is qualified."""
    if isinstance(expr, Column):
        return Column(schema.resolve(expr.name))
    if isinstance(expr, Compare):
        return Compare(expr.op, resolve_expr(expr.left, schema),
                       resolve_expr(expr.right, schema))
    if isinstance(expr, Arith):
        return Arith(expr.op, resolve_expr(expr.left, schema),
                     resolve_expr(expr.right, schema))
    if isinstance(expr, BoolOp):
        return BoolOp(expr.op, [resolve_expr(o, schema)
                                for o in expr.operands])
    if isinstance(expr, AggregateRef):
        raise ValueError(
            "aggregate functions are not supported in INSPECT queries; "
            "aggregate over the returned frame instead")
    return expr


def _catalog_schema(db: Database, tables: list[tuple[str, str]]) -> Schema:
    schema = Schema()
    seen: set[str] = set()
    for name, alias in tables:
        if alias in seen:
            raise ValueError(f"duplicate table alias {alias!r} in FROM")
        seen.add(alias)
        schema.add(alias, db.table(name).columns)
    return schema


# ----------------------------------------------------------------------
# stage 1b: catalog access plan
# ----------------------------------------------------------------------
@dataclass
class CatalogPlan:
    """Access plan for the FROM/WHERE part of an INSPECT statement."""

    tables: list[tuple[str, str]]
    pushed: dict[str, list[Expr]]       # alias -> scan predicates
    edges: list[tuple[str, str]]        # equi-join (qualified, qualified)
    residual: list[Expr]                # applied after all joins

    def describe(self) -> str:
        lines = ["CatalogPlan("]
        for name, alias in self.tables:
            preds = " AND ".join(map(str, self.pushed.get(alias, []))) \
                or "true"
            lines.append(f"  scan {name} {alias} [{preds}]")
        for left, right in self.edges:
            lines.append(f"  join {left} = {right}")
        for pred in self.residual:
            lines.append(f"  filter {pred}")
        return "\n".join(lines + [")"])


def _flatten_and(pred: Expr) -> list[Expr]:
    if isinstance(pred, BoolOp) and pred.op == "and":
        out: list[Expr] = []
        for operand in pred.operands:
            out += _flatten_and(operand)
        return out
    return [pred]


def plan_catalog(tables: list[tuple[str, str]],
                 where: Expr | None) -> CatalogPlan:
    """Classify the (resolved) WHERE conjunction for pushdown and joins."""
    pushed: dict[str, list[Expr]] = {}
    edges: list[tuple[str, str]] = []
    residual: list[Expr] = []
    for conj in (_flatten_and(where) if where is not None else []):
        aliases = {c.split(".")[0] for c in conj.columns()}
        if len(aliases) == 1:
            pushed.setdefault(aliases.pop(), []).append(conj)
        elif (len(aliases) == 2 and isinstance(conj, Compare)
              and conj.op == "=" and isinstance(conj.left, Column)
              and isinstance(conj.right, Column)):
            edges.append((conj.left.name, conj.right.name))
        else:
            residual.append(conj)
    return CatalogPlan(tables=tables, pushed=pushed, edges=edges,
                       residual=residual)


def _and_mask(preds: list[Expr], cols: dict[str, np.ndarray],
              n: int) -> np.ndarray:
    mask = np.ones(n, dtype=bool)
    for pred in preds:
        m = np.asarray(pred.eval_batch(cols))
        if m.ndim == 0:
            m = np.full(n, bool(m))
        mask &= m.astype(bool)
    return mask


def _edge_endpoints(edge: tuple[str, str], left: dict[str, np.ndarray],
                    right: dict[str, np.ndarray]) -> tuple[str, str] | None:
    a, b = edge
    if a in left and b in right:
        return a, b
    if b in left and a in right:
        return b, a
    return None


def execute_catalog_plan(
        db: Database, plan: CatalogPlan) -> tuple[dict[str, np.ndarray], int]:
    """Run the access plan on the columnar engine.

    Returns the joined catalog relation as qualified-name column arrays.
    Scans push their predicates before any join; connected relations are
    folded with vectorized equi-joins (left-major order, so row order
    follows the FROM list); relations with no join edge are appended as a
    columnar cross product, matching SQL's comma-join semantics.
    """
    scanned: dict[str, tuple[dict[str, np.ndarray], int]] = {}
    for name, alias in plan.tables:
        table = db.table(name)
        db.full_scans += 1
        cols = {f"{alias}.{c}": arr
                for c, arr in zip(table.columns, table.column_arrays())}
        n = len(table)
        preds = plan.pushed.get(alias, [])
        if preds:
            mask = _and_mask(preds, cols, n)
            cols = gather(cols, mask)
            n = int(mask.sum())
        scanned[alias] = (cols, n)

    remaining = [alias for _, alias in plan.tables]
    cols, n = scanned[remaining.pop(0)]
    edges = list(plan.edges)
    while remaining:
        pick = next(
            (alias for alias in remaining
             if any(_edge_endpoints(e, cols, scanned[alias][0])
                    for e in edges)), remaining[0])
        remaining.remove(pick)
        rcols, rn = scanned[pick]
        here = [(e, _edge_endpoints(e, cols, rcols)) for e in edges]
        here = [(e, ends) for e, ends in here if ends is not None]
        if here:
            consumed = {e for e, _ in here}
            edges = [e for e in edges if e not in consumed]
            lq, rq = here[0][1]
            li, ri = equi_match(cols[lq], rcols[rq])
            cols = gather(cols, li)
            cols.update(gather(rcols, ri))
            n = int(li.shape[0])
            for _, (a, b) in here[1:]:  # extra edges: equality filters
                mask = np.asarray(cols[a] == cols[b]).astype(bool)
                cols = gather(cols, mask)
                n = int(mask.sum())
        else:  # no join edge: columnar cross product
            cols = gather(cols, np.repeat(np.arange(n), rn))
            cols.update(gather(rcols, np.tile(np.arange(rn), n)))
            n = n * rn
    if plan.residual:
        mask = _and_mask(plan.residual, cols, n)
        cols = gather(cols, mask)
        n = int(mask.sum())
    return cols, n


# ----------------------------------------------------------------------
# stage 2: the shared inspection plan
# ----------------------------------------------------------------------
def _first_seen(values: np.ndarray) -> list:
    """Distinct values in first-occurrence order."""
    uniq, first = np.unique(values, return_index=True)
    return uniq[np.argsort(first, kind="stable")].tolist()


@dataclass
class _GroupWorkload:
    """Distinct work one GROUP BY group asks for."""

    hyp_names: list[str]
    # per model (first-seen order): (mid, sorted unit ids, representative
    # catalog row grid).  The grid is hypothesis-major over the unit ids
    # (entry j * n_units + i describes hypothesis j x unit i, matching the
    # S relation's row order): a (unit, hypothesis) pair present in the
    # catalog points at its own first row, so hypothesis-table columns
    # agree with the row's S.hid; pairs the cross product adds fall back
    # to the unit's first row.
    models: list[tuple[str, np.ndarray, np.ndarray]]
    did: str = ""   # dataset this group targets (filled after collection)


def _collect_workloads(gids: np.ndarray, n_groups: int, mid_arr: np.ndarray,
                       uid_arr: np.ndarray,
                       hyp_arr: np.ndarray) -> list[_GroupWorkload]:
    workloads: list[_GroupWorkload] = []
    for g in range(n_groups):
        rows_g = np.flatnonzero(gids == g)
        hyp_names = [str(h) for h in _first_seen(hyp_arr[rows_g])]
        hyp_code = {h: j for j, h in enumerate(hyp_names)}
        models: list[tuple[str, np.ndarray, np.ndarray]] = []
        for mid in _first_seen(mid_arr[rows_g]):
            rows_m = rows_g[mid_arr[rows_g] == mid]
            m_uids = uid_arr[rows_m].astype(np.int64)
            uids, first = np.unique(m_uids, return_index=True)
            nu = uids.shape[0]
            rep_grid = np.tile(rows_m[first], len(hyp_names))
            hcodes = np.fromiter(
                (hyp_code[h] for h in hyp_arr[rows_m].tolist()),
                dtype=np.int64, count=rows_m.shape[0])
            pair = hcodes * nu + np.searchsorted(uids, m_uids)
            present, pfirst = np.unique(pair, return_index=True)
            rep_grid[present] = rows_m[pfirst]
            models.append((str(mid), uids, rep_grid))
        workloads.append(_GroupWorkload(hyp_names=hyp_names, models=models))
    return workloads


def _model_column(spec: InspectSpec, schema: Schema) -> str:
    """The column naming each unit row's model: the unit table's ``mid``."""
    if "." in spec.unit_ref:
        qualified = f"{spec.unit_ref.split('.')[0]}.mid"
        if qualified in schema.qualified:
            return qualified
    return schema.resolve("mid")


def _group_datasets(context: InspectQuery, spec: InspectSpec,
                    schema: Schema, cols: dict[str, np.ndarray],
                    gids: np.ndarray, n_groups: int) -> list[str]:
    """The dataset id each GROUP BY group targets.

    Every group must resolve to exactly one dataset, but different groups
    may target different datasets (``GROUP BY D.did`` sweeps): the shared
    plan is partitioned per dataset downstream.
    """
    did_col: np.ndarray | None = None
    if "." in spec.dataset_ref:
        qualified = f"{spec.dataset_ref.split('.')[0]}.did"
        if qualified in schema.qualified:
            did_col = cols[qualified]
    if did_col is None and "did" in schema.owners:
        did_col = cols[schema.resolve("did")]  # ambiguity raises here
    if did_col is None:
        if len(context.datasets) != 1:
            raise ValueError(
                "cannot determine the INSPECT dataset: no catalog relation "
                "exposes a 'did' column and the context registers "
                f"{len(context.datasets)} datasets")
        return [next(iter(context.datasets))] * n_groups
    dids: list[str] = []
    for g in range(n_groups):
        group_dids = set(np.unique(did_col[gids == g]).tolist())
        if len(group_dids) != 1:
            raise ValueError("INSPECT must target one dataset per group, "
                             f"got {sorted(group_dids)}")
        dids.append(group_dids.pop())
    return dids


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def run_inspect_sql(context, sql: str) -> Frame:
    """Parse and execute a SQL statement with an INSPECT clause.

    ``context`` is anything exposing the binding surface — ``db``,
    ``models``, ``hypotheses``, ``datasets``, ``extractor`` and
    ``effective_config()`` — i.e. an :class:`InspectQuery` or a
    :class:`repro.session.Session`.
    """
    spec = parse_sql(sql)
    if not isinstance(spec, InspectSpec):
        raise ValueError("query has no INSPECT clause; use execute_select")
    return run_inspect_spec(context, spec)


@dataclass
class _CompiledInspect:
    """An INSPECT statement compiled up to (but excluding) execution.

    Everything the catalog stages decide — name resolution, the joined
    catalog relation, the deduplicated per-dataset run list — happens
    once in :func:`_compile_inspect`; the one-shot
    (:func:`run_inspect_spec`) and progressive
    (:func:`stream_inspect_spec`) executors then differ only in *when*
    they call :meth:`assemble` on outcome snapshots, so their final
    frames are bit-identical by construction.
    """

    context: Any
    spec: InspectSpec
    out_columns: list[str]
    select_items: list[SelectItem] = field(default_factory=list)
    having: Expr | None = None
    out_schema: Schema | None = None
    catalog_keep: dict[str, np.ndarray] = field(default_factory=dict)
    workloads: list[_GroupWorkload] = field(default_factory=list)
    runs: dict[str, list[UnitGroup]] = field(default_factory=dict)
    plan_index: dict[tuple[str, str, bytes], int] = field(
        default_factory=dict)
    hyp_col_of: dict[str, int] = field(default_factory=dict)
    measures: list = field(default_factory=list)
    hyp_objs: list[HypothesisFunction] = field(default_factory=list)
    empty: bool = False   # catalog plan produced zero rows

    def dataset(self, did: str) -> Dataset:
        try:
            return self.context.datasets[did]
        except KeyError:
            raise KeyError(f"dataset {did!r} is not registered with the "
                           "InspectQuery context") from None

    def empty_frame(self) -> Frame:
        return Frame.from_records([], columns=self.out_columns)

    def assemble(self, outcomes_by_did: dict[str, list]) -> Frame:
        """Materialize S from outcome snapshots and finish columnar."""
        s_cols = _materialize_s(self.catalog_keep, self.workloads,
                                outcomes_by_did, self.plan_index,
                                self.hyp_col_of, len(self.measures),
                                self.spec.inspect_alias)
        return _finish_columnar(self.context.db, s_cols, self.select_items,
                                self.having, self.spec, self.out_schema,
                                self.out_columns)

    def persist(self, frame: Frame) -> Frame:
        return _persist_into(self.context.db, self.spec, frame)


def run_inspect_spec(context, spec: InspectSpec) -> Frame:
    compiled = _compile_inspect(context, spec)
    if compiled.empty:
        return compiled.persist(compiled.empty_frame())

    # resolve the scheduler once for the whole statement (a GROUP BY D.did
    # sweep runs one plan per dataset) and release its worker pool before
    # returning when this statement created it — repeated queries must not
    # leak pools, nor rebuild one per dataset
    config = context.effective_config()
    scheduler, owned = _resolve_scheduler(config.scheduler)
    outcomes_by_did: dict[str, list] = {}
    try:
        run_config = dataclasses.replace(config, scheduler=scheduler)
        for did, groups_d in compiled.runs.items():
            outcomes_by_did[did] = run_inspection(
                groups_d, compiled.dataset(did), compiled.measures,
                compiled.hyp_objs, context.extractor, run_config)
    finally:
        if owned:
            scheduler.shutdown()
    return compiled.persist(compiled.assemble(outcomes_by_did))


def stream_inspect_spec(context, spec: InspectSpec):
    """Progressive INSPECT execution: one result frame per processed block.

    Compiles the statement exactly like :func:`run_inspect_spec`, then
    drives each per-dataset plan block by block, assembling the full
    output relation (HAVING/projection/ORDER BY/LIMIT included) from the
    current outcome snapshots after every block.  Datasets not yet
    started contribute zero-score snapshots, so every partial frame has
    the final frame's shape; the last yielded frame is bit-identical to
    :func:`run_inspect_spec`'s return for the same statement.

    Each frame carries ``records_processed`` / ``converged`` attributes
    for progress reporting.  Abandoning the generator stops the run
    cleanly — pending store scopes flush, owned scheduler pools shut
    down, sweep-gate leases release — and skips the ``INTO`` persist
    step (a cancelled query must not commit a half-scored table).
    """
    compiled = _compile_inspect(context, spec)
    if compiled.empty:
        frame = compiled.persist(compiled.empty_frame())
        frame.records_processed = 0
        frame.converged = True
        yield frame
        return

    config = context.effective_config()
    scheduler, owned = _resolve_scheduler(config.scheduler)
    try:
        run_config = dataclasses.replace(config, scheduler=scheduler)
        plans = {did: InspectionPlan.build(
                     groups_d, compiled.dataset(did), compiled.measures,
                     compiled.hyp_objs, context.extractor, run_config)
                 for did, groups_d in compiled.runs.items()}
        # zero-snapshot every dataset up front: partial frames keep the
        # full output shape while earlier datasets are still running
        outcomes_by_did = {did: plan.outcomes()
                           for did, plan in plans.items()}

        def snapshot() -> Frame:
            frame = compiled.assemble(outcomes_by_did)
            frame.records_processed = max(
                (o.records_processed
                 for outs in outcomes_by_did.values() for o in outs),
                default=0)
            frame.converged = all(
                task.done or bool(task.col_converged.all())
                for plan in plans.values() for task in plan.tasks)
            return frame

        last: Frame | None = None
        for did, plan in plans.items():
            # closing(): GeneratorExit at our yield still runs the block
            # generator's cleanup promptly (store flush, lease release)
            with contextlib.closing(plan.execute_blocks()) as steps:
                for _ in steps:
                    outcomes_by_did[did] = plan.outcomes()
                    last = snapshot()
                    yield last
        if last is None:   # zero-block run (empty dataset): still one frame
            last = snapshot()
            compiled.persist(last)
            yield last
        else:
            compiled.persist(last)
    finally:
        if owned:
            scheduler.shutdown()


def _compile_inspect(context, spec: InspectSpec) -> _CompiledInspect:
    db = context.db
    if any(alias == spec.inspect_alias for _, alias in spec.tables):
        raise ValueError(f"INSPECT alias {spec.inspect_alias!r} collides "
                         "with a FROM table alias")
    catalog_schema = _catalog_schema(db, spec.tables)

    # the post-inspection scope adds the S relation's columns
    out_schema = catalog_schema.copy()
    out_schema.add(spec.inspect_alias, list(S_COLUMNS))

    where = (resolve_expr(spec.where, catalog_schema)
             if spec.where is not None else None)
    group_by = [resolve_expr(e, catalog_schema) for e in spec.group_by]
    select_items = [SelectItem(expr=resolve_expr(item.expr, out_schema),
                               alias=item.alias)
                    for item in spec.select_items]
    having = (resolve_expr(spec.having, out_schema)
              if spec.having is not None else None)

    out_columns = [item.alias for item in select_items]
    cols, n = execute_catalog_plan(db, plan_catalog(spec.tables, where))
    if n == 0:
        return _CompiledInspect(context=context, spec=spec,
                                out_columns=out_columns, empty=True)

    # factorize GROUP BY keys over the joined relation
    if group_by:
        key_cols = [_broadcast(e.eval_batch(cols), n) for e in group_by]
        gids, n_groups = group_ids(key_cols, n)
    else:
        gids, n_groups = np.zeros(n, dtype=np.int64), 1

    mid_arr = cols[_model_column(spec, catalog_schema)]
    uid_arr = cols[catalog_schema.resolve(spec.unit_ref)]
    hyp_arr = cols[catalog_schema.resolve(spec.hyp_ref)]
    group_dids = _group_datasets(context, spec, catalog_schema, cols,
                                 gids, n_groups)
    measures = [get_measure(name) for name in spec.measures]
    workloads = _collect_workloads(gids, n_groups, mid_arr, uid_arr, hyp_arr)
    for workload, did in zip(workloads, group_dids):
        workload.did = did

    # dedupe (dataset, model, unit-set) work and union hypotheses across
    # groups: everything targeting one dataset runs as ONE plan, so shared
    # extraction happens once per (model, dataset)
    runs: dict[str, list[UnitGroup]] = {}
    plan_index: dict[tuple[str, str, bytes], int] = {}
    hyp_names: list[str] = []
    for workload in workloads:
        for name in workload.hyp_names:
            if name not in hyp_names:
                hyp_names.append(name)
        for mid, uids, _ in workload.models:
            key = (workload.did, mid, uids.tobytes())
            if key in plan_index:
                continue
            try:
                model = context.models[mid]
            except KeyError:
                raise KeyError(f"model {mid!r} is not registered with the "
                               "InspectQuery context") from None
            groups_d = runs.setdefault(workload.did, [])
            plan_index[key] = len(groups_d)
            groups_d.append(UnitGroup(model=model, unit_ids=uids,
                                      name=f"mid={mid}"))
    try:
        hyp_objs = [context.hypotheses[name] for name in hyp_names]
    except KeyError as exc:
        raise KeyError(f"hypothesis {exc.args[0]!r} is not registered with "
                       "the InspectQuery context") from None
    hyp_col_of = {name: j for j, name in enumerate(hyp_names)}

    # only catalog columns the SELECT/HAVING/ORDER BY actually reference
    # are replicated into the S relation
    needed: set[str] = set()
    for item in select_items:
        needed |= item.expr.columns()
    if having is not None:
        needed |= having.columns()
    if spec.order_by is not None and spec.order_by not in out_columns:
        needed.add(out_schema.resolve(spec.order_by))
    catalog_keep = {q: arr for q, arr in cols.items() if q in needed}

    return _CompiledInspect(
        context=context, spec=spec, out_columns=out_columns,
        select_items=select_items, having=having, out_schema=out_schema,
        catalog_keep=catalog_keep, workloads=workloads, runs=runs,
        plan_index=plan_index, hyp_col_of=hyp_col_of, measures=measures,
        hyp_objs=hyp_objs)


def _persist_into(db: Database, spec: InspectSpec, frame: Frame) -> Frame:
    """SELECT ... INTO t INSPECT ...: keep the score frame as a table.

    On a persistent database the committed table gets automatic B-tree
    indexes on its hot columns, so later ``SELECT``s over the saved
    scores run index-backed — and a reopened session answers them with
    zero extraction or re-scoring.
    """
    if spec.into:
        table = db.create_table(spec.into, frame.columns, replace=True)
        table.insert_many([tuple(row[c] for c in frame.columns)
                           for row in frame.rows()])
        db.commit()  # no-op for in-memory databases
    return frame


def _materialize_s(cols: dict[str, np.ndarray],
                   workloads: list[_GroupWorkload],
                   outcomes_by_did: dict[str, list],
                   plan_index: dict[tuple[str, str, bytes], int],
                   hyp_col_of: dict[str, int], n_measures: int,
                   alias: str) -> dict[str, np.ndarray]:
    """Assemble the temporary S relation as column arrays.

    Row order is group-major, then model, then measure, then
    hypothesis-major over that model's units -- the seed frontend's
    flattening order, produced with repeat/tile instead of per-row loops.
    Each row also carries a representative catalog row (first row of its
    (model, unit, hypothesis) triple when present, of the (model, unit)
    pair otherwise), so SELECT/HAVING can reference catalog columns.
    """
    chunks: dict[str, list[np.ndarray]] = {q: [] for q in cols}
    for name in S_COLUMNS:
        chunks[f"{alias}.{name}"] = []

    def emit(name: str, values: np.ndarray) -> None:
        chunks[f"{alias}.{name}"].append(values)

    for workload in workloads:
        hyps = workload.hyp_names
        hcols = np.asarray([hyp_col_of[h] for h in hyps], dtype=np.int64)
        nh = len(hyps)
        hid_cycle = np.asarray(hyps, dtype=object)
        outcomes = outcomes_by_did[workload.did]
        for mid, uids, rep_grid in workload.models:
            nu = uids.shape[0]
            pgi = plan_index[(workload.did, mid, uids.tobytes())]
            for mi in range(n_measures):
                outcome = outcomes[pgi * n_measures + mi]
                result = outcome.result
                unit_scores = result.unit_scores[:, hcols].T.reshape(-1)
                if result.group_scores is None:  # independent measures
                    group_scores = unit_scores
                else:
                    group_scores = np.repeat(result.group_scores[hcols], nu)
                emit("uid", np.tile(uids, nh))
                emit("hid", np.repeat(hid_cycle, nu))
                emit("mid", _fill_object(nu * nh, mid))
                emit("score_id", _fill_object(nu * nh,
                                              outcome.measure.score_id))
                emit("group_score", group_scores.astype(np.float64))
                emit("unit_score", unit_scores.astype(np.float64))
                for qname, arr in cols.items():
                    chunks[qname].append(arr[rep_grid])
    # parts of one column share a dtype (np.concatenate keeps object dtype)
    return {qname: np.concatenate(parts)
            for qname, parts in chunks.items()}


def _fill_object(n: int, value) -> np.ndarray:
    out = np.empty(n, dtype=object)
    out[:] = value
    return out


def _finish_columnar(db: Database, s_cols: dict[str, np.ndarray],
                     select_items: list[SelectItem], having: Expr | None,
                     spec: InspectSpec, out_schema: Schema,
                     out_columns: list[str]) -> Frame:
    """HAVING + projection + ORDER BY/LIMIT through the columnar executor."""
    order_by = spec.order_by
    items = list(select_items)
    if order_by is not None and order_by not in out_columns:
        # ORDER BY a column that is not projected: carry it as a hidden
        # output column, dropped when the frame is assembled
        items.append(SelectItem(expr=Column(out_schema.resolve(order_by)),
                                alias="__order__"))
        order_by = "__order__"

    # the S relation lives in a throwaway catalog: the user's Database is
    # never mutated, so queries are re-entrant and cannot clobber (or drop)
    # a real table; scan accounting is mirrored onto the shared counter
    tmp_db = Database()
    tmp_db.tables[_TMP_TABLE] = Table.from_columns(_TMP_TABLE, s_cols)
    rows = execute_select(tmp_db, SelectQuery(
        items=items, table=_TMP_TABLE, where=having,
        order_by=order_by, descending=spec.descending,
        limit=spec.limit))
    db.full_scans += tmp_db.full_scans
    return Frame.from_records(rows, columns=out_columns)
