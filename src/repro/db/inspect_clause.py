"""Execution of the INSPECT SQL extension (Appendix B).

Models, hidden units and hypotheses are modeled as catalog relations::

    models(mid, epoch, ...)          -- one row per trained model snapshot
    units(mid, uid, layer, ...)      -- one row per hidden unit
    hypotheses(h, name, ...)         -- one row per hypothesis function
    inputs(did, seq)                 -- one row per dataset

A query like the paper's::

    SELECT M.epoch, S.uid
    INSPECT U.uid AND H.h USING corr OVER D.seq AS S
    FROM models M, units U, hypotheses H, inputs D
    WHERE M.mid = U.mid AND U.layer = 0 AND H.name = 'keywords'
    GROUP BY M.epoch
    HAVING S.unit_score > 0.8

is evaluated by (1) joining/filtering the catalog, (2) grouping the surviving
(model, unit) rows per GROUP BY key, (3) running one DNI inspection per
group, and (4) flattening the temporary relation
``S(uid, hid, mid, group_score, unit_score)`` through HAVING and the SELECT
projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any

import numpy as np

from repro.core.groups import UnitGroup
from repro.core.pipeline import InspectConfig, run_inspection
from repro.data.datasets import Dataset
from repro.db.engine import Database
from repro.db.sqlparser import InspectSpec, parse_sql
from repro.extract.base import Extractor
from repro.hypotheses.base import HypothesisFunction
from repro.measures.registry import get_measure
from repro.util.frame import Frame


@dataclass
class InspectQuery:
    """Binding context: catalog database + live Python objects."""

    db: Database
    models: dict[str, Any]                       # mid -> model object
    hypotheses: dict[str, HypothesisFunction]    # h -> hypothesis object
    datasets: dict[str, Dataset]                 # did -> dataset object
    extractor: Extractor
    config: InspectConfig = field(default_factory=InspectConfig)

    # ------------------------------------------------------------------
    def register_model(self, mid: str, model, **attrs) -> None:
        self.models[mid] = model
        table = self.db.tables.get("models")
        if table is None:
            table = self.db.create_table(
                "models", ["mid"] + sorted(attrs))
        table.insert([mid] + [attrs[c] for c in table.columns[1:]])


def _catalog_rows(db: Database, tables: list[tuple[str, str]],
                  where) -> list[dict[str, Any]]:
    """Filtered cross product of the catalog relations (they are small)."""
    per_table: list[list[dict[str, Any]]] = []
    for name, alias in tables:
        table = db.table(name)
        rows = []
        for row in db.scan(name):
            env: dict[str, Any] = {}
            for col, val in zip(table.columns, row):
                env[f"{alias}.{col}"] = val
                env.setdefault(col, val)
            rows.append(env)
        per_table.append(rows)
    out: list[dict[str, Any]] = []
    for combo in product(*per_table):
        env: dict[str, Any] = {}
        for piece in combo:
            env.update(piece)
        if where is None or where.eval(env):
            out.append(env)
    return out


def run_inspect_sql(context: InspectQuery, sql: str) -> Frame:
    """Parse and execute a SQL statement with an INSPECT clause."""
    spec = parse_sql(sql)
    if not isinstance(spec, InspectSpec):
        raise ValueError("query has no INSPECT clause; use execute_select")
    return run_inspect_spec(context, spec)


def run_inspect_spec(context: InspectQuery, spec: InspectSpec) -> Frame:
    envs = _catalog_rows(context.db, spec.tables, spec.where)
    if not envs:
        return Frame.from_records([], columns=[i.alias
                                               for i in spec.select_items])

    measures = [get_measure(name) for name in spec.measures]
    alias = spec.inspect_alias

    # group catalog rows by the GROUP BY key
    grouped: dict[tuple, list[dict[str, Any]]] = {}
    for env in envs:
        key = tuple(expr.eval(env) for expr in spec.group_by)
        grouped.setdefault(key, []).append(env)

    out_rows: list[dict[str, Any]] = []
    for key, group_envs in grouped.items():
        frame_rows = _inspect_one_group(context, spec, measures, group_envs)
        for row in frame_rows:
            env = dict(row.pop("_env"))
            env.update({f"{alias}.{k}": v for k, v in row.items()})
            env.update(row)
            if spec.having is not None and not spec.having.eval(env):
                continue
            projected = {item.alias: item.expr.eval(env)
                         for item in spec.select_items}
            out_rows.append(projected)

    return Frame.from_records(
        out_rows, columns=[i.alias for i in spec.select_items])


def _inspect_one_group(context: InspectQuery, spec: InspectSpec, measures,
                       group_envs) -> list[dict[str, Any]]:
    unit_col = spec.unit_ref.split(".")[-1]
    hyp_col = spec.hyp_ref.split(".")[-1]

    # distinct unit rows per model, distinct hypotheses, one dataset
    units_by_model: dict[str, list[int]] = {}
    env_by_unit: dict[tuple[str, int], dict] = {}
    hyp_names: list[str] = []
    dataset_ids: set[str] = set()
    for env in group_envs:
        mid = env["mid"]
        uid = env[unit_col] if unit_col in env else env[spec.unit_ref]
        hname = env[hyp_col] if hyp_col in env else env[spec.hyp_ref]
        if uid not in units_by_model.setdefault(mid, []):
            units_by_model[mid].append(uid)
        if hname not in hyp_names:
            hyp_names.append(hname)
        env_by_unit.setdefault((mid, uid), env)
        dataset_ids.add(env.get("did", next(iter(context.datasets))))
    if len(dataset_ids) != 1:
        raise ValueError(f"INSPECT must target one dataset, got {dataset_ids}")
    dataset = context.datasets[dataset_ids.pop()]
    hyp_objs = [context.hypotheses[h] for h in hyp_names]

    groups = [UnitGroup(model=context.models[mid],
                        unit_ids=np.asarray(sorted(uids), dtype=int),
                        name=f"mid={mid}")
              for mid, uids in units_by_model.items()]

    outcomes = run_inspection(groups, dataset, measures, hyp_objs,
                              context.extractor, context.config)

    rows: list[dict[str, Any]] = []
    for outcome in outcomes:
        mid = next(m for m, g in zip(units_by_model, groups)
                   if g is outcome.group)
        sorted_units = sorted(units_by_model[mid])
        for j, hname in enumerate(outcome.hypothesis_names):
            group_score = (float(outcome.result.group_scores[j])
                           if outcome.result.group_scores is not None
                           else None)
            for i, uid in enumerate(sorted_units):
                unit_score = float(outcome.result.unit_scores[i, j])
                if group_score is None:
                    group_score_val = unit_score  # independent measures
                else:
                    group_score_val = group_score
                rows.append({
                    "uid": uid, "hid": hname, "mid": mid,
                    "group_score": group_score_val,
                    "unit_score": unit_score,
                    "_env": env_by_unit[(mid, uid)],
                })
    return rows
