"""repro: a reproduction of DeepBase (Sellam et al., SIGMOD 2019).

DeepBase performs Deep Neural Inspection: measuring the statistical affinity
between hidden-unit behaviors of trained neural networks and user-provided
hypothesis functions, through the declarative :func:`inspect` API.

Quick start (the connection-style Session API)::

    from repro import Session
    from repro.data import generate_sql_workload
    from repro.hypotheses import grammar_hypotheses
    from repro.nn import CharLSTMModel, train_model
    from repro.util.rng import new_rng

    wl = generate_sql_workload("default", n_queries=100)
    model = CharLSTMModel(len(wl.vocab), n_units=128, rng=new_rng(0))
    train_model(model, wl.dataset.symbols, wl.targets)
    hyps = grammar_hypotheses(wl.grammar, wl.queries, wl.trees,
                              mode="derivation")
    with Session() as session:
        session.register_model("m0", model)
        session.register_dataset("d0", wl.dataset)
        session.register_hypotheses(hyps)
        frame = (session.inspect("m0", "d0")
                 .using("corr", "logreg_l1")
                 .hypotheses(hyps)
                 .run())

The one-shot :func:`inspect` free function remains and is a thin shim over
an ephemeral session.
"""

from repro.core.cache import HypothesisCache, UnitBehaviorCache
from repro.core.groups import UnitGroup, all_units_group, layer_groups
from repro.core.inspect import InspectConfig, inspect, top_units
from repro.core.pipeline import (InspectionPlan, ProcessPoolScheduler,
                                 Scheduler, SerialScheduler,
                                 ThreadPoolScheduler)
from repro.core.progressive import inspect_progressive
from repro.core.saliency import saliency_frame, top_symbols
from repro.session import InspectionQuery, Session
from repro.store import DiskBehaviorStore
from repro.util.frame import Frame

__version__ = "1.3.0"

__all__ = [
    "DiskBehaviorStore",
    "Frame",
    "HypothesisCache",
    "InspectConfig",
    "InspectionPlan",
    "InspectionQuery",
    "ProcessPoolScheduler",
    "Scheduler",
    "SerialScheduler",
    "Session",
    "ThreadPoolScheduler",
    "UnitBehaviorCache",
    "UnitGroup",
    "__version__",
    "all_units_group",
    "inspect",
    "inspect_progressive",
    "layer_groups",
    "saliency_frame",
    "top_symbols",
    "top_units",
]
