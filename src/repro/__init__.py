"""repro: a reproduction of DeepBase (Sellam et al., SIGMOD 2019).

DeepBase performs Deep Neural Inspection: measuring the statistical affinity
between hidden-unit behaviors of trained neural networks and user-provided
hypothesis functions, through the declarative :func:`inspect` API.

Quick start::

    from repro import inspect, InspectConfig
    from repro.data import generate_sql_workload
    from repro.hypotheses import grammar_hypotheses
    from repro.measures import CorrelationScore, LogRegressionScore
    from repro.nn import CharLSTMModel, train_model
    from repro.util.rng import new_rng

    wl = generate_sql_workload("default", n_queries=100)
    model = CharLSTMModel(len(wl.vocab), n_units=128, rng=new_rng(0))
    train_model(model, wl.dataset.symbols, wl.targets)
    hyps = grammar_hypotheses(wl.grammar, wl.queries, wl.trees,
                              mode="derivation")
    frame = inspect([model], wl.dataset,
                    [CorrelationScore("pearson"),
                     LogRegressionScore(regul="L1")], hyps)
"""

from repro.core.cache import HypothesisCache, UnitBehaviorCache
from repro.core.groups import UnitGroup, all_units_group, layer_groups
from repro.core.inspect import InspectConfig, inspect, top_units
from repro.core.pipeline import (InspectionPlan, Scheduler, SerialScheduler,
                                 ThreadPoolScheduler)
from repro.core.saliency import saliency_frame, top_symbols
from repro.store import DiskBehaviorStore
from repro.util.frame import Frame

__version__ = "1.2.0"

__all__ = [
    "DiskBehaviorStore",
    "Frame",
    "HypothesisCache",
    "InspectConfig",
    "InspectionPlan",
    "Scheduler",
    "SerialScheduler",
    "ThreadPoolScheduler",
    "UnitBehaviorCache",
    "UnitGroup",
    "all_units_group",
    "inspect",
    "layer_groups",
    "saliency_frame",
    "top_symbols",
    "top_units",
    "__version__",
]
