"""Terminal visualization helpers (the LSTMVis-style manual-inspection view).

The paper motivates DNI by showing how hard manual inspection of activation
plots is (Figure 1); these helpers render the same views as aligned ASCII so
examples and debugging sessions can eyeball unit behavior without a plotting
stack.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset

#: glyph ramp from strongly negative to strongly positive activation
GLYPHS = " .:-=+*#%@"


def activation_glyphs(values: np.ndarray, lo: float = -1.0,
                      hi: float = 1.0) -> str:
    """Map a 1-D activation sequence to a glyph string."""
    span = hi - lo
    clipped = np.clip((np.asarray(values) - lo) / span, 0.0, 1.0 - 1e-9)
    return "".join(GLYPHS[int(v * len(GLYPHS))] for v in clipped)


def activation_trace(model, dataset: Dataset, unit_ids: list[int],
                     record: int = 0) -> str:
    """Figure 1: one record's input with per-unit activation rows."""
    states = model.hidden_states(dataset.symbols[record:record + 1])[0]
    text = dataset.record_text(record)
    lines = [f"input    |{text}|"]
    for unit in unit_ids:
        lines.append(f"unit {unit:3d} |{activation_glyphs(states[:, unit])}|")
    return "\n".join(lines)


def behavior_heatmap(behavior: np.ndarray, text: str,
                     label: str = "hypothesis") -> str:
    """Align a hypothesis-behavior vector under its record text."""
    values = np.asarray(behavior, dtype=float)
    hi = max(float(values.max()), 1.0)
    lines = [f"input      |{text}|",
             f"{label[:10]:10s} |{activation_glyphs(values, 0.0, hi)}|"]
    return "\n".join(lines)


def unit_hypothesis_overlay(model, dataset: Dataset, unit: int,
                            hypothesis, record: int = 0) -> str:
    """Stack a unit's activations over a hypothesis's behavior (eyeball
    check of an affinity score)."""
    states = model.hidden_states(dataset.symbols[record:record + 1])[0]
    behavior = hypothesis.behavior(dataset, record)
    text = dataset.record_text(record)
    hi = max(float(np.max(behavior)), 1.0)
    return "\n".join([
        f"input    |{text}|",
        f"unit {unit:3d} |{activation_glyphs(states[:, unit])}|",
        f"hyp      |{activation_glyphs(behavior, 0.0, hi)}|",
    ])


def score_bar_chart(labels: list[str], values: list[float],
                    width: int = 40) -> str:
    """Horizontal bar chart for affinity scores (Figure 12b style)."""
    hi = max(max(values), 1e-9)
    label_w = max(len(lbl) for lbl in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * max(value, 0.0) / hi))
        lines.append(f"{label.ljust(label_w)} {value:7.3f} |{bar}")
    return "\n".join(lines)
