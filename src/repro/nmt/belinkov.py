"""Re-implementation of the Belinkov et al. probing scripts (Figure 11).

The original scripts freeze the translation model's weights and insert a POS
classifier directly into the encoder; every training epoch therefore re-runs
the *full* translation model over the data.  DeepBase instead extracts the
activations once and trains on the cached matrix -- the runtime comparison
in Section 6.3.1 hinges exactly on this difference, which this class
reproduces: ``epochs_run`` full model evaluations vs. DeepBase's one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.measures.stats import multiclass_precision
from repro.nmt.corpus import NmtCorpus
from repro.nn.layers import softmax
from repro.nn.seq2seq import Seq2SeqModel
from repro.util.rng import new_rng


@dataclass
class BelinkovResult:
    per_tag_precision: np.ndarray     # indexed by corpus tag id
    accuracy: float
    epochs_run: int
    seconds: float
    full_model_evals: int


class BelinkovProbe:
    """In-place POS classifier on the encoder, trained with many passes."""

    def __init__(self, layer: int = 1, lr: float = 0.05, l2: float = 1e-4,
                 max_epochs: int = 35, patience: int = 5,
                 batch_size: int = 128, seed: int = 0):
        self.layer = layer
        self.lr = lr
        self.l2 = l2
        self.max_epochs = max_epochs
        self.patience = patience
        self.batch_size = batch_size
        self.seed = seed

    # ------------------------------------------------------------------
    def run(self, model: Seq2SeqModel, corpus: NmtCorpus,
            train_frac: float = 0.8, val_frac: float = 0.1) -> BelinkovResult:
        """Train the inserted classifier; re-runs the NMT model each epoch."""
        rng = new_rng(self.seed)
        n = corpus.n_sentences
        order = rng.permutation(n)
        n_train = int(n * train_frac)
        n_val = int(n * val_frac)
        train_idx = order[:n_train]
        val_idx = order[n_train:n_train + n_val]
        test_idx = order[n_train + n_val:]

        n_classes = len(corpus.tag_names)
        weights = rng.standard_normal((model.n_units, n_classes)) * 0.01
        bias = np.zeros(n_classes)
        velocity_w = np.zeros_like(weights)
        velocity_b = np.zeros_like(bias)

        best_val = -np.inf
        stale = 0
        epochs_run = 0
        full_model_evals = 0
        t0 = time.perf_counter()

        for _ in range(self.max_epochs):
            epochs_run += 1
            perm = rng.permutation(train_idx)
            for start in range(0, perm.shape[0], self.batch_size):
                idx = perm[start:start + self.batch_size]
                # the scripts run the frozen translation model in place:
                # encoder AND decoder execute even though only encoder
                # states feed the classifier
                model.forward(corpus.src[idx], corpus.tgt_in[idx])
                full_model_evals += 1
                states = model.encoder.layer_states()[self.layer]
                x, y = self._flatten(states, corpus, idx)
                if x.shape[0] == 0:
                    continue
                probs = softmax(x @ weights + bias, axis=-1)
                probs[np.arange(x.shape[0]), y] -= 1.0
                grad_w = x.T @ probs / x.shape[0] + self.l2 * weights
                grad_b = probs.mean(axis=0)
                velocity_w = 0.9 * velocity_w - self.lr * grad_w
                velocity_b = 0.9 * velocity_b - self.lr * grad_b
                weights += velocity_w
                bias += velocity_b

            val_acc = self._accuracy(model, corpus, val_idx, weights, bias)
            full_model_evals += 1
            if val_acc > best_val + 1e-4:
                best_val = val_acc
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break

        precision, accuracy = self._test_scores(
            model, corpus, test_idx, weights, bias, n_classes)
        full_model_evals += 1
        return BelinkovResult(per_tag_precision=precision, accuracy=accuracy,
                              epochs_run=epochs_run,
                              seconds=time.perf_counter() - t0,
                              full_model_evals=full_model_evals)

    # ------------------------------------------------------------------
    def _flatten(self, states: np.ndarray, corpus: NmtCorpus,
                 idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Keep only non-padding token positions."""
        tags = corpus.tags[idx]
        mask = corpus.src[idx] != corpus.src_vocab.pad_id
        return states[mask], tags[mask]

    def _predict(self, model, corpus, idx, weights, bias):
        model.forward(corpus.src[idx], corpus.tgt_in[idx])
        states = model.encoder.layer_states()[self.layer]
        x, y = self._flatten(states, corpus, idx)
        pred = (x @ weights + bias).argmax(axis=-1)
        return pred, y

    def _accuracy(self, model, corpus, idx, weights, bias) -> float:
        pred, y = self._predict(model, corpus, idx, weights, bias)
        return float((pred == y).mean()) if y.shape[0] else 0.0

    def _test_scores(self, model, corpus, idx, weights, bias, n_classes):
        pred, y = self._predict(model, corpus, idx, weights, bias)
        precision = multiclass_precision(pred, y, n_classes)
        accuracy = float((pred == y).mean()) if y.shape[0] else 0.0
        return precision, accuracy
