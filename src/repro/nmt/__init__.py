"""Neural machine translation experiment substrate (Section 6.3).

The paper inspects a public OpenNMT English-to-German model over a tagged
corpus.  Neither the model nor the WMT data is available offline, so this
package generates a synthetic parallel corpus from a tagged grammar (exact
POS ground truth by construction), trains a seq2seq model with attention on
it, and re-implements the Belinkov et al. "in-place probe" scripts as the
comparison baseline for Figure 11.
"""

from repro.nmt.belinkov import BelinkovProbe
from repro.nmt.corpus import NmtCorpus, WordVocab, generate_nmt_corpus
from repro.nmt.model import train_nmt_model

__all__ = [
    "BelinkovProbe",
    "NmtCorpus",
    "WordVocab",
    "generate_nmt_corpus",
    "train_nmt_model",
]
