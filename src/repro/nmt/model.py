"""Training helper for the NMT experiments: a seq2seq model over the
synthetic corpus (OpenNMT substitute: 2 LSTM encoder/decoder layers with
attention; unit counts are scaled down by default and parameterized up to
the paper's 2 x 500).
"""

from __future__ import annotations

import numpy as np

from repro.nmt.corpus import NmtCorpus
from repro.nn.optim import Adam
from repro.nn.seq2seq import Seq2SeqModel
from repro.util.rng import new_rng


def train_nmt_model(corpus: NmtCorpus, n_units: int = 48, n_layers: int = 2,
                    emb_dim: int | None = None, epochs: int = 8,
                    batch_size: int = 64, lr: float = 4e-3,
                    seed: int = 0, verbose: bool = False,
                    model_id: str = "opennmt_ende") -> Seq2SeqModel:
    """Train an encoder-decoder translation model with teacher forcing."""
    rng = new_rng(seed)
    model = Seq2SeqModel(
        src_vocab=len(corpus.src_vocab), tgt_vocab=len(corpus.tgt_vocab),
        n_units=n_units, rng=rng, n_layers=n_layers,
        emb_dim=emb_dim or n_units, pad_id=corpus.src_vocab.pad_id,
        model_id=model_id)
    optimizer = Adam(model.parameters(), lr=lr)
    n = corpus.n_sentences
    for epoch in range(epochs):
        order = rng.permutation(n)
        total_loss, total_acc, batches = 0.0, 0.0, 0
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            optimizer.zero_grad()
            loss, acc = model.loss_and_grads(
                (corpus.src[idx], corpus.tgt_in[idx], corpus.tgt_out[idx]))
            optimizer.step()
            total_loss += loss
            total_acc += acc
            batches += 1
        if verbose:
            print(f"nmt epoch {epoch}: loss={total_loss / batches:.3f} "
                  f"acc={total_acc / batches:.3f}")
    return model


def untrained_nmt_model(corpus: NmtCorpus, n_units: int = 48,
                        n_layers: int = 2, emb_dim: int | None = None,
                        seed: int = 7,
                        model_id: str = "opennmt_untrained") -> Seq2SeqModel:
    """Same architecture, random weights (the Figure 12 control)."""
    return Seq2SeqModel(
        src_vocab=len(corpus.src_vocab), tgt_vocab=len(corpus.tgt_vocab),
        n_units=n_units, rng=new_rng(seed), n_layers=n_layers,
        emb_dim=emb_dim or n_units, pad_id=corpus.src_vocab.pad_id,
        model_id=model_id)


def translation_accuracy(model: Seq2SeqModel, corpus: NmtCorpus,
                         indices: np.ndarray | None = None) -> float:
    """Teacher-forced next-token accuracy over non-pad positions."""
    if indices is None:
        indices = np.arange(corpus.n_sentences)
    _, acc = model.evaluate((corpus.src[indices], corpus.tgt_in[indices],
                             corpus.tgt_out[indices]))
    return acc
