"""Synthetic English-German parallel corpus with gold POS tags.

Sentences are sampled from a small phrase grammar over a bilingual lexicon;
every English token carries its Penn-Treebank tag, so probing experiments
have exact ground truth (the paper uses CoreNLP tags, which are themselves
predictions).  German output is a word-aligned translation with two simple
reordering rules (adjective agreement is ignored; the point is that the
encoder must represent enough source structure for translation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import new_rng

#: (english, german, tag) lexicon
LEXICON: list[tuple[str, str, str]] = [
    ("the", "der", "DT"), ("a", "ein", "DT"),
    ("dog", "hund", "NN"), ("cat", "katze", "NN"), ("house", "haus", "NN"),
    ("book", "buch", "NN"), ("tree", "baum", "NN"), ("car", "auto", "NN"),
    ("bird", "vogel", "NN"), ("river", "fluss", "NN"),
    ("dogs", "hunde", "NNS"), ("cats", "katzen", "NNS"),
    ("books", "buecher", "NNS"), ("trees", "baeume", "NNS"),
    ("anna", "anna", "NNP"), ("berlin", "berlin", "NNP"),
    ("peter", "peter", "NNP"), ("tom", "tom", "NNP"),
    ("he", "er", "PRP"), ("she", "sie", "PRP"), ("it", "es", "PRP"),
    ("they", "sie", "PRP"), ("we", "wir", "PRP"),
    ("sees", "sieht", "VBZ"), ("reads", "liest", "VBZ"),
    ("likes", "mag", "VBZ"), ("finds", "findet", "VBZ"),
    ("saw", "sah", "VBD"), ("read", "las", "VBD"),
    ("liked", "mochte", "VBD"), ("found", "fand", "VBD"),
    ("see", "sehen", "VBP"), ("like", "moegen", "VBP"),
    ("find", "finden", "VBP"),
    ("seen", "gesehen", "VBN"), ("taken", "genommen", "VBN"),
    ("quickly", "schnell", "RB"), ("slowly", "langsam", "RB"),
    ("often", "oft", "RB"), ("here", "hier", "RB"),
    ("big", "gross", "JJ"), ("small", "klein", "JJ"),
    ("red", "rot", "JJ"), ("old", "alt", "JJ"), ("green", "gruen", "JJ"),
    ("in", "in", "IN"), ("on", "auf", "IN"), ("with", "mit", "IN"),
    ("near", "bei", "IN"), ("under", "unter", "IN"),
    ("to", "zu", "TO"),
    ("and", "und", "CC"), ("or", "oder", "CC"), ("but", "aber", "CC"),
    ("two", "zwei", "CD"), ("three", "drei", "CD"), ("five", "fuenf", "CD"),
    (".", ".", "."), (";", ";", ":"),
]


def _expand_lexicon() -> None:
    """Grow the open word classes so tags are not decodable from a handful
    of word identities.

    With only ~6 words per tag, even a randomly initialized encoder's units
    correlate with tags through random word embeddings; a larger vocabulary
    dilutes that shortcut, which is what makes the trained-vs-untrained
    comparison of Figure 12 meaningful.  German forms are derived
    mechanically -- the corpus is synthetic, only the alignment matters.
    """
    nouns = ("lamp", "stone", "road", "window", "cloud", "door", "garden",
             "table", "chair", "bridge", "flower", "horse", "train", "ship",
             "mountain", "forest", "apple", "letter", "clock", "mirror",
             "bottle", "ladder", "basket", "candle", "hammer", "pencil",
             "pillow", "carpet", "engine", "market")
    adjectives = ("blue", "dark", "warm", "cold", "fast", "slow", "tall",
                  "short", "heavy", "light", "quiet", "loud", "clean",
                  "dirty", "young")
    verbs3 = ("takes", "holds", "moves", "opens", "closes", "paints",
              "builds", "breaks", "carries", "watches")
    verbs_past = ("took", "held", "moved", "opened", "closed", "painted",
                  "built", "broke", "carried", "watched")
    adverbs = ("carefully", "loudly", "quietly", "early", "late",
               "yesterday", "today")
    names = ("maria", "hans", "julia", "felix", "laura", "paul")
    numbers = ("four", "six", "seven", "nine", "ten")

    for word in nouns:
        LEXICON.append((word, word + "e", "NN"))
        LEXICON.append((word + "s", word + "en", "NNS"))
    for word in adjectives:
        LEXICON.append((word, word + "ig", "JJ"))
    for word in verbs3:
        LEXICON.append((word, word + "t", "VBZ"))
    for word in verbs_past:
        LEXICON.append((word, word + "te", "VBD"))
    for word in adverbs:
        LEXICON.append((word, word + "lich", "RB"))
    for word in names:
        LEXICON.append((word, word, "NNP"))
    for word in numbers:
        LEXICON.append((word, word + "z", "CD"))


_expand_lexicon()

PAD, BOS, EOS = "<pad>", "<bos>", "<eos>"


class WordVocab:
    """Word-level vocabulary; ids 0..2 are <pad>, <bos>, <eos>."""

    def __init__(self, words: list[str]):
        specials = [PAD, BOS, EOS]
        ordered = specials + [w for w in dict.fromkeys(words)
                              if w not in specials]
        self._id_of = {w: i for i, w in enumerate(ordered)}
        self._word_of = ordered
        self.pad_id, self.bos_id, self.eos_id = 0, 1, 2

    def __len__(self) -> int:
        return len(self._word_of)

    def encode(self, words: list[str]) -> list[int]:
        return [self._id_of[w] for w in words]

    def decode(self, ids) -> list[str]:
        return [self._word_of[int(i)] for i in ids]

    def __contains__(self, word: str) -> bool:
        return word in self._id_of


@dataclass
class NmtCorpus:
    """Parallel sentences plus aligned POS ground truth.

    ``src`` is (n, T_src) padded English ids; ``tgt_in``/``tgt_out`` are the
    teacher-forcing German sequences; ``tags`` is (n, T_src) tag ids aligned
    with ``src`` (padding positions carry ``pad_tag_id``).
    """

    src: np.ndarray
    tgt_in: np.ndarray
    tgt_out: np.ndarray
    tags: np.ndarray
    src_vocab: WordVocab
    tgt_vocab: WordVocab
    tag_names: list[str]
    sentences: list[list[str]] = field(default_factory=list)
    pad_tag_id: int = 0

    @property
    def n_sentences(self) -> int:
        return int(self.src.shape[0])

    @property
    def lexicon_tags(self) -> dict[str, str]:
        return {en: tag for en, _, tag in LEXICON}


def _sample_sentence(rng: np.random.Generator,
                     by_tag: dict[str, list[tuple[str, str]]]
                     ) -> tuple[list[str], list[str], list[str]]:
    """Returns (english, german, tags) for one sentence."""
    def pick(tag: str) -> tuple[str, str, str]:
        en, de = by_tag[tag][rng.integers(len(by_tag[tag]))]
        return en, de, tag

    en: list[tuple[str, str, str]] = []

    def np_phrase() -> list[tuple[str, str, str]]:
        roll = rng.random()
        if roll < 0.18:
            return [pick("NNP")]
        if roll < 0.34:
            return [pick("PRP")]
        if roll < 0.45:
            return [pick("CD"), pick("NNS")]
        if roll < 0.70:
            return [pick("DT"), pick("NN")]
        return [pick("DT"), pick("JJ"), pick("NN")]

    subject = np_phrase()
    verb = [pick("VBZ") if rng.random() < 0.6 else pick("VBD")]
    obj = np_phrase()
    sentence = subject + verb + obj
    if rng.random() < 0.35:  # prepositional phrase
        sentence += [pick("IN")] + np_phrase()
    if rng.random() < 0.25:  # adverb
        sentence += [pick("RB")]
    if rng.random() < 0.20:  # coordination
        sentence += [pick("CC")] + np_phrase()
    sentence += [pick(".") if rng.random() < 0.9 else pick(":")]

    en_words = [w[0] for w in sentence]
    tags = [w[2] for w in sentence]
    # German: word-aligned, with adverbs moved before the object
    # (a mild reordering so translation is not purely positional)
    de_words = [w[1] for w in sentence]
    rb_positions = [i for i, t in enumerate(tags) if t == "RB"]
    for pos in rb_positions:
        if pos >= 3:
            word = de_words.pop(pos)
            de_words.insert(2, word)
    return en_words, de_words, tags


def generate_nmt_corpus(n_sentences: int = 600, max_src_len: int = 14,
                        max_tgt_len: int = 15,
                        seed: int = 0) -> NmtCorpus:
    """Sample a tagged parallel corpus of ``n_sentences``."""
    rng = new_rng(seed)
    by_tag: dict[str, list[tuple[str, str]]] = {}
    for en, de, tag in LEXICON:
        by_tag.setdefault(tag, []).append((en, de))
    # '.' tag key: pick("." ) uses by_tag["."]
    tag_names = sorted({tag for _, _, tag in LEXICON})

    src_vocab = WordVocab([en for en, _, _ in LEXICON])
    tgt_vocab = WordVocab([de for _, de, _ in LEXICON])

    src = np.zeros((n_sentences, max_src_len), dtype=np.int64)
    tgt_in = np.zeros((n_sentences, max_tgt_len), dtype=np.int64)
    tgt_out = np.zeros((n_sentences, max_tgt_len), dtype=np.int64)
    tags = np.zeros((n_sentences, max_src_len), dtype=np.int64)
    tag_index = {t: i + 1 for i, t in enumerate(tag_names)}  # 0 = padding
    sentences: list[list[str]] = []

    count = 0
    while count < n_sentences:
        en_words, de_words, sent_tags = _sample_sentence(rng, by_tag)
        if len(en_words) > max_src_len or len(de_words) + 1 > max_tgt_len:
            continue
        row = src_vocab.encode(en_words)
        src[count, :len(row)] = row
        tags[count, :len(row)] = [tag_index[t] for t in sent_tags]
        de_ids = tgt_vocab.encode(de_words)
        tgt_in[count, 0] = tgt_vocab.bos_id
        tgt_in[count, 1:len(de_ids) + 1] = de_ids
        tgt_out[count, :len(de_ids)] = de_ids
        tgt_out[count, len(de_ids)] = tgt_vocab.eos_id
        sentences.append(en_words)
        count += 1

    return NmtCorpus(src=src, tgt_in=tgt_in, tgt_out=tgt_out, tags=tags,
                     src_vocab=src_vocab, tgt_vocab=tgt_vocab,
                     tag_names=["<pad>"] + tag_names, sentences=sentences)
