"""The asyncio inspection server: many clients, one shared Session.

Endpoints (see :mod:`repro.server.protocol` for the envelopes):

``POST /query``
    One-shot execution; the response carries the final frame.  The
    client is named by the ``client`` body field or ``X-Client-Id``
    header (defaults to the peer address).
``GET /stream``
    Websocket upgrade.  Clients submit ``{"type": "query", "id", "sql"}``
    and receive one ``frame`` envelope per processed behavior block —
    scores refining as records arrive — with ``final: true`` on the
    last.  ``{"type": "cancel", "id"}`` (or simply disconnecting)
    abandons the underlying stream: the session generator closes, the
    scheduler stops feeding it, the store scope flushes and the
    sweep-gate lease releases.
``GET /stats``
    ``Session.stats()`` (cache/store/query counters) + per-client
    admission counters + sweep-registry counters + server-level wire
    counters.

Queries execute on the admission controller's bounded thread pool —
they are blocking CPU work and must not run on the event loop; the
event loop only parses envelopes, moves frames and enforces quotas.
Cross-client forward-pass dedup is installed by default: the server
puts a :class:`~repro.server.dedup.SweepRegistry` on the session's
``sweep_gate`` so N concurrent identical cold queries extract once.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from typing import Iterator

from repro.server import protocol
from repro.server.admission import AdmissionController, QuotaExceeded
from repro.server.dedup import SweepRegistry
from repro.server.http import (AsyncWebSocket, HttpRequest, ProtocolError,
                               handshake_response, http_response,
                               read_http_request)
from repro.util.frame import Frame

_STREAM_END = object()   # queue sentinel: the worker finished


class InspectionServer:
    """Serve one :class:`~repro.session.Session` to many clients."""

    def __init__(self, session, host: str = "127.0.0.1", port: int = 0,
                 max_concurrent: int = 4, per_client_inflight: int = 2,
                 per_client_queue: int = 8, dedup: bool = True):
        self.session = session
        self.host = host
        self.port = port
        self.admission = AdmissionController(
            max_concurrent=max_concurrent,
            per_client_inflight=per_client_inflight,
            per_client_queue=per_client_queue)
        if dedup and getattr(session, "sweep_gate", None) is None:
            session.sweep_gate = SweepRegistry()
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._counts = {"connections": 0, "requests": 0, "ws_queries": 0,
                        "ws_cancels": 0, "ws_disconnects": 0}

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # idle keep-alive connections sit in read_http_request forever;
        # closing their transports (not cancelling the tasks — asyncio's
        # client_connected_cb done-callback mishandles cancelled tasks)
        # turns the waits into EOFs and lets every handler exit cleanly
        for conn_writer in list(self._conn_writers):
            conn_writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._counts["connections"] += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._conn_writers.add(writer)
        try:
            while True:
                try:
                    request = await read_http_request(reader)
                except ProtocolError as exc:
                    writer.write(self._error_response(
                        400, protocol.ERR_BAD_REQUEST, str(exc),
                        keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                self._counts["requests"] += 1
                if self._is_ws_upgrade(request):
                    await self._serve_websocket(request, reader, writer)
                    return           # a websocket consumes the connection
                if not await self._serve_http(request, writer):
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conn_writers.discard(writer)
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    @staticmethod
    def _is_ws_upgrade(request: HttpRequest) -> bool:
        return ("upgrade" in request.header("connection").lower()
                and request.header("upgrade").lower() == "websocket")

    def _client_id(self, request: HttpRequest, body: dict | None,
                   writer: asyncio.StreamWriter) -> str:
        if body and isinstance(body.get("client"), str):
            return body["client"]
        header = request.header("x-client-id")
        if header:
            return header
        peer = writer.get_extra_info("peername")
        return f"{peer[0]}:{peer[1]}" if peer else "anonymous"

    def _error_response(self, status: int, code: str, message: str,
                        keep_alive: bool = True) -> bytes:
        body = protocol.dumps(protocol.error_envelope(code, message))
        reason = {400: "Bad Request", 404: "Not Found",
                  429: "Too Many Requests", 500: "Internal Server Error"}
        return http_response(status, reason.get(status, "Error"),
                             body.encode("utf-8"), keep_alive=keep_alive)

    # -- plain HTTP ----------------------------------------------------
    async def _serve_http(self, request: HttpRequest,
                          writer: asyncio.StreamWriter) -> bool:
        """Answer one request; returns False when the connection closes."""
        if request.method == "POST" and request.path == "/query":
            response = await self._handle_query(request, writer)
        elif request.method == "GET" and request.path == "/stats":
            body = protocol.dumps(self.stats()).encode("utf-8")
            response = http_response(200, "OK", body)
        else:
            response = self._error_response(
                404, protocol.ERR_BAD_REQUEST,
                f"no route for {request.method} {request.path}")
        writer.write(response)
        await writer.drain()
        return request.header("connection").lower() != "close"

    async def _handle_query(self, request: HttpRequest,
                            writer: asyncio.StreamWriter) -> bytes:
        try:
            body = protocol.parse_envelope(request.body or b"{}")
            sql = body["sql"]
        except (ValueError, KeyError):
            return self._error_response(
                400, protocol.ERR_BAD_REQUEST,
                'request body must be a JSON object with a "sql" field')
        client = self._client_id(request, body, writer)
        started = time.perf_counter()

        def run(cancel_event: threading.Event) -> Frame:
            return self.session.sql(sql)

        try:
            frame = await self.admission.submit(client, run)
        except QuotaExceeded as exc:
            return self._error_response(429, exc.code, exc.message)
        except Exception as exc:
            return self._error_response(
                500, protocol.ERR_QUERY, f"{type(exc).__name__}: {exc}")
        envelope = protocol.result_envelope(
            frame, elapsed_s=time.perf_counter() - started)
        return http_response(200, "OK",
                             protocol.dumps(envelope).encode("utf-8"))

    # -- websocket streaming -------------------------------------------
    async def _serve_websocket(self, request: HttpRequest,
                               reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        key = request.header("sec-websocket-key")
        if request.path != "/stream" or not key:
            writer.write(self._error_response(
                400, protocol.ERR_BAD_REQUEST,
                "websocket upgrades are served at /stream",
                keep_alive=False))
            await writer.drain()
            return
        writer.write(handshake_response(key))
        await writer.drain()
        ws = AsyncWebSocket(reader, writer)
        client = self._client_id(request, None, writer)
        cancels: dict[str, threading.Event] = {}
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    raw = await ws.recv()
                except ProtocolError:
                    raw = None       # treat framing garbage as a disconnect
                if raw is None:
                    self._counts["ws_disconnects"] += 1
                    break
                try:
                    msg = protocol.parse_envelope(raw)
                    kind = msg.get("type")
                    qid = str(msg.get("id", ""))
                    if kind == "query":
                        sql = msg["sql"]
                    elif kind != "cancel":
                        raise ValueError(f"unknown envelope type {kind!r}")
                except (ValueError, KeyError) as exc:
                    await ws.send_text(protocol.dumps(
                        protocol.error_envelope(
                            protocol.ERR_BAD_REQUEST, str(exc))))
                    continue
                if kind == "cancel":
                    self._counts["ws_cancels"] += 1
                    event = cancels.get(qid)
                    if event is not None:
                        event.set()
                    continue
                self._counts["ws_queries"] += 1
                cancels[qid] = threading.Event()
                task = asyncio.ensure_future(
                    self._run_stream(ws, client, qid, sql, cancels[qid]))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            # disconnect: cancel every stream this socket owns, then wait
            # for the workers to notice and release their session work
            for event in cancels.values():
                event.set()
            for task in list(tasks):
                with contextlib.suppress(Exception):
                    await task
            await ws.close()

    async def _run_stream(self, ws: AsyncWebSocket, client: str, qid: str,
                          sql: str, cancel_event: threading.Event) -> None:
        """Drive one streamed query: worker thread → frame queue → socket."""
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def push(item) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, item)

        def worker(cancel: threading.Event) -> None:
            _stream_worker(self.session, sql, cancel, push)

        try:
            future = self.admission.admit(client, worker,
                                          cancel_event=cancel_event)
        except QuotaExceeded as exc:
            await ws.send_text(protocol.dumps(protocol.error_envelope(
                exc.code, exc.message, id=qid)))
            return
        # a job cancelled while still queued never runs the worker (so
        # never pushes the sentinel itself) — end the pump when the
        # future settles, whichever happens first
        future.add_done_callback(lambda _: queue.put_nowait(_STREAM_END))
        await ws.send_text(protocol.dumps({"type": "accepted", "id": qid}))
        seq = 0
        try:
            while True:
                item = await queue.get()
                if item is _STREAM_END:
                    break
                final, frame = item
                await ws.send_text(protocol.dumps(
                    protocol.frame_envelope(qid, seq, final, frame)))
                seq += 1
        except (ConnectionError, RuntimeError):
            cancel_event.set()     # peer went away mid-frame
        try:
            await future
        except Exception as exc:
            if not cancel_event.is_set():
                with contextlib.suppress(ConnectionError):
                    await ws.send_text(protocol.dumps(
                        protocol.error_envelope(
                            protocol.ERR_QUERY,
                            f"{type(exc).__name__}: {exc}", id=qid)))
                return
        if cancel_event.is_set():
            with contextlib.suppress(ConnectionError):
                await ws.send_text(protocol.dumps(
                    {"type": "cancelled", "id": qid}))

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        out = {"type": "stats", "server": dict(self._counts),
               "session": self.session.stats(),
               "admission": self.admission.stats()}
        gate = getattr(self.session, "sweep_gate", None)
        if gate is not None and hasattr(gate, "stats"):
            out["dedup"] = gate.stats()
        return out


def _stream_worker(session, sql: str, cancel: threading.Event,
                   push) -> None:
    """Run ``stream_sql`` on a worker thread, pushing ``(final, frame)``.

    One-frame lookahead tags the last frame ``final`` without buffering
    the stream.  A set cancel flag abandons the generator between
    frames — ``closing()`` propagates GeneratorExit through the session
    layer, which releases scheduler work, flushes the store scope and
    counts the abandonment.
    """
    try:
        with contextlib.closing(session.stream_sql(sql)) as frames:
            pending: Frame | None = None
            for frame in frames:
                if cancel.is_set():
                    return           # closing() abandons the stream
                if pending is not None:
                    push((False, pending))
                pending = frame
            if pending is not None and not cancel.is_set():
                push((True, pending))
    finally:
        push(_STREAM_END)


# ----------------------------------------------------------------------
# embedding harness: run the server on a background thread
# ----------------------------------------------------------------------
class ServerThread:
    """An :class:`InspectionServer` running its own event loop thread.

    Tests, examples and the benchmark embed the server this way: start
    it, read ``.port``, hammer it from plain (blocking) client code,
    then ``stop()`` — which drains the admission pool before returning.
    """

    def __init__(self, server: InspectionServer):
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-server")
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("inspection server failed to start")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        # off-loop by construction now: safe to block on pool shutdown
        self.server.admission.close()
        self._loop = self._thread = None


@contextlib.contextmanager
def serve_in_thread(session, **kwargs) -> Iterator[ServerThread]:
    """``with serve_in_thread(session) as server: ...`` — see ServerThread."""
    harness = ServerThread(InspectionServer(session, **kwargs)).start()
    try:
        yield harness
    finally:
        harness.stop()
