"""Cross-query forward-sweep dedup: the single-flight sweep registry.

Two clients inspecting the same model over the same dataset should
share one forward pass.  The caches already make the *warm* case free;
what they cannot prevent is N queries arriving at a *cold* cache
simultaneously and racing N identical extractions.  The
:class:`SweepRegistry` closes that window: before extracting, a run
leases its sweep identities — ``(model fingerprint, raw-extractor key,
dataset hash)`` triples, exactly the granularity the
:class:`~repro.core.cache.UnitBehaviorCache` keys entries by — and a
run that finds one of its keys already leased *waits* for the leader to
finish, then re-checks the (now warm) cache instead of re-extracting.

Two properties matter more than strict exclusion:

* **Warm queries never serialize.**  The lease loop re-evaluates each
  key's ``cold`` predicate every round, so keys another run has since
  made warm are simply dropped from the request — a follower wakes up,
  sees nothing left cold, and proceeds immediately with zero claims.
* **No deadlock, bounded waiting.**  A run claims all its (still-cold)
  keys atomically or claims nothing and waits — it never waits while
  holding claims, so two runs with overlapping key sets cannot block
  each other forever.  The wait is bounded (``wait_timeout``): on
  timeout the run proceeds *ungated* — duplicated work beats a wedged
  server if a leader stalls — and the ``timeouts`` counter records it.

The registry plugs into the plan executor through
``InspectConfig.sweep_gate`` (see
:meth:`~repro.core.pipeline.InspectionPlan.execute_blocks`): the server
installs one on its shared session, and every query — HTTP, websocket,
or in-process Python issued on the same session — shares it.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager

SweepKey = tuple[str, str, str]


class SweepRegistry:
    """Single-flight registry over in-flight forward sweeps.

    Thread-safe; designed for the server's worker threads but usable by
    any concurrent callers sharing a session.
    """

    def __init__(self, wait_timeout: float = 120.0):
        self.wait_timeout = wait_timeout
        self._lock = threading.Lock()
        self._inflight: dict[SweepKey, threading.Event] = {}
        self._counts = {"leases": 0, "leads": 0, "joins": 0, "waits": 0,
                        "timeouts": 0}

    @contextmanager
    def lease(self, keys: list[SweepKey],
              cold: Callable[[SweepKey], bool] | None = None) -> Iterator[None]:
        """Hold the given sweep identities for the duration of a run.

        ``cold`` filters the request each retry round: keys it reports
        warm are not claimed (and not waited for).  All still-cold keys
        are claimed atomically, or none are and the call waits for one
        of the blocking leases to release before retrying.
        """
        claimed = self._claim(list(dict.fromkeys(keys)), cold)
        try:
            yield
        finally:
            self._release(claimed)

    def _claim(self, keys: list[SweepKey],
               cold: Callable[[SweepKey], bool] | None) -> list[SweepKey]:
        with self._lock:
            self._counts["leases"] += 1
        waited = False
        while True:
            # the cold probe reads caches — keep it outside the registry
            # lock so slow probes don't serialize unrelated leases
            live = [k for k in keys if cold is None or cold(k)]
            with self._lock:
                busy = [self._inflight[k] for k in live
                        if k in self._inflight]
                if not busy:
                    for key in live:
                        self._inflight[key] = threading.Event()
                    if live:
                        self._counts["leads"] += 1
                    elif waited:
                        self._counts["joins"] += 1
                    return live
                self._counts["waits"] += 1
                event = busy[0]
            if not event.wait(timeout=self.wait_timeout):
                # leader stalled: proceed without the gate rather than
                # wedge the query behind it — worst case is a duplicated
                # sweep, which the caches absorb
                with self._lock:
                    self._counts["timeouts"] += 1
                return []
            waited = True

    def _release(self, claimed: list[SweepKey]) -> None:
        with self._lock:
            events = [self._inflight.pop(k) for k in claimed
                      if k in self._inflight]
        for event in events:
            event.set()

    def stats(self) -> dict:
        """Counters plus the current in-flight claim count."""
        with self._lock:
            out = dict(self._counts)
            out["inflight"] = len(self._inflight)
        return out
