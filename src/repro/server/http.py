"""The wire layer: minimal HTTP/1.1 and RFC 6455 websocket framing.

No web framework — the protocol surface the server needs is small
enough to implement directly on ``asyncio`` streams, and keeping the
framing logic in *pure* functions (:func:`encode_ws_frame`,
:class:`WsMessageAssembler`) makes the edge cases — fragmented
messages, interleaved ping/pong, masked client frames, oversized
payloads — unit-testable without a socket in sight.
"""

from __future__ import annotations

import base64
import hashlib
from dataclasses import dataclass, field

# RFC 6455 §1.3: fixed GUID appended to the client key before hashing
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_CONTROL_OPS = (OP_CLOSE, OP_PING, OP_PONG)

#: refuse assembled messages beyond this (64 MiB) — a malformed length
#: header must not make the server allocate unbounded memory
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 64 * 1024 * 1024


class ProtocolError(Exception):
    """Malformed HTTP request or websocket frame."""


# ----------------------------------------------------------------------
# HTTP/1.1
# ----------------------------------------------------------------------
@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict[str, str]       # header names lower-cased
    body: bytes

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def read_http_request(reader) -> HttpRequest | None:
    """Parse one HTTP/1.1 request from an asyncio stream.

    Returns ``None`` on a clean EOF before any bytes (client closed a
    keep-alive connection); raises :class:`ProtocolError` on garbage.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except Exception as exc:  # IncompleteReadError, LimitOverrunError
        partial = getattr(exc, "partial", b"")
        if not partial:
            return None
        raise ProtocolError("truncated HTTP request") from None
    if len(head) > _MAX_HEADER_BYTES:
        raise ProtocolError("HTTP header section too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, path, _ = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > _MAX_BODY_BYTES:
        raise ProtocolError(f"unacceptable content-length: {length}")
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def http_response(status: int, reason: str, body: bytes = b"",
                  content_type: str = "application/json",
                  extra_headers: dict[str, str] | None = None,
                  keep_alive: bool = True) -> bytes:
    headers = [f"HTTP/1.1 {status} {reason}",
               f"Content-Length: {len(body)}",
               f"Content-Type: {content_type}",
               f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body


# ----------------------------------------------------------------------
# RFC 6455 websocket framing (pure functions — unit-tested directly)
# ----------------------------------------------------------------------
def websocket_accept_key(client_key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((client_key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def handshake_response(client_key: str) -> bytes:
    return ("HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {websocket_accept_key(client_key)}"
            "\r\n\r\n").encode("latin-1")


def encode_ws_frame(payload: bytes, opcode: int = OP_TEXT, fin: bool = True,
                    mask: bytes | None = None) -> bytes:
    """Serialize one websocket frame.

    Servers send unmasked frames (``mask=None``); clients MUST mask
    (RFC 6455 §5.3) and pass their 4-byte masking key.
    """
    if opcode in _CONTROL_OPS and (len(payload) > 125 or not fin):
        raise ProtocolError("control frames must be short and unfragmented")
    head = bytearray([(0x80 if fin else 0) | opcode])
    mask_bit = 0x80 if mask is not None else 0
    n = len(payload)
    if n < 126:
        head.append(mask_bit | n)
    elif n < 1 << 16:
        head.append(mask_bit | 126)
        head += n.to_bytes(2, "big")
    else:
        head.append(mask_bit | 127)
        head += n.to_bytes(8, "big")
    if mask is not None:
        if len(mask) != 4:
            raise ProtocolError("masking key must be 4 bytes")
        head += mask
        payload = apply_mask(payload, mask)
    return bytes(head) + payload


def apply_mask(payload: bytes, mask: bytes) -> bytes:
    """XOR-mask/unmask a payload with a 4-byte key (involution)."""
    reps = -(-len(payload) // 4)
    return bytes(a ^ b for a, b in zip(payload, mask * reps))


@dataclass
class WsFrame:
    fin: bool
    opcode: int
    payload: bytes
    masked: bool = False


def decode_ws_frame(buf: bytes | bytearray) -> tuple[WsFrame, int] | None:
    """Decode one frame from the head of ``buf``.

    Returns ``(frame, bytes_consumed)``, or ``None`` if the buffer does
    not yet hold a complete frame (the caller reads more and retries).
    """
    if len(buf) < 2:
        return None
    b0, b1 = buf[0], buf[1]
    if b0 & 0x70:
        raise ProtocolError("RSV bits set without a negotiated extension")
    fin, opcode = bool(b0 & 0x80), b0 & 0x0F
    masked, n = bool(b1 & 0x80), b1 & 0x7F
    offset = 2
    if n == 126:
        if len(buf) < offset + 2:
            return None
        n = int.from_bytes(buf[offset:offset + 2], "big")
        offset += 2
    elif n == 127:
        if len(buf) < offset + 8:
            return None
        n = int.from_bytes(buf[offset:offset + 8], "big")
        offset += 8
    if n > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame payload of {n} bytes exceeds limit")
    mask = b""
    if masked:
        if len(buf) < offset + 4:
            return None
        mask = bytes(buf[offset:offset + 4])
        offset += 4
    if len(buf) < offset + n:
        return None
    payload = bytes(buf[offset:offset + n])
    if masked:
        payload = apply_mask(payload, mask)
    return (WsFrame(fin=fin, opcode=opcode, payload=payload, masked=masked),
            offset + n)


@dataclass
class WsMessageAssembler:
    """Incremental frame → message assembly (fragmentation, control frames).

    Feed raw bytes with :meth:`feed`; it returns a list of events:
    ``("text", str)`` / ``("binary", bytes)`` for completed messages,
    ``("ping", payload)`` (the caller answers with a pong),
    ``("pong", payload)`` and ``("close", payload)``.  Control frames
    may arrive *between* the fragments of a message (RFC 6455 §5.4) —
    they are surfaced immediately without disturbing reassembly.
    """

    require_mask: bool = True      # servers must refuse unmasked clients
    _buf: bytearray = field(default_factory=bytearray)
    _parts: list[bytes] = field(default_factory=list)
    _opcode: int | None = None     # opcode of the in-progress message

    def feed(self, data: bytes) -> list[tuple[str, object]]:
        self._buf += data
        events: list[tuple[str, object]] = []
        while True:
            decoded = decode_ws_frame(self._buf)
            if decoded is None:
                return events
            frame, consumed = decoded
            del self._buf[:consumed]
            events += self._on_frame(frame)

    def _on_frame(self, frame: WsFrame) -> list[tuple[str, object]]:
        if self.require_mask and not frame.masked:
            # RFC 6455 §5.1: a server MUST refuse unmasked client frames
            raise ProtocolError("client frames must be masked")
        if frame.opcode == OP_PING:
            return [("ping", frame.payload)]
        if frame.opcode == OP_PONG:
            return [("pong", frame.payload)]
        if frame.opcode == OP_CLOSE:
            return [("close", frame.payload)]
        if frame.opcode in (OP_TEXT, OP_BINARY):
            if self._opcode is not None:
                raise ProtocolError("new message before fragment finished")
            self._opcode = frame.opcode
        elif frame.opcode == OP_CONT:
            if self._opcode is None:
                raise ProtocolError("continuation frame with no message")
        else:
            raise ProtocolError(f"unknown opcode {frame.opcode:#x}")
        self._parts.append(frame.payload)
        if sum(map(len, self._parts)) > MAX_MESSAGE_BYTES:
            raise ProtocolError("assembled message exceeds size limit")
        if not frame.fin:
            return []
        payload, opcode = b"".join(self._parts), self._opcode
        self._parts, self._opcode = [], None
        if opcode == OP_TEXT:
            try:
                return [("text", payload.decode("utf-8"))]
            except UnicodeDecodeError:
                raise ProtocolError("invalid UTF-8 in text message") from None
        return [("binary", payload)]


# ----------------------------------------------------------------------
# asyncio-facing websocket wrapper
# ----------------------------------------------------------------------
class AsyncWebSocket:
    """A server-side websocket over asyncio streams.

    Thin: framing is delegated to the pure layer above; this class only
    pumps bytes and answers pings.  ``recv()`` returns the next text
    message, or ``None`` once the peer closes (a close frame is echoed
    back per RFC 6455 §5.5.1).
    """

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._assembler = WsMessageAssembler()
        self._pending: list[str] = []
        self._closed = False

    async def send_text(self, text: str) -> None:
        if self._closed:
            return
        self._writer.write(encode_ws_frame(text.encode("utf-8"), OP_TEXT))
        await self._writer.drain()

    async def recv(self) -> str | None:
        while True:
            if self._pending:
                return self._pending.pop(0)
            if self._closed:
                return None
            data = await self._reader.read(65536)
            if not data:
                self._closed = True
                return None
            for kind, payload in self._assembler.feed(data):
                if kind == "text":
                    self._pending.append(payload)
                elif kind == "ping":
                    self._writer.write(encode_ws_frame(payload, OP_PONG))
                    await self._writer.drain()
                elif kind == "close":
                    if not self._closed:
                        self._closed = True
                        self._writer.write(
                            encode_ws_frame(payload[:2], OP_CLOSE))
                        await self._writer.drain()
                    return None
                # pongs are heartbeat answers: nothing to do

    async def close(self, code: int = 1000) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.write(
                encode_ws_frame(code.to_bytes(2, "big"), OP_CLOSE))
            await self._writer.drain()
        except (ConnectionError, RuntimeError):
            pass
