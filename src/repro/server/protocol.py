"""JSON wire envelopes and the frame-over-JSON encoding.

Everything the server and client exchange is a single JSON object — an
*envelope* — with a ``type`` field:

HTTP (one-shot)
    ``POST /query`` body ``{"sql": ..., "client": ...}`` →
    ``{"type": "result", "frame": ..., "elapsed_s": ...}`` or
    ``{"type": "error", "code": ..., "message": ...}``.

Websocket (progressive)
    client → server: ``{"type": "query", "id": ..., "sql": ...}``,
    ``{"type": "cancel", "id": ...}``;
    server → client: ``{"type": "accepted", "id": ...}``, then
    ``{"type": "frame", "id": ..., "seq": n, "final": bool,
    "frame": ...}`` per processed block, closing with ``final: true``
    — or ``{"type": "cancelled", "id": ...}`` /
    ``{"type": "error", "id": ..., "code": ..., "message": ...}``.

Frames travel as ``{"columns": [...], "data": {col: [...]}}`` plus the
progress attributes (``records_processed``, ``converged``).  Python's
``repr``-shortest float serialization round-trips IEEE doubles exactly,
so a decoded frame compares equal (``Frame.__eq__``) to the original —
the server's bit-identity guarantee rides on this.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.util.frame import Frame

#: error codes carried by ``{"type": "error"}`` envelopes
ERR_BAD_REQUEST = "bad-request"    # malformed envelope / unparsable SQL
ERR_REJECTED = "rejected"          # admission control refused the query
ERR_QUERY = "query-error"          # the query raised while executing


def jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays to plain Python values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return value


def dumps(obj: Any) -> str:
    """Compact JSON with numpy values normalized."""
    return json.dumps(jsonable(obj), separators=(",", ":"))


def frame_payload(frame: Frame) -> dict:
    """Encode a :class:`Frame` (and its progress attributes) as JSON data."""
    return {
        "columns": frame.columns,
        "data": {name: jsonable(frame[name]) for name in frame.columns},
        "records_processed": int(getattr(frame, "records_processed", 0)),
        "converged": bool(getattr(frame, "converged", True)),
    }


def frame_from_payload(payload: dict) -> Frame:
    """Rebuild a :class:`Frame` from :func:`frame_payload` output."""
    frame = Frame({name: payload["data"][name]
                   for name in payload["columns"]})
    frame.records_processed = payload.get("records_processed", 0)
    frame.converged = payload.get("converged", True)
    return frame


def error_envelope(code: str, message: str, **extra: Any) -> dict:
    return {"type": "error", "code": code, "message": message, **extra}


def result_envelope(frame: Frame, elapsed_s: float) -> dict:
    return {"type": "result", "frame": frame_payload(frame),
            "elapsed_s": elapsed_s}


def frame_envelope(qid: str, seq: int, final: bool, frame: Frame) -> dict:
    return {"type": "frame", "id": qid, "seq": seq, "final": final,
            "frame": frame_payload(frame)}


def parse_envelope(raw: str | bytes) -> dict:
    """Decode one envelope; raise ``ValueError`` on malformed input."""
    try:
        obj = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON envelope: {exc}") from None
    if not isinstance(obj, dict):
        raise ValueError("envelope must be a JSON object")
    return obj
