"""The multi-tenant inspection server (DeepBase-as-a-service).

DeepBase frames deep neural inspection as declarative queries over
shared behavior/hypothesis relations; the natural end state is a
*service* many analysts query concurrently.  This package serves one
shared :class:`repro.session.Session` — one store, one scheduler pool,
shared memory tiers — to many clients over a wire protocol built from
the stdlib only (``asyncio`` + a minimal HTTP/1.1 + RFC 6455 websocket
layer):

* :mod:`repro.server.app` — :class:`InspectionServer`, the asyncio
  front end (``POST /query``, ``GET /stream`` websocket, ``GET /stats``)
  and :func:`serve_in_thread`, the embedding harness tests/benchmarks
  use.
* :mod:`repro.server.protocol` — the JSON envelopes and the
  frame-over-JSON encoding (bit-exact for float64: shortest-repr float
  round-trips are exact, so a streamed final frame equals direct
  execution).
* :mod:`repro.server.admission` — per-client quotas, bounded queueing
  and fair round-robin dispatch onto a bounded worker pool, so one
  tenant cannot starve the rest.
* :mod:`repro.server.dedup` — :class:`SweepRegistry`, the cross-query
  single-flight gate: concurrent queries needing the same cold forward
  sweep (model fingerprint, raw-extractor key, dataset hash) attach to
  one in-flight extraction instead of racing duplicates.
* :mod:`repro.server.http` — the wire layer (HTTP parsing, RFC 6455
  framing) as pure, separately-testable functions.
* :mod:`repro.server.client` — the stdlib client used by tests,
  examples and the load-generating benchmark.

Start one from the CLI::

    python -m repro serve --store behavior_store --db catalog.db

or embed it::

    from repro.server import InspectionServer, serve_in_thread
    with serve_in_thread(session) as server:
        client = InspectClient("127.0.0.1", server.port)
        frame = client.query("SELECT ... INSPECT ...")
"""

from repro.server.admission import AdmissionController, QuotaExceeded
from repro.server.app import InspectionServer, serve_in_thread
from repro.server.client import InspectClient
from repro.server.dedup import SweepRegistry

__all__ = [
    "AdmissionController",
    "InspectClient",
    "InspectionServer",
    "QuotaExceeded",
    "SweepRegistry",
    "serve_in_thread",
]
