"""A stdlib client for the inspection server.

Blocking and dependency-free (``http.client`` + a raw-socket websocket),
so tests, examples and the load-generating benchmark can hammer the
server without adding a client library.  The two query surfaces mirror
the server's:

* :meth:`InspectClient.query` — one-shot ``POST /query``; returns the
  final :class:`~repro.util.frame.Frame`.
* :meth:`InspectClient.stream` — websocket ``/stream``; yields
  ``(final, frame)`` pairs as blocks are processed.  Closing the
  iterator sends a ``cancel`` envelope — the server abandons the
  session stream and releases its scheduler work.

Server-side errors surface as :class:`ServerError` carrying the
structured code (``rejected``, ``bad-request``, ``query-error``).
"""

from __future__ import annotations

import base64
import http.client
import os
import socket
from collections.abc import Iterator

from repro.server import protocol
from repro.server.http import (OP_CLOSE, OP_PONG, OP_TEXT,
                               WsMessageAssembler, encode_ws_frame)
from repro.util.frame import Frame


class ServerError(Exception):
    """A structured error envelope from the server."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code


class InspectClient:
    """Talk to an :class:`~repro.server.app.InspectionServer`."""

    def __init__(self, host: str, port: int, client_id: str = "default",
                 timeout: float = 120.0):
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    # -- one-shot ------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = protocol.dumps(body).encode("utf-8") if body else None
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json",
                                  "X-Client-Id": self.client_id})
            response = conn.getresponse()
            envelope = protocol.parse_envelope(response.read())
        finally:
            conn.close()
        if envelope.get("type") == "error":
            raise ServerError(envelope.get("code", "error"),
                              envelope.get("message", ""))
        return envelope

    def query(self, sql: str) -> Frame:
        """Execute one statement; returns the final frame."""
        envelope = self._request("POST", "/query",
                                 {"sql": sql, "client": self.client_id})
        return protocol.frame_from_payload(envelope["frame"])

    def stats(self) -> dict:
        """The server's ``/stats`` snapshot."""
        return self._request("GET", "/stats")

    # -- streaming -----------------------------------------------------
    def stream(self, sql: str, qid: str = "q0") -> "StreamHandle":
        """Open a websocket and submit ``sql``; iterate the handle for
        ``(final, frame)`` pairs."""
        handle = StreamHandle(self.host, self.port, self.client_id,
                              timeout=self.timeout)
        handle.submit(qid, sql)
        return handle


class StreamHandle:
    """One websocket connection running streamed queries."""

    def __init__(self, host: str, port: int, client_id: str,
                 timeout: float = 120.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._assembler = WsMessageAssembler(require_mask=False)
        self._messages: list[str] = []
        self._qid: str | None = None
        self._closed = False
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        self._sock.sendall(
            (f"GET /stream HTTP/1.1\r\nHost: {host}:{port}\r\n"
             "Upgrade: websocket\r\nConnection: Upgrade\r\n"
             f"Sec-WebSocket-Key: {key}\r\nSec-WebSocket-Version: 13\r\n"
             f"X-Client-Id: {client_id}\r\n\r\n").encode("latin-1"))
        response = b""
        while b"\r\n\r\n" not in response:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ConnectionError("server closed during WS handshake")
            response += chunk
        head, _, rest = response.partition(b"\r\n\r\n")
        if b" 101 " not in head.split(b"\r\n", 1)[0]:
            raise ConnectionError(f"websocket upgrade refused: "
                                  f"{head.splitlines()[0]!r}")
        if rest:   # server bytes that arrived with the handshake
            self._messages += [p for k, p in self._assembler.feed(rest)
                               if k == "text"]

    def _send(self, envelope: dict) -> None:
        self._sock.sendall(encode_ws_frame(
            protocol.dumps(envelope).encode("utf-8"), OP_TEXT,
            mask=os.urandom(4)))

    def submit(self, qid: str, sql: str) -> None:
        self._qid = qid
        self._send({"type": "query", "id": qid, "sql": sql})
        accepted = self._next_message()
        if accepted.get("type") == "error":
            self.close()
            raise ServerError(accepted.get("code", "error"),
                              accepted.get("message", ""))

    def cancel(self) -> None:
        """Ask the server to abandon the in-flight stream."""
        if not self._closed and self._qid is not None:
            self._send({"type": "cancel", "id": self._qid})

    def _next_message(self) -> dict:
        while not self._messages:
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the websocket")
            for kind, payload in self._assembler.feed(data):
                if kind == "text":
                    self._messages.append(payload)
                elif kind == "ping":
                    self._sock.sendall(encode_ws_frame(
                        payload, OP_PONG, mask=os.urandom(4)))
                elif kind == "close":
                    self._closed = True
                    raise ConnectionError("server closed the websocket")
        return protocol.parse_envelope(self._messages.pop(0))

    def __iter__(self) -> Iterator[tuple[bool, Frame]]:
        """Yield ``(final, frame)`` until the stream finishes."""
        try:
            while True:
                msg = self._next_message()
                kind = msg.get("type")
                if kind == "frame":
                    frame = protocol.frame_from_payload(msg["frame"])
                    yield msg["final"], frame
                    if msg["final"]:
                        return
                elif kind == "cancelled":
                    return
                elif kind == "error":
                    raise ServerError(msg.get("code", "error"),
                                      msg.get("message", ""))
        finally:
            self.close()

    def results(self) -> list[tuple[bool, Frame]]:
        return list(self)

    def final_frame(self) -> Frame:
        """Drain the stream and return the final frame."""
        frames = self.results()
        if not frames or not frames[-1][0]:
            raise ServerError(protocol.ERR_QUERY,
                              "stream ended without a final frame")
        return frames[-1][1]

    def close(self) -> None:
        if self._closed:
            return
        try:
            self._sock.sendall(encode_ws_frame(
                (1000).to_bytes(2, "big"), OP_CLOSE, mask=os.urandom(4)))
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._closed = True

    def __enter__(self) -> "StreamHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
