"""Admission control: per-client quotas and fair dispatch.

The server multiplexes every client onto one shared
:class:`~repro.session.Session`, so the resource that needs protecting
is the bounded worker pool queries execute on.  Three layers:

* **Quotas** — each client may hold at most ``per_client_inflight``
  running queries and ``per_client_queue`` waiting ones; beyond that,
  submission raises :class:`QuotaExceeded` and the caller returns a
  structured ``rejected`` error frame instead of queueing unboundedly.
* **Fair dispatch** — waiting queries dispatch round-robin *across
  clients* (one pick per client per rotation), so a tenant that submits
  a burst of 100 queries cannot starve a tenant that submits one.
* **Bounded execution** — at most ``max_concurrent`` queries run at
  once, on a dedicated thread pool (session queries are blocking CPU
  work; they must not run on the event loop).

Jobs carry a ``threading.Event`` cancel flag.  Cancelling a *queued*
job drops it before it ever runs; cancelling a *running* streamed query
is observed by the streaming worker between frames (see
``app._stream_worker``), which abandons the session generator — the
scheduler work stops and the sweep-gate lease releases.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.server import protocol


class QuotaExceeded(Exception):
    """A client exceeded its admission quota; carries the error code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass
class _Job:
    client: str
    fn: Callable[[threading.Event], Any]
    future: "asyncio.Future"
    cancel_event: threading.Event = field(default_factory=threading.Event)


class _ClientState:
    __slots__ = ("queue", "in_flight", "counters")

    def __init__(self) -> None:
        self.queue: deque[_Job] = deque()
        self.in_flight = 0
        self.counters = {"submitted": 0, "completed": 0, "failed": 0,
                         "rejected": 0, "cancelled": 0}


class AdmissionController:
    """Quota + fair-queueing front of the shared worker pool.

    Owned and driven by the server's event loop; the public coroutine is
    :meth:`submit`, which resolves when the job finishes (or fails, or
    is cancelled while queued).
    """

    def __init__(self, max_concurrent: int = 4, per_client_inflight: int = 2,
                 per_client_queue: int = 8):
        self.max_concurrent = max_concurrent
        self.per_client_inflight = per_client_inflight
        self.per_client_queue = per_client_queue
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="repro-query")
        self._clients: dict[str, _ClientState] = {}
        self._rotation: deque[str] = deque()   # round-robin client order
        self._running = 0
        self._closed = False

    # -- submission (event-loop side) ----------------------------------
    def _state(self, client: str) -> _ClientState:
        state = self._clients.get(client)
        if state is None:
            state = self._clients[client] = _ClientState()
            self._rotation.append(client)
        return state

    def admit(self, client: str, fn: Callable[[threading.Event], Any],
              cancel_event: threading.Event | None = None) -> "asyncio.Future":
        """Queue ``fn`` for ``client``; returns the job's future.

        Raises :class:`QuotaExceeded` (and counts a rejection) when the
        client is at its queue-depth quota or the server is closing.
        """
        state = self._state(client)
        if self._closed:
            state.counters["rejected"] += 1
            raise QuotaExceeded(protocol.ERR_REJECTED, "server is closing")
        if len(state.queue) >= self.per_client_queue:
            state.counters["rejected"] += 1
            raise QuotaExceeded(
                protocol.ERR_REJECTED,
                f"client {client!r} queue depth limit "
                f"({self.per_client_queue}) reached")
        state.counters["submitted"] += 1
        job = _Job(client=client, fn=fn,
                   future=asyncio.get_running_loop().create_future())
        if cancel_event is not None:
            job.cancel_event = cancel_event
        state.queue.append(job)
        self._pump()
        return job.future

    async def submit(self, client: str, fn: Callable[[threading.Event], Any],
                     cancel_event: threading.Event | None = None) -> Any:
        """Admit ``fn`` and await its result."""
        return await self.admit(client, fn, cancel_event)

    # -- dispatch ------------------------------------------------------
    def _pump(self) -> None:
        """Fill free execution slots, one client per rotation step."""
        while self._running < self.max_concurrent:
            job = self._next_job()
            if job is None:
                return
            if job.cancel_event.is_set():      # cancelled while queued
                self._clients[job.client].counters["cancelled"] += 1
                if not job.future.done():
                    job.future.set_result(None)
                continue
            self._running += 1
            self._clients[job.client].in_flight += 1
            asyncio.get_running_loop().create_task(self._run_job(job))

    def _next_job(self) -> _Job | None:
        """Round-robin over clients with queued work and inflight room."""
        for _ in range(len(self._rotation)):
            client = self._rotation[0]
            self._rotation.rotate(-1)
            state = self._clients[client]
            if state.queue and state.in_flight < self.per_client_inflight:
                return state.queue.popleft()
        return None

    async def _run_job(self, job: _Job) -> None:
        loop = asyncio.get_running_loop()
        state = self._clients[job.client]
        try:
            result = await loop.run_in_executor(
                self._executor, job.fn, job.cancel_event)
        except BaseException as exc:
            if job.cancel_event.is_set():
                state.counters["cancelled"] += 1
            else:
                state.counters["failed"] += 1
            if not job.future.done():
                job.future.set_exception(exc)
        else:
            key = ("cancelled" if job.cancel_event.is_set()
                   else "completed")
            state.counters[key] += 1
            if not job.future.done():
                job.future.set_result(result)
        finally:
            self._running -= 1
            state.in_flight -= 1
            self._pump()

    # -- lifecycle / introspection -------------------------------------
    def close(self) -> None:
        """Reject new work and release the pool (blocking; call off-loop)."""
        self._closed = True
        self._executor.shutdown(wait=True)

    def stats(self) -> dict:
        """Aggregate and per-client admission counters."""
        per_client = {}
        totals = {"submitted": 0, "completed": 0, "failed": 0,
                  "rejected": 0, "cancelled": 0}
        for client, state in sorted(self._clients.items()):
            entry = dict(state.counters)
            entry["in_flight"] = state.in_flight
            entry["queued"] = len(state.queue)
            per_client[client] = entry
            for key in totals:
                totals[key] += state.counters[key]
        return {"totals": totals, "running": self._running,
                "max_concurrent": self.max_concurrent,
                "per_client": per_client}
