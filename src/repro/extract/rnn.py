"""Activation extraction for recurrent models (the Keras-extractor analogue).

Evaluates the model over record batches and returns per-symbol hidden-state
behaviors.  Batch size defaults to the paper's 512.  The behavior transform
is a read-time view over the raw sweep (see :mod:`repro.extract.base`), so
extractors differing only in ``transform`` share one forward pass.
"""

from __future__ import annotations

from repro.extract.base import Extractor


class RnnActivationExtractor(Extractor):
    """Extracts LSTM hidden states from models exposing ``hidden_states``."""

    def __init__(self, batch_size: int = 512, transform: str = "activation"):
        self.batch_size = batch_size
        self.transform = transform

    def n_units(self, model) -> int:
        return model.n_units

    def raw_states(self, model, records):
        return model.hidden_states(records)          # (b, ns, units)
