"""Activation extraction for recurrent models (the Keras-extractor analogue).

Evaluates the model over record batches and returns per-symbol hidden-state
behaviors.  Batch size defaults to the paper's 512.
"""

from __future__ import annotations

import numpy as np

from repro.extract.base import Extractor, apply_transform


class RnnActivationExtractor(Extractor):
    """Extracts LSTM hidden states from models exposing ``hidden_states``."""

    def __init__(self, batch_size: int = 512, transform: str = "activation"):
        self.batch_size = batch_size
        self.transform = transform

    def n_units(self, model) -> int:
        return model.n_units

    def extract(self, model, records: np.ndarray,
                hid_units: np.ndarray | list[int] | None = None) -> np.ndarray:
        if hid_units is not None:
            hid_units = np.asarray(hid_units, dtype=int)
        chunks: list[np.ndarray] = []
        for start in range(0, records.shape[0], self.batch_size):
            batch = records[start:start + self.batch_size]
            states = model.hidden_states(batch)          # (b, ns, units)
            states = apply_transform(states, self.transform)
            if hid_units is not None:
                states = states[:, :, hid_units]
            chunks.append(states.reshape(-1, states.shape[-1]))
        if not chunks:
            width = model.n_units if hid_units is None else len(hid_units)
            return np.empty((0, width))
        return np.concatenate(chunks, axis=0)
