"""Behavior extractors: turn models + records into behavior matrices.

The minimal extractor API from Section 5.1.2::

    extract(model, records, hid_units) -> behaviors

where ``behaviors`` is a numpy array with one row per symbol and one column
per hidden unit.  Extractors batch model evaluation (the paper's Keras batch
size) and support behavior transforms (activation magnitude vs. temporal
gradient), plus the block-streaming interface the online pipeline drives.
"""

from repro.extract.base import Extractor, HypothesisExtractor
from repro.extract.rnn import RnnActivationExtractor
from repro.extract.seq2seq import EncoderActivationExtractor

__all__ = [
    "EncoderActivationExtractor",
    "Extractor",
    "HypothesisExtractor",
    "RnnActivationExtractor",
]
