"""Encoder activation extraction for seq2seq models (PyTorch-extractor
analogue of Section 6.3: a custom extractor for the OpenNMT model).

``layer`` selects which encoder LSTM layer to read (the paper inspects
layer 0 and layer 1 separately, and both concatenated for the
"all 1000 units" analysis).  The raw sweep always captures every layer —
``layer`` is a read-time column view, so per-layer extractors over one
model share a single ``encoder_states`` pass.
"""

from __future__ import annotations

import numpy as np

from repro.extract.base import Extractor


class EncoderActivationExtractor(Extractor):
    """Reads hidden states from a :class:`repro.nn.seq2seq.Seq2SeqModel`.

    ``layer=None`` concatenates every encoder layer's units (layer-major
    column order); an integer selects a single layer.
    """

    view_attrs = frozenset({"transform", "layer"})

    def __init__(self, layer: int | None = None, batch_size: int = 256,
                 transform: str = "activation"):
        self.layer = layer
        self.batch_size = batch_size
        self.transform = transform

    def n_units(self, model) -> int:
        if self.layer is None:
            return model.n_units * model.n_layers
        return model.n_units

    def raw_width(self, model) -> int:
        return model.n_units * model.n_layers

    def raw_states(self, model, records):
        layer_states = model.encoder_states(records)   # list of (b, t, u)
        return np.concatenate(layer_states, axis=2)

    def view_states(self, model, records):
        # direct extraction of a pinned layer skips the all-layer concat
        # copy; the full-width concat only happens on the raw (store) path
        layer_states = model.encoder_states(records)
        if self.layer is None:
            return np.concatenate(layer_states, axis=2)
        return layer_states[self.layer]

    def view_columns(self, model) -> np.ndarray | None:
        if self.layer is None:
            return None
        width = model.n_units
        return np.arange(self.layer * width, (self.layer + 1) * width)
