"""Encoder activation extraction for seq2seq models (PyTorch-extractor
analogue of Section 6.3: a custom extractor for the OpenNMT model).

``layer`` selects which encoder LSTM layer to read (the paper inspects
layer 0 and layer 1 separately, and both concatenated for the
"all 1000 units" analysis).
"""

from __future__ import annotations

import numpy as np

from repro.extract.base import Extractor, apply_transform


class EncoderActivationExtractor(Extractor):
    """Reads hidden states from a :class:`repro.nn.seq2seq.Seq2SeqModel`.

    ``layer=None`` concatenates every encoder layer's units (layer-major
    column order); an integer selects a single layer.
    """

    def __init__(self, layer: int | None = None, batch_size: int = 256,
                 transform: str = "activation"):
        self.layer = layer
        self.batch_size = batch_size
        self.transform = transform

    def n_units(self, model) -> int:
        if self.layer is None:
            return model.n_units * model.n_layers
        return model.n_units

    def extract(self, model, records: np.ndarray,
                hid_units: np.ndarray | list[int] | None = None) -> np.ndarray:
        if hid_units is not None:
            hid_units = np.asarray(hid_units, dtype=int)
        chunks: list[np.ndarray] = []
        for start in range(0, records.shape[0], self.batch_size):
            batch = records[start:start + self.batch_size]
            layer_states = model.encoder_states(batch)   # list of (b, t, u)
            if self.layer is None:
                states = np.concatenate(layer_states, axis=2)
            else:
                states = layer_states[self.layer]
            states = apply_transform(states, self.transform)
            if hid_units is not None:
                states = states[:, :, hid_units]
            chunks.append(states.reshape(-1, states.shape[-1]))
        if not chunks:
            width = self.n_units(model) if hid_units is None else len(hid_units)
            return np.empty((0, width))
        return np.concatenate(chunks, axis=0)
