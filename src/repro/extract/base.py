"""Extractor protocol and the hypothesis-side extractor.

Unit extractors run the model; the hypothesis extractor runs hypothesis
functions.  Both emit "skinny and tall" matrices with ``n_records * ns``
rows, aligned row-for-row so measures can consume them directly.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.data.datasets import Dataset
from repro.hypotheses.base import HypothesisFunction

#: behavior transforms (Section 3: DeepBase is agnostic to the behavior
#: definition -- magnitude or temporal gradient of the activation).
_TRANSFORMS = ("activation", "gradient", "abs")


def apply_transform(states: np.ndarray, transform: str) -> np.ndarray:
    """Apply a behavior transform to (batch, time, units) activations."""
    if transform == "activation":
        return states
    if transform == "abs":
        return np.abs(states)
    if transform == "gradient":
        grad = np.diff(states, axis=1, prepend=states[:, :1])
        return grad
    raise ValueError(
        f"unknown behavior transform {transform!r}; expected {_TRANSFORMS}")


#: extractor attributes that never change the extracted behaviors
_EXECUTION_ONLY_ATTRS = frozenset({"batch_size"})


def _attr_identity(value) -> str:
    """Stable textual identity for a cache-key attribute.

    Arrays are hashed by content — their repr truncates past the print
    threshold, which would alias two different large unit selectors.
    """
    if isinstance(value, np.ndarray):
        digest = hashlib.sha1(
            np.ascontiguousarray(value).tobytes()).hexdigest()[:16]
        return f"ndarray{value.shape}:{digest}"
    return repr(value)


class Extractor:
    """Base class for unit-behavior extractors."""

    def extract(self, model, records: np.ndarray,
                hid_units: np.ndarray | list[int] | None = None) -> np.ndarray:
        """Behaviors for ``records``: (n_records * ns, n_selected_units)."""
        raise NotImplementedError

    def n_units(self, model) -> int:
        """Total number of inspectable units in the model."""
        raise NotImplementedError

    def cache_key(self) -> str:
        """Stable identity of the *behaviors* this extractor produces.

        Used by :class:`repro.core.cache.UnitBehaviorCache`: two extractor
        instances with the same key must extract identical behaviors from the
        same model.  The default folds in every constructor attribute except
        execution-only knobs (``batch_size``), so e.g. the ``transform`` and
        a layer selector are part of the key.
        """
        parts = [f"{k}={_attr_identity(v)}"
                 for k, v in sorted(vars(self).items())
                 if k not in _EXECUTION_ONLY_ATTRS and not k.startswith("_")]
        return f"{type(self).__name__}({', '.join(parts)})"


class HypothesisExtractor:
    """Evaluates hypothesis functions over dataset records.

    Output rows are symbol-major and aligned with unit extractors:
    row ``r * ns + t`` is record ``r``, symbol ``t``.
    """

    def __init__(self, hypotheses: list[HypothesisFunction]):
        self.hypotheses = hypotheses

    def extract(self, dataset: Dataset,
                indices: np.ndarray | list[int] | None = None) -> np.ndarray:
        if indices is None:
            indices = np.arange(dataset.n_records)
        columns = [h.extract(dataset, indices).reshape(-1)
                   for h in self.hypotheses]
        return np.stack(columns, axis=1) if columns else np.empty(
            (len(indices) * dataset.n_symbols, 0))

    @property
    def names(self) -> list[str]:
        return [h.name for h in self.hypotheses]
