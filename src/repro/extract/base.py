"""Extractor protocol and the hypothesis-side extractor.

Unit extractors run the model; the hypothesis extractor runs hypothesis
functions.  Both emit "skinny and tall" matrices with ``n_records * ns``
rows, aligned row-for-row so measures can consume them directly.

Extraction is split into a *raw sweep* and *read-time views*: a raw-capable
extractor runs the model once at full width (:meth:`Extractor.raw_states`)
and derives the behavior transform, a layer selection and the ``hid_units``
subset lazily (:meth:`Extractor.finalize_rows`).  Extractors that differ
only in those view attributes therefore share one ``model.hidden_states``
sweep — the unit-behavior cache and the persistent store both key entries
by :meth:`Extractor.raw_key` and store the raw activations exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.hypotheses.base import HypothesisFunction
from repro.util.identity import attr_identity as _attr_identity

#: behavior transforms (Section 3: DeepBase is agnostic to the behavior
#: definition -- magnitude or temporal gradient of the activation).
_TRANSFORMS = ("activation", "gradient", "abs")


def apply_transform(states: np.ndarray, transform: str) -> np.ndarray:
    """Apply a behavior transform to (batch, time, units) activations."""
    if transform == "activation":
        return states
    if transform == "abs":
        return np.abs(states)
    if transform == "gradient":
        grad = np.diff(states, axis=1, prepend=states[:, :1])
        return grad
    raise ValueError(
        f"unknown behavior transform {transform!r}; expected {_TRANSFORMS}")


#: extractor attributes that never change the extracted behaviors
_EXECUTION_ONLY_ATTRS = frozenset({"batch_size"})


def model_dtype(model) -> np.dtype:
    """The dtype the model's activations carry.

    Inferred from the first floating-point parameter so empty extractions
    match real ones (a float32 model must not emit float64 empties, which
    would concatenate and cache inconsistently).
    """
    params = getattr(model, "parameters", None)
    if callable(params):
        try:
            for param in params():
                value = getattr(param, "value", param)
                dtype = getattr(value, "dtype", None)
                if dtype is not None and np.issubdtype(dtype, np.floating):
                    return np.dtype(dtype)
        except (TypeError, AttributeError):
            pass
    return np.dtype(np.float64)


class Extractor:
    """Base class for unit-behavior extractors.

    Subclasses either override :meth:`extract` wholesale (opaque
    extractors), or implement :meth:`raw_states` (plus :meth:`n_units`,
    and :meth:`raw_width`/:meth:`view_columns` when the raw sweep is wider
    than the extractor's own unit space) and inherit batching, transforms
    and unit selection from this class.
    """

    #: attributes that parameterize read-time *views* over the raw sweep
    #: (applied by :meth:`finalize_rows`) rather than the sweep itself
    view_attrs: frozenset[str] = frozenset({"transform"})

    # -- the public protocol -------------------------------------------
    def extract(self, model, records: np.ndarray,
                hid_units: np.ndarray | list[int] | None = None) -> np.ndarray:
        """Behaviors for ``records``: (n_records * ns, n_selected_units)."""
        if not self.supports_raw:
            raise NotImplementedError
        if hid_units is not None:
            hid_units = np.asarray(hid_units, dtype=int)
        width = (self.n_units(model) if hid_units is None
                 else hid_units.shape[0])
        return self._sweep_batches(
            model, records, width,
            lambda batch: self._apply_views(
                self.view_states(model, batch), hid_units))

    def n_units(self, model) -> int:
        """Total number of inspectable units in the model."""
        raise NotImplementedError

    # -- the raw-sweep protocol ----------------------------------------
    @property
    def supports_raw(self) -> bool:
        """Whether this extractor separates the sweep from its views."""
        return type(self).raw_states is not Extractor.raw_states

    def raw_states(self, model, records: np.ndarray) -> np.ndarray:
        """One untransformed, full-width sweep: (batch, ns, raw_width)."""
        raise NotImplementedError

    def raw_width(self, model) -> int:
        """Column count of the raw sweep (>= ``n_units`` for layer views)."""
        return int(self.n_units(model))

    def view_columns(self, model) -> np.ndarray | None:
        """Raw-sweep columns this extractor reads (None = all of them)."""
        return None

    def view_states(self, model, records: np.ndarray) -> np.ndarray:
        """Untransformed states at this extractor's own width.

        The direct-extraction path goes through here so subclasses whose
        raw sweep is wider than their view (a layer-pinned seq2seq
        extractor) can avoid materializing columns the view drops; the
        default derives the view from the raw sweep.
        """
        states = self.raw_states(model, records)
        cols = self.view_columns(model)
        return states if cols is None else states[:, :, cols]

    def raw_rows(self, model, records: np.ndarray,
                 columns: np.ndarray | None = None) -> np.ndarray:
        """Flat raw rows (n_records * ns, raw_width) for caching/storage.

        ``columns`` narrows the *materialized* matrix to a raw-column
        subset (the model still computes every unit per batch, exactly as
        ``hid_units`` narrowing always worked).  Opaque extractors fall
        back to their own full-width extraction — their ``cache_key``
        doubles as the raw identity, so "raw" simply means "before unit
        selection" for them.
        """
        if not self.supports_raw:
            if columns is not None:
                raise ValueError(
                    "column narrowing requires a raw-capable extractor")
            return self.extract(model, records, hid_units=None)
        width = (self.raw_width(model) if columns is None
                 else int(columns.shape[0]))

        def flat_raw(batch: np.ndarray) -> np.ndarray:
            states = self.raw_states(model, batch)
            if columns is not None:
                states = states[:, :, columns]
            return states.reshape(-1, states.shape[-1])

        return self._sweep_batches(model, records, width, flat_raw)

    def finalize_rows(self, model, raw: np.ndarray, n_symbols: int,
                      hid_units: np.ndarray | list[int] | None = None
                      ) -> np.ndarray:
        """Read-time view: raw flat rows -> this extractor's behaviors.

        Applies the layer/column view, the behavior transform and the
        ``hid_units`` selection without touching the model, so K extractors
        differing only in those attributes share one stored sweep.
        """
        if hid_units is not None:
            hid_units = np.asarray(hid_units, dtype=int)
        if not self.supports_raw:
            return raw if hid_units is None else raw[:, hid_units]
        states = raw.reshape(-1, n_symbols, raw.shape[-1])
        cols = self.view_columns(model)
        if cols is not None:
            states = states[:, :, cols]
        return self._apply_views(states, hid_units)

    def raw_key(self) -> str:
        """Stable identity of the *raw sweep* this extractor runs.

        Excludes view attributes (``view_attrs``) on raw-capable
        extractors: two instances with the same raw key extract identical
        raw activations and may share one forward pass.  Opaque extractors
        return their full :meth:`cache_key` — nothing about them is
        sliceable after the fact.
        """
        if not self.supports_raw:
            return self.cache_key()
        skip = _EXECUTION_ONLY_ATTRS | self.view_attrs
        parts = [f"{k}={_attr_identity(v)}"
                 for k, v in sorted(vars(self).items())
                 if k not in skip and not k.startswith("_")]
        return f"{type(self).__name__}.raw({', '.join(parts)})"

    def cache_key(self) -> str:
        """Stable identity of the *behaviors* this extractor produces.

        Used by :class:`repro.core.cache.UnitBehaviorCache`: two extractor
        instances with the same key must extract identical behaviors from the
        same model.  The default folds in every constructor attribute except
        execution-only knobs (``batch_size``), so e.g. the ``transform`` and
        a layer selector are part of the key.
        """
        parts = [f"{k}={_attr_identity(v)}"
                 for k, v in sorted(vars(self).items())
                 if k not in _EXECUTION_ONLY_ATTRS and not k.startswith("_")]
        return f"{type(self).__name__}({', '.join(parts)})"

    # -- shared plumbing ------------------------------------------------
    def _batch_size(self, records: np.ndarray) -> int:
        size = int(getattr(self, "batch_size", 0) or 0)
        return size if size > 0 else max(1, records.shape[0])

    def _sweep_batches(self, model, records: np.ndarray, empty_width: int,
                       per_batch) -> np.ndarray:
        """One batched pass over ``records``; the direct and raw paths
        share this loop so batching and the empty-input dtype rule cannot
        diverge between them."""
        batch = self._batch_size(records)
        chunks = [per_batch(records[start:start + batch])
                  for start in range(0, records.shape[0], batch)]
        if not chunks:
            return np.empty((0, empty_width), dtype=model_dtype(model))
        return np.concatenate(chunks, axis=0)

    def _apply_views(self, states: np.ndarray,
                     hid_units: np.ndarray | None) -> np.ndarray:
        """Transform + unit selection over already-view-sliced states."""
        states = apply_transform(states,
                                 getattr(self, "transform", "activation"))
        if hid_units is not None:
            states = states[:, :, hid_units]
        return states.reshape(-1, states.shape[-1])


# ----------------------------------------------------------------------
# protocol adapters: any object with extract()/n_units() can be used as an
# extractor; these helpers supply the raw-sweep API with safe fallbacks
# ----------------------------------------------------------------------
def raw_key_of(extractor) -> str:
    """``extractor.raw_key()`` with a ``cache_key()`` fallback.

    An extractor exposing neither has no stable identity: raise instead of
    inventing one — an address-derived key would be recycled within a
    process and meaningless (or worse, aliasable) once persisted.
    """
    fn = getattr(extractor, "raw_key", None)
    if callable(fn):
        return fn()
    fn = getattr(extractor, "cache_key", None)
    if callable(fn):
        return fn()
    raise AttributeError(
        f"{type(extractor).__name__} exposes neither raw_key() nor "
        "cache_key(); behavior caching/persistence needs a stable "
        "extractor identity")


def raw_rows_of(extractor, model, records: np.ndarray,
                columns: np.ndarray | None = None) -> np.ndarray:
    """Raw rows via the protocol, however much of it exists.

    ``columns`` narrows the materialized sweep to a subset of raw columns
    (only supported by raw-capable extractors; callers pass it only when
    they computed it from the extractor's own view metadata).
    """
    fn = getattr(extractor, "raw_rows", None)
    if callable(fn):
        return fn(model, records, columns=columns)
    if columns is not None:
        raise ValueError("column narrowing requires a raw-capable extractor")
    return extractor.extract(model, records, hid_units=None)


def finalize_rows_of(extractor, model, raw: np.ndarray, n_symbols: int,
                     hid_units=None) -> np.ndarray:
    """Read-time view via the protocol; plain column selection otherwise."""
    fn = getattr(extractor, "finalize_rows", None)
    if callable(fn):
        return fn(model, raw, n_symbols, hid_units=hid_units)
    if hid_units is None:
        return raw
    return raw[:, np.asarray(hid_units, dtype=int)]


class HypothesisExtractor:
    """Evaluates hypothesis functions over dataset records.

    Output rows are symbol-major and aligned with unit extractors:
    row ``r * ns + t`` is record ``r``, symbol ``t``.
    """

    def __init__(self, hypotheses: list[HypothesisFunction]):
        self.hypotheses = hypotheses

    def extract(self, dataset: Dataset,
                indices: np.ndarray | list[int] | None = None) -> np.ndarray:
        if indices is None:
            indices = np.arange(dataset.n_records)
        columns = [h.extract(dataset, indices).reshape(-1)
                   for h in self.hypotheses]
        return np.stack(columns, axis=1) if columns else np.empty(
            (len(indices) * dataset.n_symbols, 0))

    @property
    def names(self) -> list[str]:
        return [h.name for h in self.hypotheses]
