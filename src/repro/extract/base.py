"""Extractor protocol and the hypothesis-side extractor.

Unit extractors run the model; the hypothesis extractor runs hypothesis
functions.  Both emit "skinny and tall" matrices with ``n_records * ns``
rows, aligned row-for-row so measures can consume them directly.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.hypotheses.base import HypothesisFunction

#: behavior transforms (Section 3: DeepBase is agnostic to the behavior
#: definition -- magnitude or temporal gradient of the activation).
_TRANSFORMS = ("activation", "gradient", "abs")


def apply_transform(states: np.ndarray, transform: str) -> np.ndarray:
    """Apply a behavior transform to (batch, time, units) activations."""
    if transform == "activation":
        return states
    if transform == "abs":
        return np.abs(states)
    if transform == "gradient":
        grad = np.diff(states, axis=1, prepend=states[:, :1])
        return grad
    raise ValueError(
        f"unknown behavior transform {transform!r}; expected {_TRANSFORMS}")


class Extractor:
    """Base class for unit-behavior extractors."""

    def extract(self, model, records: np.ndarray,
                hid_units: np.ndarray | list[int] | None = None) -> np.ndarray:
        """Behaviors for ``records``: (n_records * ns, n_selected_units)."""
        raise NotImplementedError

    def n_units(self, model) -> int:
        """Total number of inspectable units in the model."""
        raise NotImplementedError


class HypothesisExtractor:
    """Evaluates hypothesis functions over dataset records.

    Output rows are symbol-major and aligned with unit extractors:
    row ``r * ns + t`` is record ``r``, symbol ``t``.
    """

    def __init__(self, hypotheses: list[HypothesisFunction]):
        self.hypotheses = hypotheses

    def extract(self, dataset: Dataset,
                indices: np.ndarray | list[int] | None = None) -> np.ndarray:
        if indices is None:
            indices = np.arange(dataset.n_records)
        columns = [h.extract(dataset, indices).reshape(-1)
                   for h in self.hypotheses]
        return np.stack(columns, axis=1) if columns else np.empty(
            (len(indices) * dataset.n_symbols, 0))

    @property
    def names(self) -> list[str]:
        return [h.name for h in self.hypotheses]
