"""Human and JSON rendering of an analysis run."""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding


def render_text(findings: list[Finding], *, n_files: int,
                n_grandfathered: int = 0) -> str:
    """The human report: one block per finding plus a summary line."""
    parts = [item.format() for item in findings]
    if findings:
        by_checker = Counter(item.checker for item in findings)
        breakdown = ", ".join(f"{checker}: {count}" for checker, count
                              in sorted(by_checker.items()))
        summary = (f"{len(findings)} finding"
                   f"{'s' if len(findings) != 1 else ''} "
                   f"({breakdown}) in {n_files} files")
    else:
        summary = f"clean: 0 findings in {n_files} files"
    if n_grandfathered:
        summary += f" [{n_grandfathered} grandfathered by baseline]"
    parts.append(summary)
    return "\n".join(parts)


def report_dict(findings: list[Finding], *, n_files: int,
                n_grandfathered: int = 0,
                paths: list[str] | None = None) -> dict:
    return {
        "files_analyzed": n_files,
        "paths": list(paths or []),
        "grandfathered": n_grandfathered,
        "findings": [item.to_dict() for item in findings],
    }


def write_json(path: str | Path, findings: list[Finding], *, n_files: int,
               n_grandfathered: int = 0,
               paths: list[str] | None = None) -> None:
    payload = report_dict(findings, n_files=n_files,
                          n_grandfathered=n_grandfathered, paths=paths)
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
