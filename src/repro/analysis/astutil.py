"""Small AST helpers shared by the checkers."""

from __future__ import annotations

import ast
from collections.abc import Iterator

_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee (``os.replace`` for os.replace(...))."""
    return dotted_name(node.func)


def last_part(name: str | None) -> str:
    return (name or "").rsplit(".", 1)[-1]


def functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every function/method definition anywhere in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, _SCOPES):
            yield node


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested def/class.

    The node itself is yielded first; nested function and class bodies
    are skipped so per-function rules (e.g. "fsync before rename in the
    same function") see exactly one scope.
    """
    yield node
    stack = [child for child in ast.iter_child_nodes(node)]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (*_SCOPES, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


def classes(tree: ast.AST) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, _SCOPES):
            yield node


def param_names(fn: ast.FunctionDef) -> set[str]:
    args = fn.args
    names = [a.arg for a in (*args.posonlyargs, *args.args,
                             *args.kwonlyargs)]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


def is_constant_expr(node: ast.AST) -> bool:
    """Literals and literal containers (safe to repr for identity)."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return all(is_constant_expr(elt) for elt in node.elts)
    if isinstance(node, ast.Dict):
        return all(k is not None and is_constant_expr(k)
                   and is_constant_expr(v)
                   for k, v in zip(node.keys, node.values))
    return False


def unparse(node: ast.AST, max_len: int = 60) -> str:
    text = ast.unparse(node)
    if len(text) > max_len:
        text = text[:max_len - 3] + "..."
    return text
