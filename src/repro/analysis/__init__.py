"""Repo-specific static analysis: AST checkers for invariants PRs 1-7 built.

``python -m repro.analysis [paths]`` walks every ``.py`` file under the
given paths (default ``src/``), runs each registered checker over the
parsed AST, and reports findings as ``path:line:col: REPnnn[name]
message`` plus a fix hint.  Exit code 0 means clean, 1 means new
findings, 2 means usage error.  ``--json`` writes a machine-readable
report; ``--baseline`` grandfathers pre-existing findings (matched on
``(path, checker, message)`` with counts, never line numbers).

The checkers encode invariants that generic linters cannot see because
they are *this repo's* correctness contracts:

========  ======================  =============================================
id        name                    invariant
========  ======================  =============================================
REP001    atomic-commit           fsync before os.rename/os.replace in
                                  store/ and db/storage/ commit paths
REP002    lock-order              consistent lock acquisition order; no
                                  callbacks invoked while holding a lock
REP003    address-free-identity   no id()/hash()/repr() of arbitrary
                                  objects in identity/key/fingerprint code
REP004    shard-picklable         Shard*Task dataclass fields pickle-safe
                                  by construction
REP005    silent-degradation      except-Exception fallbacks must call the
                                  degraded() hook or re-raise
REP006    counter-fold-symmetry   stats()/reset_counters()/fold_counts()
                                  key sets agree per class
REP007    lifecycle               classes owning pools/mmaps/file handles
                                  define close()/shutdown()/__exit__
REP008    extractor-protocol      Extractor subclasses override a coherent
                                  raw-sweep method set
========  ======================  =============================================

Suppressing a reviewed finding
------------------------------

Add ``# repro: allow[REP003]`` (comma-separated ids, or ``*``) on the
flagged line, with the justification in the surrounding comment.  For
findings that predate a checker, prefer the committed baseline
(``--write-baseline``) so the debt stays visible in one reviewed file.

Adding a checker
----------------

1. Create ``src/repro/analysis/checkers/<name>.py``.  Subclass
   :class:`repro.analysis.driver.Checker`, set ``id`` (the next free
   ``REPnnn`` code — ids are stable, never reuse one), ``name``,
   ``description`` and ``hint``, and decorate with
   :func:`repro.analysis.registry.register`::

       @register
       class MyChecker(Checker):
           id = "REP009"
           name = "my-invariant"
           description = "one line for --list"
           hint = "how to fix it"

           def visit_file(self, ctx):
               for node in ast.walk(ctx.tree):
                   ...
                   yield self.finding(ctx, node, "what is wrong")

   ``visit_file`` runs once per file and yields findings anchored to AST
   nodes.  Checkers needing cross-file state (like the lock graph)
   accumulate it in ``visit_file`` and yield from ``finalize()``; anchor
   those findings with ``self.finding(display_path, line, ...)``.
2. Import the module from ``checkers/__init__.py`` (imports are what
   populate the registry).
3. Scope path-specific checkers with ``ctx.in_scope("store", ...)`` —
   true when the path contains a tag or the file opts in via a
   ``# analysis-scope: store`` comment in its first ten lines (how test
   fixtures enter scoped checkers).
4. Add a good/bad fixture pair under ``tests/analysis_fixtures/`` and a
   case in ``tests/test_analysis.py`` proving the bad fixture is flagged
   on the marked line and the good one is clean.  Mark expected lines
   with a trailing ``# expect[REPnnn]`` comment so the test stays
   line-number-agnostic.
5. Run ``python -m repro.analysis src/ tests/`` and fix, suppress or
   baseline what the new checker reports — a checker that has never
   found anything real is not pulling its weight.

Keep messages line-free and specific (they are baseline keys: stable
under reshuffling, unique per defect), and write the docstring as the
invariant's documentation — why it holds, what breaks when it doesn't.
"""

from repro.analysis.baseline import (apply_baseline, load_baseline,
                                     write_baseline)
from repro.analysis.driver import (Checker, FileContext, analyze_paths,
                                   iter_python_files)
from repro.analysis.findings import Finding
from repro.analysis.registry import checker_classes, create_checkers, register
from repro.analysis.report import render_text, report_dict, write_json

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "analyze_paths",
    "apply_baseline",
    "checker_classes",
    "create_checkers",
    "iter_python_files",
    "load_baseline",
    "register",
    "render_text",
    "report_dict",
    "write_baseline",
    "write_json",
]
