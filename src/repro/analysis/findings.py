"""The :class:`Finding` record every checker emits.

A finding pins a defect to ``path:line:col``, names the checker that
produced it, and carries a one-line message plus a fix hint.  Messages
deliberately contain **no line numbers** — the committed baseline matches
findings by ``(path, checker, message)``, so grandfathered findings stay
matched while unrelated edits shift them around the file.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One checker hit at a source location."""

    checker: str            # checker id, e.g. "REP001"
    path: str               # display path (relative when under the cwd)
    line: int               # 1-indexed
    col: int                # 0-indexed, as in the ast module
    message: str            # what is wrong (stable: never embeds lines)
    hint: str = ""          # how to fix it
    name: str = field(default="", compare=False)  # checker short name

    def baseline_key(self) -> tuple[str, str, str]:
        """The identity the baseline matches on (line numbers excluded)."""
        return (self.path, self.checker, self.message)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.checker, self.message)

    def format(self) -> str:
        label = f"{self.checker}[{self.name}]" if self.name else self.checker
        text = f"{self.path}:{self.line}:{self.col + 1}: {label} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        return {"checker": self.checker, "name": self.name,
                "path": self.path, "line": self.line, "col": self.col,
                "message": self.message, "hint": self.hint}
