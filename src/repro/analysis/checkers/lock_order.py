"""REP002: lock-order consistency and no callbacks under a held lock.

The cache tiers, the disk store and the pager each nest locks (e.g. the
store's in-process ``self._lock`` around the inter-process
``self._write_lock()``).  Deadlock safety rests on two hand-enforced
rules this checker makes static:

* **One global acquisition order.**  Build the per-class lock graph —
  an edge A -> B whenever B is acquired (lexically, or via a same-class
  method call one level deep) while A is held — and flag any cycle.  A
  self-edge is the degenerate case: re-acquiring a non-reentrant
  ``threading.Lock`` the caller already holds deadlocks instantly.
* **No user callbacks under a lock.**  Calling a function that arrived
  as a *parameter* while holding a lock hands lock-holding control to
  arbitrary user code, which can re-enter the cache and deadlock (or
  block every other reader for an unbounded time).

A ``with`` item counts as a lock when its expression mentions ``lock``
(``self._lock``, ``self._write_lock()``, ...); multi-item withs acquire
left to right.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.astutil import (classes, dotted_name, methods,
                                    param_names, walk_scope)
from repro.analysis.driver import Checker, FileContext
from repro.analysis.registry import register

_LOCKISH = re.compile(r"lock", re.IGNORECASE)


def _lock_label(expr: ast.AST) -> str | None:
    """Normalized lock name for a with-item, or None if not a lock."""
    if isinstance(expr, ast.Call):
        inner = _lock_label(expr.func)
        return f"{inner}()" if inner is not None else None
    name = dotted_name(expr)
    if name is None or not _LOCKISH.search(name):
        return None
    if name.startswith("self."):
        name = name[len("self."):]
    return name


@register
class LockOrderChecker(Checker):
    id = "REP002"
    name = "lock-order"
    description = ("lock acquisition graph must be cycle-free; no "
                   "callbacks invoked while holding a lock")
    hint = ("acquire locks in one global order everywhere (or release "
            "before re-entering); move callback invocations outside the "
            "locked region")

    def __init__(self):
        # (class node id) -> acquired lock labels, per method
        self._edges: dict[tuple[str, str], tuple[str, int, int]] = {}

    def visit_file(self, ctx: FileContext):
        for cls in classes(ctx.tree):
            yield from self._check_class(ctx, cls)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef):
        prefix = f"{cls.name}."
        # pass 1: which locks does each method acquire directly?
        direct: dict[str, set[str]] = {}
        for fn in methods(cls):
            acquired = set()
            for node in walk_scope(fn):
                if isinstance(node, ast.With):
                    for item in node.items:
                        label = _lock_label(item.context_expr)
                        if label is not None:
                            acquired.add(label)
            direct[fn.name] = acquired
        # pass 2: edges from nesting and same-class calls under a lock
        for fn in methods(cls):
            params = param_names(fn) - {"self", "cls"}
            for node in walk_scope(fn):
                if not isinstance(node, ast.With):
                    continue
                held = [_lock_label(item.context_expr)
                        for item in node.items]
                held = [label for label in held if label is not None]
                if not held:
                    continue
                # multi-item with: left acquires before right
                for first, second in zip(held, held[1:]):
                    self._add_edge(ctx, prefix, first, second, node)
                outermost = held[0]
                for inner in ast.walk(node):
                    if inner is node:
                        continue
                    if isinstance(inner, ast.With):
                        for item in inner.items:
                            label = _lock_label(item.context_expr)
                            if label is not None:
                                self._add_edge(ctx, prefix, outermost,
                                               label, inner)
                    if isinstance(inner, ast.Call):
                        callee = dotted_name(inner.func)
                        if callee is None:
                            continue
                        if callee in params:
                            yield self.finding(
                                ctx, inner,
                                f"callback parameter {callee!r} of "
                                f"{cls.name}.{fn.name} is invoked while "
                                f"holding {prefix}{outermost}")
                        if callee.startswith("self."):
                            method = callee[len("self."):]
                            for label in direct.get(method, ()):
                                self._add_edge(ctx, prefix, outermost,
                                               label, inner)

    def _add_edge(self, ctx: FileContext, prefix: str, src: str, dst: str,
                  node: ast.AST) -> None:
        edge = (prefix + src, prefix + dst)
        if edge not in self._edges:
            self._edges[edge] = (ctx.display_path, node.lineno,
                                 node.col_offset)

    def finalize(self):
        graph: dict[str, set[str]] = {}
        for src, dst in self._edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        # self-edges: immediate deadlock on a non-reentrant Lock
        reported: set[frozenset] = set()
        for (src, dst), (path, line, col) in sorted(self._edges.items(),
                                                    key=lambda kv: kv[1]):
            if src == dst:
                key = frozenset((src,))
                if key not in reported:
                    reported.add(key)
                    yield self._cycle_finding(
                        path, line, col,
                        f"{src} is re-acquired while already held "
                        f"(deadlock on a non-reentrant Lock)")
        for cycle in self._cycles(graph):
            key = frozenset(cycle)
            if len(cycle) < 2 or key in reported:
                continue
            reported.add(key)
            edge = (cycle[0], cycle[1])
            path, line, col = self._edges.get(
                edge, next(iter(self._edges.values())))
            chain = " -> ".join([*cycle, cycle[0]])
            yield self._cycle_finding(
                path, line, col,
                f"inconsistent lock order: {chain} (some code path "
                f"acquires these locks in the opposite order)")

    def _cycle_finding(self, path: str, line: int, col: int, message: str):
        from repro.analysis.findings import Finding
        return Finding(checker=self.id, name=self.name, path=path,
                       line=line, col=col, message=message, hint=self.hint)

    @staticmethod
    def _cycles(graph: dict[str, set[str]]) -> list[list[str]]:
        """Elementary cycles via DFS (graphs here are tiny)."""
        cycles: list[list[str]] = []
        for start in sorted(graph):
            stack = [(start, [start])]
            while stack:
                node, trail = stack.pop()
                for nxt in sorted(graph.get(node, ())):
                    if nxt == start and len(trail) > 1:
                        cycles.append(list(trail))
                    elif nxt not in trail and nxt > start:
                        # only walk nodes ordered after start: each cycle
                        # is then found exactly once, from its minimum
                        stack.append((nxt, trail + [nxt]))
        return cycles
