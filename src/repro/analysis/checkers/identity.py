"""REP003: address-free identity in cache-key and fingerprint code.

PR 4's identity bug class: a cache key built from ``id()``, ``hash()`` or
a default ``object.__repr__`` embeds a process-local address (or a
hash-seed-dependent value).  The key then never matches across processes
— defeating the persistent store — or worse, *aliases* after address
reuse, serving one object's cached behaviors for another.  The fix
(``util/identity.py``) renders content, never addresses; this checker
keeps every key path that way.

Scope: functions whose name mentions ``identity``/``key``/
``fingerprint``/``hash`` (the key-producing paths), repo-wide.  Inside
them:

* ``id(x)`` — always address-derived; recycled after GC, so it aliases.
* ``hash(x)`` — PYTHONHASHSEED-dependent for strings, address-derived by
  default for objects.
* ``repr(x)`` / f-string ``{x!r}`` on a non-literal — falls back to
  ``object.__repr__`` (an address) for arbitrary objects, and numpy
  truncates large-array reprs so distinct values alias.

Reviewed-and-safe uses (e.g. repr of a value already proven primitive)
carry ``# repro: allow[REP003]`` with the justification alongside.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.astutil import (call_name, functions, is_constant_expr,
                                    unparse, walk_scope)
from repro.analysis.driver import Checker, FileContext
from repro.analysis.registry import register

_KEY_FN = re.compile(r"identity|key(?!word)|fingerprint|hash", re.IGNORECASE)
_BANNED_CALLS = {"id": "process-local address, recycled after gc",
                 "hash": "hash-seed and address dependent"}


@register
class AddressFreeIdentityChecker(Checker):
    id = "REP003"
    name = "address-free-identity"
    description = ("no id()/hash()/repr() of arbitrary objects inside "
                   "identity/key/fingerprint functions")
    hint = ("render content instead: repro.util.identity.attr_identity, "
            "hashes of bytes, or obj.cache_key()")

    def visit_file(self, ctx: FileContext):
        for fn in functions(ctx.tree):
            if not _KEY_FN.search(fn.name):
                continue
            where = f"{fn.name}()"
            for node in walk_scope(fn):
                # nested lambdas run in this key path too (sort keys!)
                if isinstance(node, ast.Lambda):
                    for sub in ast.walk(node):
                        yield from self._check_node(ctx, sub, where)
                else:
                    yield from self._check_node(ctx, node, where)

    def _check_node(self, ctx: FileContext, node: ast.AST, where: str):
        if isinstance(node, ast.Call):
            callee = call_name(node)
            if callee in _BANNED_CALLS and node.args:
                yield self.finding(
                    ctx, node,
                    f"{callee}({unparse(node.args[0])}) inside {where} is "
                    f"not address-free ({_BANNED_CALLS[callee]})")
            elif callee == "repr" and node.args \
                    and not is_constant_expr(node.args[0]):
                yield self.finding(
                    ctx, node,
                    f"repr({unparse(node.args[0])}) inside {where} may "
                    f"fall back to object.__repr__ (embeds an address)")
            elif callee is not None and callee.endswith("object.__repr__"):
                yield self.finding(
                    ctx, node,
                    f"object.__repr__ used inside {where} embeds the "
                    f"object's address")
        elif isinstance(node, ast.FormattedValue) \
                and node.conversion == ord("r") \
                and not is_constant_expr(node.value):
            yield self.finding(
                ctx, node,
                f"f-string {{{unparse(node.value)}!r}} inside {where} may "
                f"fall back to object.__repr__ (embeds an address)")
