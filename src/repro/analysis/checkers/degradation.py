"""REP005: silent-degradation hygiene for broad exception fallbacks.

The shard, store and planner layers degrade gracefully by design: an
unpicklable model stays inline, a vanished shard re-extracts, an
unserializable table goes memory-only.  The danger is *silent*
degradation — an ``except Exception:`` whose body just passes, continues
or returns turns a real regression (every model suddenly failing to
encode; every worker dying) into an invisible slow path that still
produces correct results, so nothing ever surfaces it.

Rule: a handler catching ``Exception``/``BaseException`` (or a bare
``except:``) must either re-raise or route through an observability
call — the :func:`repro.util.debuglog.degraded` hook (or logging/
warnings/print).  Typed handlers (``except OSError:``) are exempt: they
document the one failure they absorb.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.astutil import dotted_name, last_part
from repro.analysis.driver import Checker, FileContext
from repro.analysis.registry import register

_BROAD = {"Exception", "BaseException"}
_OBSERVABLE_CALL = re.compile(
    r"degrad|warn|print|debug|info|error|exception|critical|fail|record"
    r"|^log", re.IGNORECASE)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except
        return True
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in types:
        if last_part(dotted_name(node)) in _BROAD:
            return True
    return False


def _is_observable(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = last_part(dotted_name(node.func))
            if name and _OBSERVABLE_CALL.search(name):
                return True
    return False


@register
class SilentDegradationChecker(Checker):
    id = "REP005"
    name = "silent-degradation"
    description = ("except Exception fallbacks must re-raise or call the "
                   "repro.util.debuglog.degraded hook")
    hint = ("call repro.util.debuglog.degraded('<event>', detail, exc=exc) "
            "in the handler (or narrow the except to the one expected "
            "exception type)")

    def visit_file(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node) or _is_observable(node):
                continue
            caught = ("bare except" if node.type is None
                      else f"except {ast.unparse(node.type)}")
            yield self.finding(
                ctx, node,
                f"{caught} degrades silently (no raise and no "
                f"degraded()/logging call in the handler)")
