"""REP009: forward-kernel allocation discipline in nn/ code.

The forward-sweep kernel layer (PR 9) earns its speed from two
allocation rules that silently erode under later edits:

* **No dense one-hot materialization on inference paths.**  Scattering
  ``1.0`` into a zeros tensor (``np.put_along_axis(x, ids, 1.0, ...)``)
  rebuilds the ``(batch, time, vocab)`` one-hot that
  :func:`repro.nn.kernels.gather_projection` exists to avoid — the
  one-hot @ ``w_x`` matmul is the single largest cost of the pre-kernel
  sweep.  Only the training path may keep it (BPTT's weight gradient
  needs the dense input); mark such sites with
  ``# repro: allow[REP009]``.

* **Scratch buffers must pin a dtype.**  ``np.empty(shape)`` /
  ``np.zeros(shape)`` default to float64, so a float32 model's sweep
  quietly upcasts and doubles its memory traffic.  Kernel-path buffers
  must pass ``dtype=`` (normally the parameter dtype); ``*_like``
  allocators inherit one and are exempt.

Scoped to ``repro/nn`` paths (fixtures opt in via
``# analysis-scope: nn-kernels``).
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import call_name
from repro.analysis.driver import Checker, FileContext
from repro.analysis.registry import register

_ALLOCATORS = {"empty", "zeros"}
_NUMPY_BASES = {"np", "numpy"}


def _numpy_call(node: ast.Call) -> str | None:
    """The bare numpy function name for ``np.foo(...)`` calls, else None."""
    name = call_name(node)
    if name is None or "." not in name:
        return None
    base, _, func = name.rpartition(".")
    return func if base in _NUMPY_BASES else None


def _is_one(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and not isinstance(node.value, bool)
            and node.value in (1, 1.0))


@register
class ForwardKernelAllocChecker(Checker):
    id = "REP009"
    name = "forward-kernel-allocs"
    description = ("nn/ kernel paths must not materialize dense one-hots "
                   "or allocate dtype-less scratch")
    hint = ("gather rows with kernels.gather_projection instead of a "
            "one-hot matmul, and pass dtype= (the parameter dtype) to "
            "np.empty/np.zeros scratch buffers")

    def visit_file(self, ctx: FileContext):
        if not ctx.in_scope("repro/nn", "nn-kernels"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = _numpy_call(node)
            if func == "put_along_axis":
                # np.put_along_axis(x, ids, 1.0, axis) scatters ones: the
                # dense one-hot encoding gather_projection replaces
                values = (node.args[2] if len(node.args) > 2 else
                          next((kw.value for kw in node.keywords
                                if kw.arg == "values"), None))
                if values is not None and _is_one(values):
                    yield self.finding(
                        ctx, node,
                        "dense one-hot materialization (scattering 1.0); "
                        "inference paths must use "
                        "kernels.gather_projection")
            elif func in _ALLOCATORS:
                has_dtype = any(kw.arg == "dtype" for kw in node.keywords)
                if not has_dtype and len(node.args) < 2:
                    yield self.finding(
                        ctx, node,
                        f"np.{func} without dtype= defaults to float64; "
                        f"kernel buffers must follow the parameter dtype")
