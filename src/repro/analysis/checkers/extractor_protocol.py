"""REP008: extractor override sets must be protocol-coherent.

:class:`repro.extract.base.Extractor` supports two shapes of subclass:
*opaque* extractors override :meth:`extract` wholesale, *raw-capable*
ones override :meth:`raw_states` and inherit batching/views.  The methods
are interdependent — ``supports_raw`` keys off ``raw_states``,
``raw_rows`` sizes buffers from ``raw_width``, ``finalize_rows`` maps
the view through ``view_columns`` — so an incomplete override set
produces an extractor that *works in direct mode but silently corrupts
the cache* (wrong raw width, views applied to the wrong columns).

Coherence rules over the set of overridden names:

* raw-protocol methods (``finalize_rows``/``raw_rows``/``raw_key``/
  ``view_states``/``raw_width``/``view_columns``) require ``raw_states``
  — without it ``supports_raw`` is False and they never run;
* ``raw_width`` and ``view_columns`` come as a pair: a wider raw sweep
  needs a column view and vice versa, or cached finalize_rows width
  disagrees with direct-mode ``n_units``;
* ``view_states`` requires ``view_columns`` for the same width reason;
* overriding both ``extract`` and ``raw_states`` mixes the opaque and
  raw-capable shapes — ``extract`` bypasses the view pipeline while the
  cache path does not;
* a custom ``view_attrs`` only means anything for raw-capable
  extractors (it parameterizes views over the raw sweep);
* a subclass overriding neither ``extract`` nor ``raw_states`` has no
  extraction path at all.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import classes, dotted_name, last_part, methods
from repro.analysis.driver import Checker, FileContext
from repro.analysis.registry import register

_RAW_ONLY = ("finalize_rows", "raw_rows", "raw_key", "view_states",
             "raw_width", "view_columns")


def _is_extractor_subclass(cls: ast.ClassDef) -> bool:
    return any(last_part(dotted_name(base)) == "Extractor"
               for base in cls.bases)


@register
class ExtractorProtocolChecker(Checker):
    id = "REP008"
    name = "extractor-protocol"
    description = ("Extractor subclasses must override a coherent set of "
                   "the raw-sweep protocol methods")
    hint = ("raw-capable extractors override raw_states (plus raw_width + "
            "view_columns together when the sweep is wider); opaque ones "
            "override only extract")

    def visit_file(self, ctx: FileContext):
        for cls in classes(ctx.tree):
            if not _is_extractor_subclass(cls):
                continue
            named = {fn.name: fn for fn in methods(cls)}
            over = set(named)
            has_view_attrs = any(
                isinstance(stmt, (ast.Assign, ast.AnnAssign))
                and "view_attrs" in self._targets(stmt)
                for stmt in cls.body)
            raw = "raw_states" in over

            if not raw:
                for name in _RAW_ONLY:
                    if name in over:
                        yield self.finding(
                            ctx, named[name],
                            f"{cls.name} overrides {name}() without "
                            f"raw_states(); supports_raw stays False so "
                            f"it never runs")
                if has_view_attrs:
                    yield self.finding(
                        ctx, cls,
                        f"{cls.name} customizes view_attrs without "
                        f"raw_states(); view attributes only parameterize "
                        f"raw-capable extractors")
            if raw and "extract" in over:
                yield self.finding(
                    ctx, named["extract"],
                    f"{cls.name} overrides both extract() and "
                    f"raw_states(); the opaque extract() bypasses the "
                    f"view pipeline the cache path still uses")
            if raw:
                if "raw_width" in over and "view_columns" not in over:
                    yield self.finding(
                        ctx, named["raw_width"],
                        f"{cls.name} widens raw_width() without "
                        f"view_columns(); direct-mode width would differ "
                        f"from finalized cache rows")
                if "view_columns" in over and "raw_width" not in over:
                    yield self.finding(
                        ctx, named["view_columns"],
                        f"{cls.name} selects view_columns() without "
                        f"raw_width(); raw_rows sizes buffers from the "
                        f"default (= n_units) and truncates the sweep")
                if "view_states" in over and "view_columns" not in over:
                    yield self.finding(
                        ctx, named["view_states"],
                        f"{cls.name} overrides view_states() without "
                        f"view_columns(); finalize_rows would replay the "
                        f"full-width raw sweep instead of the view")
            if not raw and "extract" not in over:
                yield self.finding(
                    ctx, cls,
                    f"{cls.name} overrides neither extract() nor "
                    f"raw_states(); it has no extraction path")

    @staticmethod
    def _targets(stmt: ast.stmt) -> set[str]:
        if isinstance(stmt, ast.AnnAssign):
            name = dotted_name(stmt.target)
            return {name} if name else set()
        if isinstance(stmt, ast.Assign):
            return {dotted_name(t) for t in stmt.targets
                    if dotted_name(t) is not None}
        return set()
