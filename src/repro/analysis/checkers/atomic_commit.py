"""REP001: fsync-before-rename commit discipline in the storage layers.

Both durability designs in this repo (the behavior store's atomic
manifest, the pager's shadow-paged commit) hinge on the same two-step
protocol: write + ``fsync`` the payload, *then* publish it with one
atomic ``os.rename``/``os.replace``.  Renaming without a reachable fsync
in the same function means a crash can publish a name whose bytes never
hit the disk — the manifest would point at garbage and every
"recovers to the last commit" guarantee dies silently.

Scope: files whose path mentions ``store`` or ``storage`` (or that
declare ``# analysis-scope: store``).  Rule: every ``os.rename`` /
``os.replace`` call must be preceded, earlier in the same function, by an
``os.fsync``/``.fsync()`` call (or a call to a local helper that is
itself fsync-disciplined, e.g. ``_atomic_write_bytes``).
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import call_name, functions, last_part, walk_scope
from repro.analysis.driver import Checker, FileContext
from repro.analysis.registry import register

_RENAMES = {"os.rename", "os.replace"}


@register
class AtomicCommitChecker(Checker):
    id = "REP001"
    name = "atomic-commit"
    description = ("os.rename/os.replace publishing storage state must be "
                   "preceded by fsync in the same function")
    hint = ("fsync the payload file object (and flush first) before the "
            "rename that publishes it")

    def visit_file(self, ctx: FileContext):
        if not ctx.in_scope("store", "storage"):
            return
        # local helpers that themselves pass the discipline count as
        # fsync-carrying calls for their callers (one level deep)
        disciplined = set()
        for fn in functions(ctx.tree):
            if self._has_fsync_before(fn, stop_line=None):
                disciplined.add(fn.name)
        scopes = list(functions(ctx.tree))
        for fn in scopes:
            yield from self._check_scope(ctx, fn, disciplined)
        yield from self._check_scope(ctx, ctx.tree, disciplined,
                                     module=True)

    def _check_scope(self, ctx: FileContext, scope, disciplined: set[str],
                     module: bool = False):
        for node in walk_scope(scope):
            if module and node is not scope and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            if callee not in _RENAMES:
                continue
            if self._has_fsync_before(scope, stop_line=node.lineno,
                                      disciplined=disciplined):
                continue
            target = (ast.unparse(node.args[1]) if len(node.args) > 1
                      else "its target")
            yield self.finding(
                ctx, node,
                f"{callee} publishes {target} without a reachable fsync "
                f"earlier in the same function")

    @staticmethod
    def _has_fsync_before(scope, stop_line: int | None,
                          disciplined: set[str] = frozenset()) -> bool:
        for node in walk_scope(scope):
            if not isinstance(node, ast.Call):
                continue
            if stop_line is not None and node.lineno >= stop_line:
                continue
            callee = call_name(node)
            if last_part(callee) == "fsync":
                return True
            if callee is not None and last_part(callee) in disciplined:
                return True
        return False
