"""REP006: counter-fold symmetry across stats()/reset_counters()/fold_counts().

Cross-process counter folding (PR 6) only keeps extraction-once
assertions meaningful if three key sets stay aligned per class:

* every parameter of ``fold_counts(**counts)`` must be a key ``stats()``
  reports — a folded counter nobody can read is lost observability;
* every attribute ``reset_counters()`` zeroes must be a ``stats()`` key —
  resetting something unreported hints at a renamed counter;
* when a class defines both, the fold-parameter set and the reset-zeroed
  set must be *equal*: a counter that folds but never resets poisons
  before/after assertions, and one that resets but never folds silently
  under-counts under the process scheduler.

Gauges (``entries``, ``bytes``, ...) live only in ``stats()`` and are
unconstrained.  ``reset_counters`` implementations that delegate to a
same-class helper (``_reset_counters_locked``) are followed one level.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import classes, dotted_name, methods
from repro.analysis.driver import Checker, FileContext
from repro.analysis.registry import register


def _stats_keys(fn: ast.FunctionDef) -> set[str] | None:
    """String keys stats() reports, or None when not statically knowable."""
    keys: set[str] = set()
    knowable = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            knowable = True
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value,
                                                                str):
                    keys.add(key.value)
        # out["key"] = ... accumulation style
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.slice, ast.Constant) \
                        and isinstance(target.slice.value, str):
                    knowable = True
                    keys.add(target.slice.value)
    return keys if knowable else None


def _zeroed_attrs(fn: ast.FunctionDef,
                  class_methods: dict[str, ast.FunctionDef],
                  _depth: int = 1) -> set[str]:
    """Attributes assigned a zero constant, following one self-call level."""
    zeroed: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Constant) \
                and node.value.value in (0, 0.0):
            for target in node.targets:
                name = dotted_name(target)
                if name is not None and name.startswith("self."):
                    zeroed.add(name[len("self."):])
        if _depth > 0 and isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee is not None and callee.startswith("self."):
                helper = class_methods.get(callee[len("self."):])
                if helper is not None and helper is not fn:
                    zeroed |= _zeroed_attrs(helper, class_methods,
                                            _depth - 1)
    return zeroed


def _fold_params(fn: ast.FunctionDef) -> set[str]:
    args = fn.args
    names = [a.arg for a in (*args.posonlyargs, *args.args,
                             *args.kwonlyargs)]
    return {name for name in names if name not in ("self", "cls")}


@register
class CounterFoldSymmetryChecker(Checker):
    id = "REP006"
    name = "counter-fold-symmetry"
    description = ("stats()/reset_counters()/fold_counts() key sets must "
                   "agree per class")
    hint = ("report every foldable/resettable counter from stats(), and "
            "keep fold_counts parameters and reset_counters zeroing in "
            "sync")

    def visit_file(self, ctx: FileContext):
        for cls in classes(ctx.tree):
            named = {fn.name: fn for fn in methods(cls)}
            stats = named.get("stats")
            reset = named.get("reset_counters")
            fold = named.get("fold_counts")
            stats_keys = _stats_keys(stats) if stats is not None else None
            fold_keys = _fold_params(fold) if fold is not None else None
            reset_keys = (_zeroed_attrs(reset, named)
                          if reset is not None else None)
            if stats_keys is not None and fold_keys is not None:
                missing = sorted(fold_keys - stats_keys)
                if missing:
                    yield self.finding(
                        ctx, fold,
                        f"{cls.name}.fold_counts folds {missing} but "
                        f"stats() never reports them")
            if stats_keys is not None and reset_keys is not None:
                missing = sorted(reset_keys - stats_keys)
                if missing:
                    yield self.finding(
                        ctx, reset,
                        f"{cls.name}.reset_counters zeroes {missing} but "
                        f"stats() never reports them")
            if fold_keys is not None and reset_keys is not None \
                    and reset_keys and fold_keys != reset_keys:
                only_fold = sorted(fold_keys - reset_keys)
                only_reset = sorted(reset_keys - fold_keys)
                detail = []
                if only_fold:
                    detail.append(f"folded but never reset: {only_fold}")
                if only_reset:
                    detail.append(f"reset but never folded: {only_reset}")
                yield self.finding(
                    ctx, fold,
                    f"{cls.name} counter sets disagree — "
                    f"{'; '.join(detail)}")
