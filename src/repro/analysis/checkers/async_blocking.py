"""REP010: no blocking calls inside ``async def`` bodies (server scope).

The inspection server runs every query on a bounded worker pool; the
event loop only parses envelopes, moves frames and enforces quotas.  A
single blocking call inside a coroutine — ``time.sleep``, a synchronous
socket read, a ``Future.result()`` wait, a subprocess — stalls *every*
connected client for its duration, which is exactly the failure mode a
multi-tenant front end must not have.

Rule, applied to files in the ``server`` scope (path containing
``server`` or a ``# analysis-scope: server`` tag): inside an
``async def`` body (nested sync functions excluded — they run on worker
threads),

* no calls to known blocking APIs: ``time.sleep``, ``socket.*`` I/O
  constructors/calls (``socket.create_connection``, ``sock.recv``,
  ``sock.accept``...), ``subprocess.run/call/check_output``,
  ``select.select``, ``queue.Queue().get`` — use their asyncio
  equivalents or push the work onto the executor;
* no ``.result()`` / ``.join()`` on futures, threads or pools — that is
  a synchronous wait; ``await`` the future instead;
* executor dispatch must be consumed: a bare expression statement
  ``loop.run_in_executor(...)`` / ``executor.submit(...)`` drops the
  future, so errors vanish and completion is unobservable — ``await``
  it or keep a reference.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import dotted_name, functions, last_part
from repro.analysis.driver import Checker, FileContext
from repro.analysis.registry import register

#: dotted names that block the calling thread outright
_BLOCKING_CALLS = {
    "time.sleep",
    "socket.create_connection",
    "socket.socket",
    "socket.getaddrinfo",
    "select.select",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_output",
    "subprocess.check_call",
}

#: method names that synchronously wait or perform socket I/O when
#: invoked on *any* receiver inside a coroutine
_BLOCKING_METHODS = {"result", "join", "recv", "recv_into", "sendall",
                     "accept", "readinto"}

#: executor-dispatch calls whose returned future must not be dropped
_DISPATCH_METHODS = {"run_in_executor", "submit"}


def _async_body_nodes(fn: ast.AsyncFunctionDef):
    """Walk an async function's own body, skipping nested sync scopes."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register
class AsyncBlockingChecker(Checker):
    id = "REP010"
    name = "async-blocking"
    description = ("server coroutines must not block: no time.sleep/"
                   "socket I/O/.result() waits, no dropped executor "
                   "futures inside async def")
    hint = ("use the asyncio equivalent (asyncio.sleep, streams, await) "
            "or move the blocking work onto the admission executor")

    def visit_file(self, ctx: FileContext):
        if not ctx.in_scope("server"):
            return
        for fn in functions(ctx.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            awaited: set[int] = set()
            for node in _async_body_nodes(fn):
                if isinstance(node, ast.Await):
                    for inner in ast.walk(node):
                        if isinstance(inner, ast.Call):
                            awaited.add(id(inner))
            for node in _async_body_nodes(fn):
                if isinstance(node, ast.Expr) \
                        and isinstance(node.value, ast.Call) \
                        and id(node.value) not in awaited:
                    method = self._method_name(node.value)
                    if method in _DISPATCH_METHODS:
                        yield self.finding(
                            ctx, node,
                            f"async {fn.name!r} drops the future from "
                            f".{method}(...) — await it or keep a "
                            f"reference")
                        continue
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func) or ""
                if name in _BLOCKING_CALLS:
                    yield self.finding(
                        ctx, node,
                        f"async {fn.name!r} calls blocking {name}()")
                    continue
                method = self._method_name(node)
                if method in _BLOCKING_METHODS \
                        and isinstance(node.func, ast.Attribute) \
                        and not isinstance(node.func.value, ast.Constant) \
                        and id(node) not in awaited:
                    yield self.finding(
                        ctx, node,
                        f"async {fn.name!r} waits synchronously via "
                        f".{method}() — await the async form instead")

    @staticmethod
    def _method_name(call: ast.Call) -> str:
        return last_part(dotted_name(call.func)) if isinstance(
            call.func, ast.Attribute) else ""
