"""Importing this package registers every built-in checker."""

from repro.analysis.checkers import (atomic_commit, counters, degradation,
                                     extractor_protocol, identity, kernels,
                                     lifecycle, lock_order, picklable)

__all__ = ["atomic_commit", "counters", "degradation", "extractor_protocol",
           "identity", "kernels", "lifecycle", "lock_order", "picklable"]
