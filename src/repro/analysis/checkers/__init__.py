"""Importing this package registers every built-in checker."""

from repro.analysis.checkers import (async_blocking, atomic_commit, counters,
                                     degradation, extractor_protocol,
                                     identity, kernels, lifecycle, lock_order,
                                     picklable)

__all__ = ["async_blocking", "atomic_commit", "counters", "degradation",
           "extractor_protocol", "identity", "kernels", "lifecycle",
           "lock_order", "picklable"]
