"""REP007: classes owning pools/mmaps/file handles must be closeable.

Leaked worker pools keep the interpreter alive after ``close()``; leaked
mmaps pin shard files that garbage collection believes it deleted; an
unclosed pager handle holds uncommitted state forever.  Session teardown
(PR 5/6) is built on every resource-owning object exposing an explicit
lifecycle — this checker enforces it structurally.

Rule: a class whose methods create a long-lived OS resource —
``ThreadPoolExecutor``/``ProcessPoolExecutor``/``Pool``, ``open(...)``
assigned to an attribute, ``mmap.mmap``, ``np.load(..., mmap_mode=...)``,
``tempfile.mkdtemp`` — must define ``close()``, ``shutdown()`` or
``__exit__``.  Calls whose handle is scoped by a ``with`` statement don't
count: the block already bounds their lifetime.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import classes, dotted_name, last_part, methods
from repro.analysis.driver import Checker, FileContext
from repro.analysis.registry import register

_POOLS = {"ThreadPoolExecutor", "ProcessPoolExecutor", "Pool"}
_LIFECYCLE = {"close", "shutdown", "__exit__", "__del__", "release"}


def _resource_kind(node: ast.Call) -> str | None:
    name = dotted_name(node.func)
    short = last_part(name)
    if short in _POOLS:
        return f"a {short} worker pool"
    if short == "mkdtemp":
        return "an unmanaged temp directory (tempfile.mkdtemp)"
    if name == "mmap.mmap":
        return "an mmap"
    if short == "load":
        for kw in node.keywords:
            if kw.arg == "mmap_mode" and not (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is None):
                return "a memory-mapped array (np.load mmap_mode=...)"
    return None


@register
class LifecycleChecker(Checker):
    id = "REP007"
    name = "lifecycle"
    description = ("classes creating pools/mmaps/file handles must define "
                   "close()/shutdown()/__exit__")
    hint = ("add a close() (or shutdown()) releasing the resource, and "
            "call it from the owner's teardown path")

    def visit_file(self, ctx: FileContext):
        for cls in classes(ctx.tree):
            defined = {fn.name for fn in methods(cls)}
            if defined & _LIFECYCLE:
                continue
            with_scoped = set()
            for fn in methods(cls):
                for node in ast.walk(fn):
                    if isinstance(node, ast.With):
                        for item in node.items:
                            if isinstance(item.context_expr, ast.Call):
                                with_scoped.add(id(item.context_expr))
            reported: set[str] = set()
            for fn in methods(cls):
                for node in ast.walk(fn):
                    if not isinstance(node, ast.Call) \
                            or id(node) in with_scoped:
                        continue
                    kind = _resource_kind(node)
                    if kind is None and last_part(
                            dotted_name(node.func)) == "open":
                        kind = ("an open file handle"
                                if self._assigned_to_self(fn, node)
                                else None)
                    if kind is None or kind in reported:
                        continue
                    reported.add(kind)
                    yield self.finding(
                        ctx, node,
                        f"{cls.name}.{fn.name} creates {kind} but "
                        f"{cls.name} defines no close()/shutdown()/"
                        f"__exit__")

    @staticmethod
    def _assigned_to_self(fn: ast.FunctionDef, call: ast.Call) -> bool:
        """Whether ``call``'s result is stored on ``self`` (owned)."""
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and node.value is call:
                for target in node.targets:
                    name = dotted_name(target)
                    if name is not None and name.startswith("self."):
                        return True
        return False
