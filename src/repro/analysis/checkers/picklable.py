"""REP004: shard task payloads must be pickle-safe by construction.

``ShardTask`` values cross the process boundary on every shard-parallel
run; a field that can hold a lambda, a lock, a live mmap or a pool
doesn't fail until a worker is spawned — under the *spawn* start method,
possibly only on another platform.  This checker enforces the invariant
at the type level: every field of a shard-task dataclass (any
``@dataclass`` named ``Shard*Task``) must be annotated with a
whitelisted, pickle-safe-by-construction type, and field defaults must
not be lambdas.

Models, extractors and hypotheses therefore travel *encoded* (arch-spec
dicts, pickled ``bytes`` blobs produced by the coordinator, which
degrades gracefully when pickling fails) — never as live objects.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.astutil import classes, dotted_name, last_part, unparse
from repro.analysis.driver import Checker, FileContext
from repro.analysis.registry import register

_TASK_NAME = re.compile(r"^Shard\w*Task$")

#: annotation atoms that are picklable by construction
_ALLOWED_NAMES = frozenset({
    "str", "int", "float", "bool", "bytes", "bytearray", "complex",
    "list", "dict", "tuple", "set", "frozenset", "None", "Optional",
    "Union", "Sequence", "Mapping", "Iterable",
    "ndarray",  # numpy arrays pickle by value
})

#: safe default_factory callables
_ALLOWED_FACTORIES = frozenset({"list", "dict", "tuple", "set"})


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if last_part(dotted_name(target)) == "dataclass":
            return True
    return False


def _annotation_offender(node: ast.AST) -> ast.AST | None:
    """The first sub-expression of an annotation not in the whitelist."""
    if isinstance(node, ast.Constant):
        if node.value is None or isinstance(node.value, str):
            # string annotations re-parse (from __future__ import
            # annotations writes them as plain syntax, but be thorough)
            if isinstance(node.value, str):
                try:
                    parsed = ast.parse(node.value, mode="eval").body
                except SyntaxError:
                    return node
                return _annotation_offender(parsed)
            return None
        return node
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = last_part(dotted_name(node))
        return None if name in _ALLOWED_NAMES or _TASK_NAME.match(name) \
            else node
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return (_annotation_offender(node.left)
                or _annotation_offender(node.right))
    if isinstance(node, ast.Subscript):
        offender = _annotation_offender(node.value)
        if offender is not None:
            return offender
        inner = node.slice
        parts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        for part in parts:
            offender = _annotation_offender(part)
            if offender is not None:
                return offender
        return None
    return node


@register
class ShardPicklableChecker(Checker):
    id = "REP004"
    name = "shard-picklable"
    description = ("Shard*Task dataclass fields must be annotated with "
                   "pickle-safe types; no lambda defaults")
    hint = ("ship encoded payloads (bytes blobs / plain dicts via "
            "encode_model-style helpers) instead of live objects")

    def visit_file(self, ctx: FileContext):
        for cls in classes(ctx.tree):
            if not _TASK_NAME.match(cls.name) or not _is_dataclass(cls):
                continue
            for stmt in cls.body:
                if not isinstance(stmt, ast.AnnAssign) \
                        or not isinstance(stmt.target, ast.Name):
                    continue
                field_name = stmt.target.id
                offender = _annotation_offender(stmt.annotation)
                if offender is not None:
                    yield self.finding(
                        ctx, stmt,
                        f"field {cls.name}.{field_name} is annotated "
                        f"{unparse(stmt.annotation)}; "
                        f"{unparse(offender)} is not pickle-safe by "
                        f"construction")
                yield from self._check_default(ctx, cls.name, field_name,
                                               stmt.value)

    def _check_default(self, ctx: FileContext, cls_name: str,
                       field_name: str, value: ast.AST | None):
        if value is None:
            return
        if isinstance(value, ast.Lambda):
            yield self.finding(
                ctx, value,
                f"field {cls_name}.{field_name} defaults to a lambda, "
                f"which cannot cross the process boundary")
            return
        if isinstance(value, ast.Call) \
                and last_part(dotted_name(value.func)) == "field":
            for kw in value.keywords:
                if kw.arg != "default_factory":
                    continue
                if isinstance(kw.value, ast.Lambda):
                    yield self.finding(
                        ctx, kw.value,
                        f"field {cls_name}.{field_name} uses a lambda "
                        f"default_factory, which cannot cross the "
                        f"process boundary")
                elif last_part(dotted_name(kw.value)) \
                        not in _ALLOWED_FACTORIES:
                    yield self.finding(
                        ctx, kw.value,
                        f"field {cls_name}.{field_name} default_factory "
                        f"{unparse(kw.value)} is not a builtin "
                        f"container constructor")
