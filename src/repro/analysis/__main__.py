"""CLI entry point: ``python -m repro.analysis [paths]``.

Exit codes: 0 clean (or everything grandfathered), 1 new findings,
2 usage error (unknown checker id, bad path, malformed baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import (apply_baseline, load_baseline,
                                     write_baseline)
from repro.analysis.driver import analyze_paths, iter_python_files
from repro.analysis.registry import checker_classes
from repro.analysis.report import render_text, write_json

DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repo-specific AST checkers for repro invariants")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--select", action="append", metavar="REPnnn",
                        help="run only these checker ids (repeatable)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        metavar="PATH",
                        help="baseline JSON of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE}; missing file "
                             "= empty baseline)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "and exit 0")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="also write a JSON report to PATH")
    parser.add_argument("--list", action="store_true", dest="list_checkers",
                        help="list registered checkers and exit")
    parser.add_argument("--include-excluded", action="store_true",
                        help="also analyze normally-excluded directories "
                             "(fixture trees)")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_checkers:
        for cls in checker_classes():
            print(f"{cls.id}  {cls.name:<24} {cls.description}")
        return 0

    try:
        files = iter_python_files(args.paths,
                                  include_excluded=args.include_excluded)
        findings = analyze_paths(args.paths, select=args.select,
                                 include_excluded=args.include_excluded)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(findings, args.baseline)
        print(f"wrote {len(findings)} finding(s) to baseline "
              f"{args.baseline}")
        return 0

    grandfathered = 0
    if not args.no_baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, grandfathered = apply_baseline(findings, baseline)

    display_paths = [str(Path(p)) for p in args.paths]
    if args.json_path:
        write_json(args.json_path, findings, n_files=len(files),
                   n_grandfathered=grandfathered, paths=display_paths)
    print(render_text(findings, n_files=len(files),
                      n_grandfathered=grandfathered))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
