"""Checker registry: ``@register`` collects checker classes by id."""

from __future__ import annotations

_REGISTRY: dict[str, type] = {}


def register(cls):
    """Class decorator adding a checker to the registry (keyed by id)."""
    checker_id = getattr(cls, "id", None)
    if not checker_id:
        raise ValueError(f"checker {cls.__name__} has no id")
    existing = _REGISTRY.get(checker_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"checker id {checker_id!r} already registered by "
            f"{existing.__name__}")
    _REGISTRY[checker_id] = cls
    return cls


def checker_classes() -> list[type]:
    """Every registered checker class, sorted by id.

    Importing :mod:`repro.analysis.checkers` is what populates the
    registry; do it here so callers cannot observe a half-filled table.
    """
    import repro.analysis.checkers  # noqa: F401  (registration side effect)
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def create_checkers(select: list[str] | None = None) -> list:
    """Fresh checker instances, optionally restricted to ``select`` ids."""
    classes = checker_classes()
    if select is not None:
        wanted = set(select)
        unknown = wanted - {cls.id for cls in classes}
        if unknown:
            known = ", ".join(cls.id for cls in classes)
            raise ValueError(
                f"unknown checker id(s) {sorted(unknown)}; known: {known}")
        classes = [cls for cls in classes if cls.id in wanted]
    return [cls() for cls in classes]
