"""Committed-baseline support for grandfathered findings.

The baseline is a JSON file listing findings that predate a checker (or
were reviewed and deliberately left).  It matches on
``(path, checker, message)`` with a count, never on line numbers, so
unrelated edits that shift a grandfathered finding around its file do not
resurface it — but a *second* occurrence of the same defect in the same
file does fail, as does any finding in a new location.

``python -m repro.analysis --write-baseline`` regenerates the file from
the current findings; review the diff like any other code change.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

_VERSION = 1


def load_baseline(path: str | Path | None) -> Counter:
    """Baseline counts keyed by ``(path, checker, message)``.

    A missing file is an empty baseline (the common case for new repos);
    a malformed one raises — silently ignoring it would let regressions
    through.
    """
    if path is None:
        return Counter()
    path = Path(path)
    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} "
            f"in {path}")
    counts: Counter = Counter()
    for entry in payload.get("entries", []):
        key = (entry["path"], entry["checker"], entry["message"])
        counts[key] += int(entry.get("count", 1))
    return counts


def write_baseline(findings: list[Finding], path: str | Path) -> None:
    counts = Counter(item.baseline_key() for item in findings)
    entries = [
        {"path": key[0], "checker": key[1], "message": key[2],
         "count": count}
        for key, count in sorted(counts.items())]
    payload = {"version": _VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def apply_baseline(findings: list[Finding],
                   baseline: Counter) -> tuple[list[Finding], int]:
    """Split findings into (new, n_grandfathered).

    Each baseline entry absorbs up to ``count`` matching findings; the
    rest are new.
    """
    remaining = Counter(baseline)
    fresh: list[Finding] = []
    absorbed = 0
    for item in findings:
        key = item.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            absorbed += 1
        else:
            fresh.append(item)
    return fresh, absorbed
