"""Per-file visitor driver: parse, dispatch to checkers, collect findings.

Checkers implement two hooks:

* :meth:`Checker.visit_file` — called once per analyzed file with a
  :class:`FileContext` (path, source, parsed AST); yields findings local
  to that file.
* :meth:`Checker.finalize` — called once after every file has been
  visited; yields findings that need cross-file state (e.g. the lock
  acquisition graph).

Suppression: a line containing ``# repro: allow[REP003]`` (comma-separated
ids, or ``*``) suppresses findings anchored to that line — use it for
reviewed-and-legitimate code the checker cannot prove safe, with the
reason in the surrounding comment.  Whole-file scoping: checkers that only
apply to certain subsystems match on the path, or on a
``# analysis-scope: <tag>`` comment in the first lines of a file (how test
fixtures opt into a scoped checker).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

#: directories never analyzed (fixture trees hold deliberate violations)
EXCLUDED_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".ruff_cache", "analysis_fixtures"})

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")
_SCOPE_RE = re.compile(r"#\s*analysis-scope:\s*([\w\-, ]+)")


@dataclass
class FileContext:
    """Everything a checker needs about one analyzed file."""

    path: Path                    # resolved filesystem path
    display_path: str             # what findings and baselines report
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    scope_tags: frozenset[str] = frozenset()
    #: line -> set of checker ids allowed ("*" allows all)
    allows: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, path: Path, display_path: str,
              source: str) -> "FileContext":
        tree = ast.parse(source, filename=display_path)
        lines = source.splitlines()
        allows: dict[int, set[str]] = {}
        for lineno, line in enumerate(lines, 1):
            match = _ALLOW_RE.search(line)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")
                       if part.strip()}
                allows.setdefault(lineno, set()).update(ids)
        tags: set[str] = set()
        for line in lines[:10]:
            match = _SCOPE_RE.search(line)
            if match:
                tags.update(part.strip()
                            for part in match.group(1).split(",")
                            if part.strip())
        return cls(path=path, display_path=display_path, source=source,
                   tree=tree, lines=lines, scope_tags=frozenset(tags),
                   allows=allows)

    def in_scope(self, *tags: str) -> bool:
        """Whether this file opts into a scoped checker.

        True when the display path contains any tag as a substring or the
        file declares it via ``# analysis-scope:``.
        """
        lowered = self.display_path.lower()
        return any(tag in lowered or tag in self.scope_tags for tag in tags)

    def allowed(self, checker_id: str, line: int) -> bool:
        ids = self.allows.get(line)
        return bool(ids) and ("*" in ids or checker_id in ids)


class Checker:
    """Base class for repo-invariant checkers.

    Subclasses set ``id`` (stable ``REPnnn`` code), ``name`` (short slug),
    ``description`` (one line for ``--list``) and ``hint`` (default fix
    hint), then implement :meth:`visit_file` and optionally
    :meth:`finalize`.
    """

    id = ""
    name = ""
    description = ""
    hint = ""

    def visit_file(self, ctx: FileContext):
        return ()

    def finalize(self):
        return ()

    def finding(self, ctx_or_path, node_or_line, message: str,
                hint: str | None = None) -> Finding:
        """Build a finding anchored at an AST node (or explicit line)."""
        if isinstance(ctx_or_path, FileContext):
            path = ctx_or_path.display_path
        else:
            path = str(ctx_or_path)
        if isinstance(node_or_line, ast.AST):
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0)
        else:
            line, col = int(node_or_line), 0
        return Finding(checker=self.id, name=self.name, path=path,
                       line=line, col=col, message=message,
                       hint=self.hint if hint is None else hint)


def iter_python_files(paths: list[str | Path],
                      include_excluded: bool = False) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if not include_excluded and parts & EXCLUDED_DIR_NAMES:
                    continue
                seen.setdefault(candidate, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return list(seen)


def display_path_for(path: Path) -> str:
    """Path relative to the cwd when possible (stable baseline keys)."""
    try:
        return str(path.resolve().relative_to(Path.cwd().resolve()))
    except ValueError:
        return str(path)


def analyze_paths(paths: list[str | Path],
                  select: list[str] | None = None,
                  include_excluded: bool = False) -> list[Finding]:
    """Run every (selected) checker over ``paths``; sorted findings."""
    from repro.analysis.registry import create_checkers
    checkers = create_checkers(select)
    files = iter_python_files(paths, include_excluded=include_excluded)
    findings: list[Finding] = []
    contexts: dict[str, FileContext] = {}
    for path in files:
        display = display_path_for(path)
        try:
            source = path.read_text(encoding="utf-8")
            ctx = FileContext.build(path, display, source)
        except (SyntaxError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", 1) or 1
            findings.append(Finding(
                checker="REP000", name="parse-error", path=display,
                line=lineno, col=0,
                message=f"file does not parse: {exc.msg if isinstance(exc, SyntaxError) else exc}",
                hint="fix the syntax error; nothing else can be checked"))
            continue
        contexts[display] = ctx
        for checker in checkers:
            findings.extend(checker.visit_file(ctx))
    for checker in checkers:
        findings.extend(checker.finalize())
    kept = []
    for item in findings:
        ctx = contexts.get(item.path)
        if ctx is not None and ctx.allowed(item.checker, item.line):
            continue
        kept.append(item)
    kept.sort(key=lambda item: item.sort_key())
    return kept
