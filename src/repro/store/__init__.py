"""Persistent behavior storage (the disk tier under the memory caches).

The in-memory LRUs in :mod:`repro.core.cache` die with the process and cap
out at RAM.  :class:`DiskBehaviorStore` persists extracted behaviors as
memory-mapped, append-only ``.npy`` shards under a JSON manifest, so a
second process — or a restarted session — serves ``inspect()`` and INSPECT
SQL without re-running the model.
"""

from repro.store.disk import DiskBehaviorStore, StoreEntryReader

__all__ = ["DiskBehaviorStore", "StoreEntryReader"]
