"""On-disk, memory-mapped behavior store.

Layout under the store root::

    manifest.json            -- committed entry metadata (atomic rename)
    .lock                    -- advisory inter-process write lock
    shards/<hash>-<seq>.npy      -- row block: (k, row_width) array
    shards/<hash>-<seq>.idx.npy  -- record ids the block's rows belong to

An *entry* holds behaviors for one logical key (e.g. one
(model fingerprint, raw extractor identity, dataset hash) triple) as a
sequence of append-only shards.  :meth:`DiskBehaviorStore.append` queues
rows; :meth:`DiskBehaviorStore.flush` coalesces everything queued into one
rows shard + record-index shard per entry, fsyncs them, and then commits
by atomically rewriting the manifest — once per flush, not per append.
Standalone appends flush immediately; the plan engine wraps a whole run in
:meth:`DiskBehaviorStore.deferred_commits` so a cold streaming inspection
pays one shard per entry and one manifest rewrite in total.  The manifest
is the single commit point — a crash before it renames leaves at most
orphan files that garbage collection removes, never a half-visible entry.

Reads go through :class:`StoreEntryReader`, which memory-maps every shard
(``np.load(mmap_mode="r")``) and gathers requested record rows directly out
of the maps, so serving a block slice touches only the pages that block
needs.  A shard whose on-disk size or header shape disagrees with the
manifest (truncated write, torn copy) invalidates the whole entry: it is
dropped and re-extracted, never served.

Eviction is byte-budgeted and least-recently-used at entry granularity,
mirroring the in-memory tiers; ``max_bytes=None`` disables automatic GC
(``gc(max_bytes)`` can still be called explicitly).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
from pathlib import Path

import numpy as np

try:  # POSIX: real inter-process advisory locking
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

MANIFEST = "manifest.json"
SHARD_DIR = "shards"
_VERSION = 1


class CorruptEntryError(Exception):
    """A shard disagrees with its manifest record (truncation, torn write)."""


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "wb") as f:
        f.write(payload)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def _save_array(path: Path, array: np.ndarray) -> int:
    """np.save through a temp file + rename; returns the final byte size."""
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "wb") as f:
        np.save(f, array)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return os.path.getsize(path)


#: bits of a packed location reserved for the row-within-shard part
_ROW_BITS = 40
_ROW_MASK = (1 << _ROW_BITS) - 1


class StoreEntryReader:
    """Memory-mapped view over one entry's shards.

    Builds a record -> (shard, row) location table once, then serves
    ``rows(indices)`` by fancy-indexing each shard's mmap — only the pages
    holding the requested records are faulted in.

    Concurrency: readers run lock-free while :meth:`extend` may add shards
    from another thread.  The location table is therefore a *single*
    packed array — ``shard << _ROW_BITS | row`` — published by reference
    swap after the shard list has grown, so a concurrent gather can never
    pair a new shard index with a stale row offset (no torn reads), and
    whichever snapshot it captures only references shards already present
    in its shard list.
    """

    def __init__(self, root: Path, key: str, meta: dict):
        self.key = key
        self.n_records = int(meta["n_records"])
        self.row_width = int(meta["row_width"])
        self.dtype = np.dtype(meta["dtype"])
        self._maps: list[np.ndarray] = []
        self._loc = np.full(self.n_records, -1, dtype=np.int64)
        self.extend(root, meta, from_shard=0)

    def extend(self, root: Path, meta: dict, from_shard: int) -> None:
        """Map shards ``meta['shards'][from_shard:]`` into this reader.

        Appends are the common case across a session, so a cached reader
        picks up just the new shards instead of re-validating and
        re-loading every index it already holds.
        """
        maps = list(self._maps)
        loc = self._loc.copy()
        for si, shard in enumerate(meta["shards"][from_shard:], from_shard):
            data_path = root / SHARD_DIR / shard["data"]
            index_path = root / SHARD_DIR / shard["index"]
            self._check_size(data_path, shard["data_bytes"])
            self._check_size(index_path, shard["index_bytes"])
            try:
                block = np.load(data_path, mmap_mode="r")
                idx = np.load(index_path)
            except Exception as exc:  # unreadable header / short mmap
                raise CorruptEntryError(f"{self.key}: {exc}") from exc
            if (block.ndim != 2 or block.shape[0] != idx.shape[0]
                    or block.shape[1] != self.row_width
                    or block.dtype != self.dtype):
                raise CorruptEntryError(
                    f"{self.key}: shard {shard['data']} shape/dtype "
                    f"{block.shape}/{block.dtype} disagrees with manifest")
            if idx.shape[0] and (idx.min() < 0
                                 or idx.max() >= self.n_records):
                raise CorruptEntryError(
                    f"{self.key}: shard {shard['index']} records out of "
                    f"range for n_records={self.n_records}")
            maps.append(block)
            loc[idx] = (np.int64(si) << _ROW_BITS) | np.arange(
                idx.shape[0], dtype=np.int64)
        # publish shards before locations: a reader capturing the new
        # table is guaranteed to find every shard it references
        self._maps = maps
        self._loc = loc
        self.n_shards = len(meta["shards"])

    def close(self) -> None:
        """Drop shard references so their mmaps can be reclaimed.

        Safe under the lock-free reader protocol: a concurrent
        :meth:`rows` that already captured the shard list finishes from
        its snapshot (gathers copy, never alias the maps), while gathers
        starting after close() see an empty location table and raise
        ``KeyError`` like any other unfilled read.
        """
        self._maps = []
        self._loc = np.full(self.n_records, -1, dtype=np.int64)

    @staticmethod
    def _check_size(path: Path, expected: int) -> None:
        try:
            actual = os.path.getsize(path)
        except OSError as exc:
            raise CorruptEntryError(f"missing shard file {path}") from exc
        if actual != expected:
            raise CorruptEntryError(
                f"shard {path.name}: {actual} bytes on disk, manifest "
                f"recorded {expected} (truncated or partial write)")

    # ------------------------------------------------------------------
    @property
    def n_filled(self) -> int:
        return int((self._loc >= 0).sum())

    def filled_mask(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=int)
        return self._loc[indices] >= 0

    def rows(self, indices: np.ndarray) -> np.ndarray:
        """Gather per-record rows (every index must be filled)."""
        indices = np.asarray(indices, dtype=int)
        # snapshot order mirrors extend()'s publish order (see class doc):
        # capture the location table first, the shard list second
        loc_table = self._loc
        maps = self._maps
        loc = loc_table[indices]
        if loc.shape[0] and loc.min() < 0:
            raise KeyError(f"{self.key}: some requested records are not in "
                           "the store")
        shard_of = loc >> _ROW_BITS
        row_of = loc & _ROW_MASK
        out = np.empty((indices.shape[0], self.row_width), dtype=self.dtype)
        for si in np.unique(shard_of):
            sel = shard_of == si
            out[sel] = maps[si][row_of[sel]]
        return out


class DiskBehaviorStore:
    """Append-only behavior store shared by caches across processes.

    Thread-safe within a process (one lock around manifest state) and
    crash/concurrency-safe across processes: writers serialize on an
    advisory file lock and commit via atomic manifest replacement, readers
    only ever observe committed manifests.
    """

    def __init__(self, root: str | os.PathLike,
                 max_bytes: int | None = None):
        self.root = Path(root)
        self.max_bytes = max_bytes
        (self.root / SHARD_DIR).mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._manifest: dict | None = None
        self._manifest_sig: tuple | None = None
        # key -> (entry creation token, reader); the token pins the entry
        # *incarnation*, so a cross-process drop-and-recreate can never be
        # confused with an append, even at the same shard count
        self._readers: dict[str, tuple[int | None, StoreEntryReader]] = {}
        # read-time recency bumps not yet persisted (manifest commits only
        # happen on writes); merged back in whenever the manifest reloads
        self._pending_touches: dict[str, int] = {}
        # rows appended but not yet flushed: the plan engine defers for
        # the duration of a run, so a cold streaming inspection writes ONE
        # coalesced shard per entry and ONE manifest rewrite instead of
        # one of each per (entry, block).  Unflushed rows are invisible to
        # every reader (a crash simply loses them — the records re-extract
        # next session), so the manifest stays the single commit point;
        # ``max_pending_bytes`` bounds the buffer even inside a scope.
        self._pending_rows: list[tuple] = []
        # shard file pairs written by worker processes, waiting to be
        # registered in the manifest (see adopt_shard)
        self._pending_adoptions: list[dict] = []
        self._pending_bytes = 0
        self._defer_depth = 0
        self.max_pending_bytes = 128 * 1024 * 1024
        # observability: served/attempted record reads and dropped entries
        self.appends = 0
        self.commits = 0   # manifest rewrites this process published
        self.evictions = 0
        self.invalid_dropped = 0

    # -- manifest plumbing ---------------------------------------------
    @property
    def _manifest_path(self) -> Path:
        return self.root / MANIFEST

    def _stat_sig(self) -> tuple | None:
        try:
            st = os.stat(self._manifest_path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size, st.st_ino)

    def _load_manifest(self) -> dict:
        try:
            with open(self._manifest_path, "rb") as f:
                manifest = json.load(f)
            if manifest.get("version") != _VERSION:
                raise ValueError("unsupported manifest version "
                                 f"{manifest.get('version')}")
            return manifest
        except (OSError, ValueError):
            return {"version": _VERSION, "clock": 0, "entries": {}}

    def _refresh(self) -> dict:
        """Re-read the manifest if another process committed (lock held)."""
        sig = self._stat_sig()
        if self._manifest is None or sig != self._manifest_sig:
            self._manifest = self._load_manifest()
            self._manifest_sig = sig
            entries = self._manifest["entries"]
            # keep mmap'd readers for the same entry incarnation (they can
            # be extended with any appended shards); drop the rest
            for key in list(self._readers):
                meta = entries.get(key)
                created, cached = self._readers[key]
                if (meta is None or meta.get("created") != created
                        or cached.n_shards > len(meta["shards"])):
                    del self._readers[key]
            # replay recency observed since the last commit
            for key, last_used in self._pending_touches.items():
                meta = entries.get(key)
                if meta is not None:
                    meta["last_used"] = max(meta["last_used"], last_used)
                self._manifest["clock"] = max(self._manifest["clock"],
                                              last_used)
        return self._manifest

    def _commit(self, manifest: dict) -> None:
        """Atomically publish the manifest (lock held)."""
        payload = json.dumps(manifest, indent=0).encode()
        _atomic_write_bytes(self._manifest_path, payload)
        self.commits += 1
        self._manifest = manifest
        self._manifest_sig = self._stat_sig()
        self._pending_touches.clear()

    @contextlib.contextmanager
    def _write_lock(self):
        """Inter-process advisory lock serializing append/gc commits."""
        with open(self.root / ".lock", "a+b") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # -- reads ----------------------------------------------------------
    def reader(self, key: str) -> StoreEntryReader | None:
        """A mmap'd reader for ``key``, or None when absent/invalid.

        An entry whose shards fail validation (truncated or missing file)
        is dropped from the store so the caller re-extracts — partial data
        is never served.
        """
        with self._lock:
            manifest = self._refresh()
            meta = manifest["entries"].get(key)
            if meta is None:
                return None
            created = meta.get("created")
            cached = self._readers.get(key)
            entry_reader = (cached[1] if cached is not None
                            and cached[0] == created else None)
            try:
                if entry_reader is None:
                    entry_reader = StoreEntryReader(self.root, key, meta)
                elif entry_reader.n_shards < len(meta["shards"]):
                    entry_reader.extend(self.root, meta,
                                        entry_reader.n_shards)
            except CorruptEntryError:
                self.invalid_dropped += 1
                self._readers.pop(key, None)
            else:
                self._readers[key] = (created, entry_reader)
                self._touch(manifest, key, meta)
                return entry_reader
        # invalid: remove the entry (and its files) under the write lock
        self.drop(key)
        return None

    def _touch(self, manifest: dict, key: str, meta: dict) -> None:
        """Bump recency in memory; persisted on the next commit."""
        manifest["clock"] += 1
        meta["last_used"] = manifest["clock"]
        self._pending_touches[key] = meta["last_used"]

    # -- writes ---------------------------------------------------------
    def append(self, key: str, indices: np.ndarray, rows: np.ndarray,
               n_records: int) -> None:
        """Persist ``rows`` (one row per entry record in ``indices``).

        Shard files are written (and fsynced) immediately, but only become
        visible when the manifest commits — immediately by default, or at
        the end of a :meth:`deferred_commits` scope.  Width and dtype are
        pinned by the entry's first shard; an append that disagrees
        replaces the entry wholesale (the identity key should have changed
        — a mismatch means the old bytes are stale).
        """
        indices = np.asarray(indices, dtype=np.int64)
        rows = np.ascontiguousarray(rows)
        if rows.ndim != 2 or rows.shape[0] != indices.shape[0]:
            raise ValueError("rows must be (len(indices), row_width), got "
                             f"{rows.shape} for {indices.shape[0]} indices")
        if indices.shape[0] == 0:
            return
        with self._lock:
            self._pending_rows.append(
                (key, int(n_records), int(rows.shape[1]), rows.dtype.str,
                 indices, rows))
            self._pending_bytes += rows.nbytes + indices.nbytes
            self.appends += 1
            defer = (self._defer_depth > 0
                     and self._pending_bytes < self.max_pending_bytes)
        if not defer:
            self.flush()

    def adopt_shard(self, key: str, *, data_name: str, index_name: str,
                    n_rows: int, data_bytes: int, index_bytes: int,
                    n_records: int, row_width: int, dtype: str) -> None:
        """Register a shard file pair already on disk under ``key``.

        The worker half of process-parallel extraction writes fsynced
        shard files straight into the shard directory — it never touches
        the manifest.  The coordinator adopts the descriptors here; they
        join the pending queue and become visible through the normal
        flush path, so the flock'd manifest rewrite stays the single,
        coordinator-only commit point (``commits`` still counts one per
        run) while worker writes surface in ``appends``.
        """
        with self._lock:
            self._pending_adoptions.append(
                {"key": key, "data": data_name, "index": index_name,
                 "rows": int(n_rows), "data_bytes": int(data_bytes),
                 "index_bytes": int(index_bytes),
                 "n_records": int(n_records), "row_width": int(row_width),
                 "dtype": dtype})
            self.appends += 1
            defer = self._defer_depth > 0
        if not defer:
            self.flush()

    def fold_counts(self, *, appends: int = 0, commits: int = 0,
                    evictions: int = 0, invalid_dropped: int = 0) -> None:
        """Fold worker-side store counters into this process's totals."""
        with self._lock:
            self.appends += appends
            self.commits += commits
            self.evictions += evictions
            self.invalid_dropped += invalid_dropped

    def flush(self) -> None:
        """Write pending rows — one coalesced shard per entry — register
        pending adoptions, and publish everything in one manifest
        rewrite."""
        with self._lock:
            if not self._pending_rows and not self._pending_adoptions:
                return
            pending = self._pending_rows
            adoptions = self._pending_adoptions
            self._pending_rows = []
            self._pending_adoptions = []
            self._pending_bytes = 0
            # coalesce per entry: within one scope the cache only appends
            # records it found missing, so parts are disjoint
            grouped: dict[tuple, list[tuple]] = {}
            for key, n_records, width, dtype_str, indices, rows in pending:
                grouped.setdefault((key, n_records, width, dtype_str),
                                   []).append((indices, rows))
            shard_dir = self.root / SHARD_DIR
            with self._write_lock():
                # always merge against the latest committed manifest:
                # another process may have appended since we last read it
                self._manifest_sig = None
                manifest = self._refresh()
                touched: set[str] = set()
                for (key, n_records, width, dtype_str), parts \
                        in grouped.items():
                    indices = np.concatenate([p[0] for p in parts])
                    rows = (parts[0][1] if len(parts) == 1
                            else np.concatenate([p[1] for p in parts]))
                    manifest["clock"] += 1
                    seq = manifest["clock"]
                    # the (flock-serialized, monotonic) clock makes stems
                    # unique for the directory's whole history — a counter
                    # or pid alone recycles and could clobber a committed
                    # shard via os.replace
                    stem = (f"{hashlib.sha1(key.encode()).hexdigest()[:16]}"
                            f"-{seq}-{os.getpid()}")
                    data_name = f"{stem}.npy"
                    index_name = f"{stem}.idx.npy"
                    data_bytes = _save_array(shard_dir / data_name, rows)
                    index_bytes = _save_array(shard_dir / index_name,
                                              indices)
                    self._register_shard(
                        manifest, key, seq, n_records, width, dtype_str,
                        {"data": data_name, "index": index_name,
                         "rows": int(rows.shape[0]),
                         "data_bytes": data_bytes,
                         "index_bytes": index_bytes})
                    touched.add(key)
                # adopted (worker-written) shards: files are already on
                # disk and fsynced, only the manifest registration remains
                for adoption in adoptions:
                    manifest["clock"] += 1
                    self._register_shard(
                        manifest, adoption["key"], manifest["clock"],
                        adoption["n_records"], adoption["row_width"],
                        adoption["dtype"],
                        {"data": adoption["data"],
                         "index": adoption["index"],
                         "rows": adoption["rows"],
                         "data_bytes": adoption["data_bytes"],
                         "index_bytes": adoption["index_bytes"]})
                    touched.add(adoption["key"])
                if self.max_bytes is not None:
                    self._evict(manifest, self.max_bytes, protect=touched)
                self._commit(manifest)
                # cached readers survive appends: the same incarnation
                # extends itself with the new shards on the next read

    def _register_shard(self, manifest: dict, key: str, seq: int,
                        n_records: int, width: int, dtype_str: str,
                        shard: dict) -> None:
        """Attach one shard record to an entry (lock + write lock held).

        A geometry mismatch with the existing entry replaces it wholesale
        — ``seq`` then becomes the new incarnation token, which is what
        invalidates cached readers in *other* processes too: they compare
        ``created`` on every manifest refresh.
        """
        meta = manifest["entries"].get(key)
        if meta is not None and (
                meta["row_width"] != width
                or np.dtype(meta["dtype"]) != np.dtype(dtype_str)
                or meta["n_records"] != n_records):
            self._delete_entry_files(meta)
            meta = None
        if meta is None:
            meta = {"n_records": n_records, "row_width": width,
                    "dtype": dtype_str,
                    "created": seq,  # incarnation token
                    "nbytes": 0, "last_used": seq, "shards": []}
            manifest["entries"][key] = meta
        meta["shards"].append(shard)
        meta["nbytes"] += shard["data_bytes"] + shard["index_bytes"]
        meta["last_used"] = seq

    @contextlib.contextmanager
    def deferred_commits(self):
        """Scope within which appends share one manifest commit.

        The plan engine wraps a whole inspection run in this, turning
        per-(entry, block) commits into a single rewrite.  Nesting is
        allowed; the outermost exit flushes.  A crash inside the scope
        loses only uncommitted shards (orphans, swept by gc) — those
        records simply re-extract next session.
        """
        with self._lock:
            self._defer_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._defer_depth -= 1
                outermost = self._defer_depth == 0
            if outermost:
                self.flush()

    def drop(self, key: str) -> None:
        """Remove one entry and its shard files."""
        self.flush()
        with self._lock, self._write_lock():
            self._manifest_sig = None
            manifest = self._refresh()
            meta = manifest["entries"].pop(key, None)
            self._readers.pop(key, None)
            if meta is None:
                return
            self._delete_entry_files(meta)
            self._commit(manifest)

    def _delete_entry_files(self, meta: dict) -> None:
        for shard in meta["shards"]:
            for name in (shard["data"], shard["index"]):
                with contextlib.suppress(OSError):
                    os.unlink(self.root / SHARD_DIR / name)

    # -- garbage collection ---------------------------------------------
    def _evict(self, manifest: dict, budget: int,
               protect: frozenset | set = frozenset()) -> list[str]:
        """Drop least-recently-used entries until the byte budget holds.

        ``protect`` (the keys a flush just appended to) is never evicted —
        the newest data must survive its own commit.
        """
        entries = manifest["entries"]
        evicted: list[str] = []
        while True:
            total = sum(meta["nbytes"] for meta in entries.values())
            if total <= budget:
                break
            candidates = [k for k in entries if k not in protect]
            if not candidates:
                break
            victim = min(candidates,
                         key=lambda k: entries[k]["last_used"])
            self._delete_entry_files(entries.pop(victim))
            self._readers.pop(victim, None)
            evicted.append(victim)
            self.evictions += 1
        return evicted

    def gc(self, max_bytes: int | None = None) -> dict:
        """Apply a byte budget and clean orphan shard files.

        Returns ``{"evicted": [keys...], "orphans_removed": n}``.  Orphans
        (shards written but never committed, e.g. after a crash) can only
        exist outside the write lock's critical section, so removing them
        here is safe.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        self.flush()  # pending shards would otherwise look like orphans
        with self._lock, self._write_lock():
            self._manifest_sig = None
            manifest = self._refresh()
            evicted = ([] if budget is None
                       else self._evict(manifest, budget))
            live = {name for meta in manifest["entries"].values()
                    for shard in meta["shards"]
                    for name in (shard["data"], shard["index"])}
            orphans = 0
            for path in (self.root / SHARD_DIR).iterdir():
                if path.name not in live:
                    with contextlib.suppress(OSError):
                        path.unlink()
                        orphans += 1
            self._commit(manifest)
        return {"evicted": evicted, "orphans_removed": orphans}

    # -- introspection ---------------------------------------------------
    def keys(self) -> list[str]:
        with self._lock:
            return list(self._refresh()["entries"])

    def stats(self) -> dict:
        with self._lock:
            manifest = self._refresh()
            entries = manifest["entries"]
            return {"entries": len(entries),
                    "bytes": sum(m["nbytes"] for m in entries.values()),
                    "shards": sum(len(m["shards"]) for m in entries.values()),
                    "appends": self.appends,
                    "commits": self.commits,
                    "evictions": self.evictions,
                    "invalid_dropped": self.invalid_dropped}

    def close(self) -> None:
        """Publish pending state, then release every cached mmap reader.

        The store stays usable afterwards (reads re-map on demand); close
        simply returns it to its cold state so shard files can be
        reclaimed by the OS and deleted on platforms that refuse to unlink
        mapped files.
        """
        self.flush()
        with self._lock:
            for _, cached in self._readers.values():
                cached.close()
            self._readers.clear()
