"""Synthetic Broden substitute: images with pixel-level concept masks.

The Broden dataset annotates every pixel with visual concepts (objects,
parts, textures).  This generator draws one primary shape per image --
square, disk, triangle, or a striped texture patch -- over noise, and emits
the exact pixel mask per concept, which is what both NetDissect and
DeepBase's Jaccard measure consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import new_rng

CONCEPTS = ("square", "disk", "triangle", "stripes")


@dataclass
class ShapeDataset:
    """Images plus per-concept pixel masks.

    ``images`` is (n, H, W, 1) float; ``masks[concept]`` is (n, H, W) binary;
    ``labels`` is the dominant-concept id used to train the classifier.
    """

    images: np.ndarray
    masks: dict[str, np.ndarray]
    labels: np.ndarray

    @property
    def n_images(self) -> int:
        return int(self.images.shape[0])

    @property
    def image_size(self) -> int:
        return int(self.images.shape[1])

    def flat_masks(self) -> dict[str, np.ndarray]:
        """Masks reshaped to (n_images, H*W) for mask hypotheses."""
        n = self.n_images
        return {c: m.reshape(n, -1).astype(np.float64)
                for c, m in self.masks.items()}


def _draw_square(canvas, mask, rng) -> None:
    size = canvas.shape[0]
    side = rng.integers(size // 4, size // 2)
    r = rng.integers(0, size - side)
    c = rng.integers(0, size - side)
    canvas[r:r + side, c:c + side] += 1.0
    mask[r:r + side, c:c + side] = 1


def _draw_disk(canvas, mask, rng) -> None:
    size = canvas.shape[0]
    radius = rng.integers(size // 6, size // 3)
    cr = rng.integers(radius, size - radius)
    cc = rng.integers(radius, size - radius)
    rows, cols = np.ogrid[:size, :size]
    disk = (rows - cr)**2 + (cols - cc)**2 <= radius**2
    canvas[disk] += 1.0
    mask[disk] = 1


def _draw_triangle(canvas, mask, rng) -> None:
    size = canvas.shape[0]
    height = rng.integers(size // 3, 2 * size // 3)
    apex_r = rng.integers(0, size - height)
    apex_c = rng.integers(height // 2, size - height // 2)
    for dr in range(height):
        half = dr // 2
        row = apex_r + dr
        canvas[row, apex_c - half:apex_c + half + 1] += 1.0
        mask[row, apex_c - half:apex_c + half + 1] = 1


def _draw_stripes(canvas, mask, rng) -> None:
    size = canvas.shape[0]
    extent = rng.integers(size // 3, 2 * size // 3)
    r = rng.integers(0, size - extent)
    c = rng.integers(0, size - extent)
    period = int(rng.integers(2, 4))
    for dr in range(extent):
        if (dr // 1) % period == 0:
            canvas[r + dr, c:c + extent] += 1.0
        mask[r + dr, c:c + extent] = 1


_DRAWERS = {"square": _draw_square, "disk": _draw_disk,
            "triangle": _draw_triangle, "stripes": _draw_stripes}


def generate_shape_dataset(n_images: int = 300, image_size: int = 24,
                           noise: float = 0.15,
                           seed: int = 0) -> ShapeDataset:
    """Sample ``n_images`` with one dominant concept each."""
    rng = new_rng(seed)
    images = np.zeros((n_images, image_size, image_size, 1))
    masks = {c: np.zeros((n_images, image_size, image_size), dtype=np.int8)
             for c in CONCEPTS}
    labels = np.zeros(n_images, dtype=np.int64)
    for i in range(n_images):
        concept_id = int(rng.integers(len(CONCEPTS)))
        concept = CONCEPTS[concept_id]
        canvas = rng.standard_normal((image_size, image_size)) * noise
        _DRAWERS[concept](canvas, masks[concept][i], rng)
        images[i, :, :, 0] = canvas
        labels[i] = concept_id
    return ShapeDataset(images=images, masks=masks, labels=labels)
