"""CNN inspection substrate (Appendix E): synthetic Broden-style images,
a small trainable CNN, and a NetDissect implementation to compare DeepBase's
Jaccard measure against (Figure 15).
"""

from repro.vision.cnn_model import ShapeCnn, pixel_behaviors, train_shape_cnn
from repro.vision.netdissect import NetDissect, netdissect_scores
from repro.vision.shapes import ShapeDataset, generate_shape_dataset

__all__ = [
    "NetDissect",
    "ShapeCnn",
    "ShapeDataset",
    "generate_shape_dataset",
    "netdissect_scores",
    "pixel_behaviors",
    "train_shape_cnn",
]
