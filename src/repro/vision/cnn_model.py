"""A small trainable CNN whose channel activation maps are inspected
(the VGG-16 substitute of Appendix E).

Architecture: Conv(3x3) -> ReLU -> MaxPool(2) -> Conv(3x3) -> ReLU ->
GlobalAvgPool -> Dense softmax.  The inspected units are the second conv
layer's channels; :func:`pixel_behaviors` upsamples their activation maps
back to image resolution so each pixel is a "symbol" whose behavior aligns
with the concept masks.
"""

from __future__ import annotations

import numpy as np

from repro.nn.conv import Conv2D, GlobalAvgPool, MaxPool2D
from repro.nn.layers import Dense, Relu
from repro.nn.losses import accuracy, softmax_cross_entropy
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.util.rng import new_rng
from repro.vision.shapes import ShapeDataset


class ShapeCnn(Module):
    """Two-conv-layer classifier over (batch, H, W, 1) images."""

    def __init__(self, n_classes: int, rng: np.random.Generator,
                 channels1: int = 8, channels2: int = 12,
                 model_id: str = "shape_cnn"):
        self.model_id = model_id
        self.n_classes = n_classes
        self.conv1 = Conv2D(1, channels1, 3, rng)
        self.relu1 = Relu()
        self.pool = MaxPool2D(2)
        self.conv2 = Conv2D(channels1, channels2, 3, rng)
        self.relu2 = Relu()
        self.gap = GlobalAvgPool()
        self.head = Dense(channels2, n_classes, rng)
        self.n_units = channels2  # the inspected layer's channels

    # ------------------------------------------------------------------
    def forward(self, images: np.ndarray) -> np.ndarray:
        x = self.relu1.forward(self.conv1.forward(images))
        x = self.pool.forward(x)
        self._maps = self.relu2.forward(self.conv2.forward(x))
        return self.head.forward(self.gap.forward(self._maps))

    def activation_maps(self, images: np.ndarray) -> np.ndarray:
        """Channel maps of the inspected conv layer: (b, h', w', channels)."""
        self.forward(images)
        return self._maps

    def loss_and_grads(self, images: np.ndarray,
                       labels: np.ndarray) -> tuple[float, float]:
        logits = self.forward(images)
        loss, dlogits = softmax_cross_entropy(logits, labels)
        acc = accuracy(logits, labels)
        dmaps = self.gap.backward(self.head.backward(dlogits))
        dx = self.conv2.backward(self.relu2.backward(dmaps))
        dx = self.pool.backward(dx)
        self.conv1.backward(self.relu1.backward(dx))
        return loss, acc

    def evaluate(self, images: np.ndarray,
                 labels: np.ndarray) -> tuple[float, float]:
        logits = self.forward(images)
        loss, _ = softmax_cross_entropy(logits, labels)
        return loss, accuracy(logits, labels)

    def architecture(self) -> dict:
        return {"kind": "shape_cnn", "n_classes": self.n_classes,
                "model_id": self.model_id}


def train_shape_cnn(dataset: ShapeDataset, epochs: int = 6,
                    batch_size: int = 32, lr: float = 2e-3,
                    seed: int = 0, verbose: bool = False) -> ShapeCnn:
    """Train the classifier on the shape dataset."""
    rng = new_rng(seed)
    model = ShapeCnn(n_classes=len(np.unique(dataset.labels)), rng=rng)
    optimizer = Adam(model.parameters(), lr=lr)
    n = dataset.n_images
    for epoch in range(epochs):
        order = rng.permutation(n)
        total_loss, total_acc, batches = 0.0, 0.0, 0
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            optimizer.zero_grad()
            loss, acc = model.loss_and_grads(dataset.images[idx],
                                             dataset.labels[idx])
            optimizer.step()
            total_loss += loss
            total_acc += acc
            batches += 1
        if verbose:
            print(f"cnn epoch {epoch}: loss={total_loss / batches:.3f} "
                  f"acc={total_acc / batches:.3f}")
    return model


def upsample_nearest(maps: np.ndarray, out_size: int) -> np.ndarray:
    """Nearest-neighbour upsampling of (b, h, w, c) maps to out_size."""
    b, h, w, c = maps.shape
    rows = np.clip((np.arange(out_size) * h) // out_size, 0, h - 1)
    cols = np.clip((np.arange(out_size) * w) // out_size, 0, w - 1)
    return maps[:, rows][:, :, cols]


def pixel_behaviors(model: ShapeCnn, images: np.ndarray,
                    batch_size: int = 64) -> np.ndarray:
    """Per-pixel channel behaviors: (n_images, H*W, channels).

    Activation maps are upsampled to image resolution so that pixel ``p``'s
    behavior aligns with annotation masks -- the NetDissect alignment step.
    """
    out_size = images.shape[1]
    chunks = []
    for start in range(0, images.shape[0], batch_size):
        maps = model.activation_maps(images[start:start + batch_size])
        up = upsample_nearest(maps, out_size)
        chunks.append(up.reshape(up.shape[0], -1, up.shape[-1]))
    return np.concatenate(chunks, axis=0)
