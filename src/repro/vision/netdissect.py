"""NetDissect re-implementation (Bau et al.) for the Figure 15 comparison.

For each channel: estimate the top-quantile activation threshold over a
sample of pixel activations (NetDissect uses an online quantile
approximation; we subsample, which reproduces its non-determinism), binarize
the upsampled activation maps at that threshold, and report the IoU against
each concept's pixel mask.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extract.base import Extractor
from repro.util.rng import new_rng
from repro.vision.cnn_model import ShapeCnn, pixel_behaviors
from repro.vision.shapes import ShapeDataset


@dataclass
class NetDissect:
    """Configuration of the dissection pipeline."""

    quantile: float = 0.995
    sample_fraction: float = 0.25   # pixels sampled for threshold estimation
    seed: int = 0

    def run(self, model: ShapeCnn,
            dataset: ShapeDataset) -> dict[str, np.ndarray]:
        """Returns {concept: iou_per_channel}."""
        rng = new_rng(self.seed)
        behaviors = pixel_behaviors(model, dataset.images)
        n_images, n_pixels, n_channels = behaviors.shape
        flat = behaviors.reshape(-1, n_channels)

        # online-quantile stand-in: estimate thresholds from a pixel sample
        n_sample = max(1024, int(flat.shape[0] * self.sample_fraction))
        sample_idx = rng.choice(flat.shape[0],
                                size=min(n_sample, flat.shape[0]),
                                replace=False)
        thresholds = np.quantile(flat[sample_idx], self.quantile, axis=0)

        active = flat > thresholds[None, :]
        scores: dict[str, np.ndarray] = {}
        for concept, mask in dataset.flat_masks().items():
            m = mask.reshape(-1) > 0
            intersection = (active & m[:, None]).sum(axis=0)
            union = active.sum(axis=0) + m.sum() - intersection
            with np.errstate(divide="ignore", invalid="ignore"):
                scores[concept] = np.where(
                    union > 0, intersection / np.maximum(union, 1), 0.0)
        return scores


def netdissect_scores(model: ShapeCnn, dataset: ShapeDataset,
                      quantile: float = 0.995,
                      seed: int = 0) -> dict[str, np.ndarray]:
    """Convenience wrapper returning {concept: iou_per_channel}."""
    return NetDissect(quantile=quantile, seed=seed).run(model, dataset)


class CnnPixelExtractor(Extractor):
    """DeepBase-side extractor: pixels are symbols, channels are units.

    Subclasses :class:`repro.extract.base.Extractor` so the standard
    Jaccard measure can score CNN channels against mask hypotheses and the
    behavior caches can key its output (the image tensor is content-hashed
    into the cache key).  It overrides :meth:`extract` wholesale, so it is
    an *opaque* extractor: behaviors cache at full width per instance key,
    without a shared raw sweep.
    """

    def __init__(self, images: np.ndarray, batch_size: int = 64):
        self.images = images
        self.batch_size = batch_size

    def n_units(self, model) -> int:
        return model.n_units

    def extract(self, model, records: np.ndarray,
                hid_units=None) -> np.ndarray:
        # ``records`` carries image indices in its first column
        idx = np.asarray(records[:, 0], dtype=int)
        behaviors = pixel_behaviors(model, self.images[idx],
                                    batch_size=self.batch_size)
        if hid_units is not None:
            behaviors = behaviors[:, :, np.asarray(hid_units, dtype=int)]
        return behaviors.reshape(-1, behaviors.shape[-1])
