"""Hypothesis functions: user-provided logic that labels input symbols.

A hypothesis function maps a record to a behavior vector of length ``ns``
(one value per input symbol).  This package provides the generators the paper
describes in Section 4.2: parse trees (time-domain, signal and composite
depth encodings), finite state machines, annotations, and a library of simple
detectors, plus the grammar-to-hypotheses helper used by the benchmarks
(``gram_hyp_functions`` in the paper's API example).
"""

from repro.hypotheses.base import (FunctionHypothesis, HypothesisFunction,
                                   PrecomputedHypothesis,
                                   validate_hypothesis_output)
from repro.hypotheses.fsm import FSM, FsmHypothesis, keyword_fsm
from repro.hypotheses.iterators import (IteratorHypothesis,
                                        bracket_machine_hypotheses)
from repro.hypotheses.library import (CharSetHypothesis, KeywordHypothesis,
                                      NestingDepthHypothesis,
                                      PositionCounterHypothesis,
                                      PrefixLengthHypothesis)
from repro.hypotheses.parse_hyps import (ParseProvider,
                                         grammar_hypotheses)
from repro.hypotheses.pos import SimplePosTagger

__all__ = [
    "CharSetHypothesis",
    "FSM",
    "FsmHypothesis",
    "FunctionHypothesis",
    "HypothesisFunction",
    "IteratorHypothesis",
    "KeywordHypothesis",
    "bracket_machine_hypotheses",
    "NestingDepthHypothesis",
    "ParseProvider",
    "PositionCounterHypothesis",
    "PrecomputedHypothesis",
    "PrefixLengthHypothesis",
    "SimplePosTagger",
    "grammar_hypotheses",
    "keyword_fsm",
    "validate_hypothesis_output",
]
