"""Finite-state-machine hypotheses (Section 4.2).

An FSM reads the record character by character; each symbol triggers a state
transition and the hypothesis emits the current state label (or, hot-one
encoded, a separate binary hypothesis per state).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.data.datasets import Dataset
from repro.hypotheses.base import HypothesisFunction


class FSM:
    """Deterministic FSM over characters.

    ``transitions[state]`` maps a character to the next state; characters
    missing from the mapping fall back to the state's default transition
    (``transitions[state][None]``), or stay in place when no default exists.
    """

    def __init__(self, initial: int,
                 transitions: Mapping[int, Mapping[str | None, int]],
                 n_states: int | None = None):
        self.initial = initial
        self.transitions = {s: dict(t) for s, t in transitions.items()}
        states = set(self.transitions)
        for table in self.transitions.values():
            states.update(table.values())
        states.add(initial)
        self.n_states = n_states if n_states is not None else max(states) + 1

    def run(self, text: str) -> np.ndarray:
        """State id *after* reading each character."""
        state = self.initial
        out = np.empty(len(text), dtype=np.int64)
        for i, ch in enumerate(text):
            table = self.transitions.get(state, {})
            state = table.get(ch, table.get(None, state))
            out[i] = state
        return out


class FsmHypothesis(HypothesisFunction):
    """Wraps an FSM; emits state labels or the indicator of one state."""

    def __init__(self, name: str, fsm: FSM, state: int | None = None):
        super().__init__(name, categorical=state is None)
        self.fsm = fsm
        self.state = state

    def behavior(self, dataset: Dataset, index: int) -> np.ndarray:
        states = self.fsm.run(dataset.record_text(index))
        if self.state is None:
            return states.astype(np.float64)
        return (states == self.state).astype(np.float64)


def keyword_fsm(keyword: str) -> FSM:
    """Build an FSM whose state equals the matched prefix length of a keyword.

    State ``len(keyword)`` means "just finished reading the keyword" --
    the hot-one hypothesis for that state detects keyword completions.
    Uses KMP failure links so overlapping occurrences are tracked correctly.
    """
    if not keyword:
        raise ValueError("keyword must be non-empty")
    k = len(keyword)
    # KMP failure function
    fail = [0] * (k + 1)
    j = 0
    for i in range(1, k):
        while j and keyword[i] != keyword[j]:
            j = fail[j]
        if keyword[i] == keyword[j]:
            j += 1
        fail[i + 1] = j

    transitions: dict[int, dict[str | None, int]] = {}
    alphabet = sorted(set(keyword))
    for state in range(k + 1):
        table: dict[str | None, int] = {None: 0}
        for ch in alphabet:
            s = state if state < k else fail[k]
            while s and keyword[s] != ch:
                s = fail[s]
            table[ch] = s + 1 if keyword[s] == ch else 0
        transitions[state] = table
    return FSM(initial=0, transitions=transitions, n_states=k + 1)


def fsm_state_hypotheses(name: str, fsm: FSM) -> list[FsmHypothesis]:
    """Hot-one encode an FSM into one binary hypothesis per state."""
    return [FsmHypothesis(f"{name}:state{s}", fsm, state=s)
            for s in range(fsm.n_states)]
