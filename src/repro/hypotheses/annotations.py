"""Annotation-derived hypotheses (Section 4.2, "Annotations").

Datasets often ship with aligned labels: POS tags per token, bounding boxes
or pixel masks per image.  Each annotation type becomes a hypothesis that
emits 1 when the annotation is present and 0 otherwise; categorical
annotations (e.g. the full POS tag id) are exposed as a single multi-class
hypothesis.
"""

from __future__ import annotations

import numpy as np

from repro.hypotheses.base import PrecomputedHypothesis


def tag_indicator_hypotheses(tag_matrix: np.ndarray, tag_names: list[str],
                             prefix: str = "pos"
                             ) -> list[PrecomputedHypothesis]:
    """One binary hypothesis per tag from a (records, ns) tag-id matrix."""
    hyps = []
    for tag_id, tag in enumerate(tag_names):
        matrix = (tag_matrix == tag_id).astype(np.float64)
        hyps.append(PrecomputedHypothesis(f"{prefix}:{tag}", matrix))
    return hyps


def categorical_hypothesis(tag_matrix: np.ndarray,
                           name: str = "pos_tags") -> PrecomputedHypothesis:
    """The full tag sequence as one categorical hypothesis.

    This is the Figure 11 setting: "the function is not binary, it returns
    one of the distinct POS tags at each step".
    """
    return PrecomputedHypothesis(name, tag_matrix.astype(np.float64),
                                 categorical=True)


def mask_hypotheses(masks: dict[str, np.ndarray]) -> list[PrecomputedHypothesis]:
    """Pixel-mask hypotheses for vision models.

    ``masks[concept]`` is (n_images, n_pixels) with 1 where the concept's
    pixels are annotated -- the Broden-style input of Appendix E.
    """
    return [PrecomputedHypothesis(f"mask:{concept}", matrix)
            for concept, matrix in sorted(masks.items())]
