"""General-iterator hypotheses (Section 4.2, "General Iterators").

Programs modeled as iterative procedures over input symbols can be
featurized: any expression executed, or the state of any variable, between
reads of the next character generates a label for that character.  The
paper's example is a shift-reduce parser whose stack size labels each
character.

:class:`IteratorHypothesis` wraps an arbitrary stateful procedure;
:class:`BracketMachine` is a concrete shift-reduce-style recognizer for
bracket languages whose observable variables (stack depth, reduce events)
become hypothesis functions.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.data.datasets import Dataset
from repro.hypotheses.base import HypothesisFunction


class IteratorHypothesis(HypothesisFunction):
    """Featurizes a stateful per-symbol procedure.

    ``make_state()`` builds fresh per-record state; ``step(state, char)``
    consumes one character and returns the label to emit for it.
    """

    def __init__(self, name: str, make_state: Callable[[], object],
                 step: Callable[[object, str], float],
                 categorical: bool = False):
        super().__init__(name, categorical=categorical)
        self.make_state = make_state
        self.step = step

    def behavior(self, dataset: Dataset, index: int) -> np.ndarray:
        text = dataset.record_text(index)
        state = self.make_state()
        out = np.empty(len(text))
        for i, ch in enumerate(text):
            out[i] = float(self.step(state, ch))
        return out


class BracketMachine:
    """A shift-reduce recognizer for bracket languages.

    Shifts every character onto a stack; when a closing bracket arrives it
    reduces the whole bracketed span to a single nonterminal marker.
    Observable variables after each step:

    * ``depth``       -- current stack depth
    * ``max_depth``   -- maximum stack depth so far
    * ``reduced``     -- whether a reduction fired on this character
    * ``shifts``      -- total symbols shifted so far
    """

    def __init__(self, open_char: str = "(", close_char: str = ")"):
        self.open_char = open_char
        self.close_char = close_char
        self.stack: list[str] = []
        self.max_depth = 0
        self.shifts = 0
        self.reduced = False

    def step(self, char: str) -> None:
        self.reduced = False
        if char == self.close_char:
            # reduce: pop items back to the matching open bracket
            while self.stack and self.stack[-1] != self.open_char:
                self.stack.pop()
            if self.stack:
                self.stack.pop()
            self.stack.append("<expr>")
            self.reduced = True
        else:
            self.stack.append(char)
            self.shifts += 1
        self.max_depth = max(self.max_depth, len(self.stack))

    @property
    def depth(self) -> int:
        return len(self.stack)


def bracket_machine_hypotheses(open_char: str = "(", close_char: str = ")"
                               ) -> list[IteratorHypothesis]:
    """The paper's shift-reduce featurization: one hypothesis per variable."""

    def make() -> BracketMachine:
        return BracketMachine(open_char, close_char)

    def depth_step(machine: BracketMachine, ch: str) -> float:
        machine.step(ch)
        return machine.depth

    def max_depth_step(machine: BracketMachine, ch: str) -> float:
        machine.step(ch)
        return machine.max_depth

    def reduce_step(machine: BracketMachine, ch: str) -> float:
        machine.step(ch)
        return 1.0 if machine.reduced else 0.0

    return [
        IteratorHypothesis("sr:stack_depth", make, depth_step),
        IteratorHypothesis("sr:max_stack_depth", make, max_depth_step),
        IteratorHypothesis("sr:reduce_event", make, reduce_step),
    ]
