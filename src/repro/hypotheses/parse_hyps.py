"""Hypothesis functions generated from parse trees (Section 4.2, Figure 3).

For every nonterminal node type the grammar defines, two encodings are
produced (matching the benchmark setup in Section 6.2):

* **time-domain** ``time:<rule>`` -- emits 1 for every character consumed by
  the rule or one of its descendants;
* **signal** ``signal:<rule>`` -- emits 1 only at the first and last
  character of each span;

plus optionally the **composite** ``depth:<rule>`` encoding that counts rule
nesting depth (``h1`` in Figure 3).

Parsing is shared: a :class:`ParseProvider` parses each source string at most
once per inspection run, amortizing the (expensive, Earley) parse across all
hypotheses derived from it.  When the workload retains derivation trees from
sampling, the provider reuses them instead (``mode="derivation"``), which is
the cached-hypothesis setting of Figure 9.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.grammar.cfg import Grammar
from repro.grammar.earley import EarleyParser
from repro.grammar.tree import ParseNode
from repro.hypotheses.base import HypothesisFunction

#: start symbols span the whole string and would yield always-on hypotheses
_SKIP_NODE_TYPES = {"query", "r0"}


class ParseProvider:
    """Parses source strings on demand and caches the trees.

    ``mode="reparse"`` runs the Earley parser (the realistic, slow path that
    dominates hypothesis-extraction cost in the paper);
    ``mode="derivation"`` reuses the trees recorded at sampling time.
    ``parse_count`` tracks actual parser invocations, which the caching
    benchmarks assert on.
    """

    def __init__(self, grammar: Grammar, sources: list[str],
                 trees: list[ParseNode] | None = None,
                 mode: str = "reparse"):
        if mode not in ("reparse", "derivation"):
            raise ValueError(f"unknown parse mode {mode!r}")
        if mode == "derivation" and trees is None:
            raise ValueError("derivation mode requires sampled trees")
        self.grammar = grammar
        self.sources = sources
        self.mode = mode
        self._trees = trees
        self._parser = EarleyParser(grammar)
        self._cache: dict[int, ParseNode] = {}
        self.parse_count = 0

    def tree_for(self, source_id: int) -> ParseNode:
        if source_id in self._cache:
            return self._cache[source_id]
        if self.mode == "derivation":
            assert self._trees is not None
            tree = self._trees[source_id]
        else:
            self.parse_count += 1
            tree = self._parser.parse(self.sources[source_id])
        self._cache[source_id] = tree
        return tree

    def clear_cache(self) -> None:
        self._cache.clear()
        self.parse_count = 0


class ParseTreeHypothesis(HypothesisFunction):
    """One (rule, encoding) pair evaluated over windowed records."""

    def __init__(self, rule: str, encoding: str, provider: ParseProvider):
        if encoding not in ("time", "signal", "depth"):
            raise ValueError(f"unknown encoding {encoding!r}")
        super().__init__(f"{encoding}:{rule}")
        self.rule = rule
        self.encoding = encoding
        self.provider = provider
        self._labels_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _source_labels(self, source_id: int) -> np.ndarray:
        """Per-character labels over the raw (unpadded) source string."""
        cached = self._labels_cache.get(source_id)
        if cached is not None:
            return cached
        tree = self.provider.tree_for(source_id)
        length = len(self.provider.sources[source_id])
        if self.encoding == "depth":
            labels = np.asarray(
                tree.depth_profile(self.rule, length), dtype=np.float64)
        else:
            labels = np.zeros(length)
            for start, end in tree.spans_of(self.rule):
                end = min(end, length)
                if end <= start:
                    continue
                if self.encoding == "time":
                    labels[start:end] = 1.0
                else:  # signal
                    labels[start] = 1.0
                    labels[end - 1] = 1.0
        self._labels_cache[source_id] = labels
        return labels

    def behavior(self, dataset: Dataset, index: int) -> np.ndarray:
        meta = dataset.meta[index]
        labels = self._source_labels(meta["source_id"])
        offset = meta["offset"]
        ns = dataset.n_symbols
        out = np.zeros(ns)
        lo = max(0, -offset)          # skip padding positions
        hi = min(ns, labels.shape[0] - offset)
        if hi > lo:
            out[lo:hi] = labels[offset + lo:offset + hi]
        return out


def grammar_hypotheses(grammar: Grammar, sources: list[str],
                       trees: list[ParseNode] | None = None,
                       encodings: tuple[str, ...] = ("time", "signal"),
                       mode: str = "reparse",
                       max_hypotheses: int | None = None
                       ) -> list[ParseTreeHypothesis]:
    """The paper's ``gram_hyp_functions``: hypotheses for every nonterminal.

    Returns ``len(encodings)`` hypotheses per nonterminal node type (the
    benchmark's "two hypotheses per non-terminal"), all sharing one
    :class:`ParseProvider` so each source string is parsed at most once.
    """
    provider = ParseProvider(grammar, sources, trees=trees, mode=mode)
    node_types = sorted(grammar.nonterminals - _SKIP_NODE_TYPES)
    hyps = [ParseTreeHypothesis(rule, encoding, provider)
            for encoding in encodings for rule in node_types]
    if max_hypotheses is not None:
        hyps = hyps[:max_hypotheses]
    return hyps
