"""Built-in hypothesis library: keyword, character-class and counter logic.

These cover the paper's running examples: "detects the SELECT keyword"
(emit 1 for keyword characters, 0 otherwise), "counts the characters in the
input" (emit a number between 0 and ns), whitespace/punctuation detectors,
and the parentheses nesting-level hypotheses of Appendix C.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import PAD_CHAR, Dataset
from repro.hypotheses.base import HypothesisFunction


class KeywordHypothesis(HypothesisFunction):
    """Emits 1 for every character inside an occurrence of ``keyword``."""

    def __init__(self, keyword: str, name: str | None = None):
        super().__init__(name or f"kw:{keyword.strip()}")
        if not keyword:
            raise ValueError("keyword must be non-empty")
        self.keyword = keyword

    def behavior(self, dataset: Dataset, index: int) -> np.ndarray:
        text = dataset.record_text(index)
        out = np.zeros(len(text))
        start = text.find(self.keyword)
        while start != -1:
            out[start:start + len(self.keyword)] = 1.0
            start = text.find(self.keyword, start + 1)
        return out


class CharSetHypothesis(HypothesisFunction):
    """Emits 1 for characters belonging to a set (whitespace, digits, ...)."""

    def __init__(self, name: str, chars: str):
        super().__init__(name)
        self.chars = frozenset(chars)

    def behavior(self, dataset: Dataset, index: int) -> np.ndarray:
        text = dataset.record_text(index)
        return np.fromiter((1.0 if c in self.chars else 0.0 for c in text),
                           dtype=np.float64, count=len(text))


class PositionCounterHypothesis(HypothesisFunction):
    """Emits the 0-based position of each symbol ("the model counts")."""

    def __init__(self, name: str = "position"):
        super().__init__(name)

    def behavior(self, dataset: Dataset, index: int) -> np.ndarray:
        return np.arange(dataset.n_symbols, dtype=np.float64)


class PrefixLengthHypothesis(HypothesisFunction):
    """Emits the number of non-padding characters read so far."""

    def __init__(self, name: str = "prefix_length"):
        super().__init__(name)

    def behavior(self, dataset: Dataset, index: int) -> np.ndarray:
        text = dataset.record_text(index)
        count = 0
        out = np.empty(len(text))
        for i, ch in enumerate(text):
            if ch != PAD_CHAR:
                count += 1
            out[i] = count
        return out


class NestingDepthHypothesis(HypothesisFunction):
    """Per-character parenthesis nesting level (Appendix C ground truth).

    ``level=None`` emits the raw depth; an integer emits the indicator of
    "currently at that nesting level".
    """

    def __init__(self, level: int | None = None, name: str | None = None):
        label = "nesting_depth" if level is None else f"nesting_level_{level}"
        super().__init__(name or label)
        self.level = level

    def behavior(self, dataset: Dataset, index: int) -> np.ndarray:
        text = dataset.record_text(index)
        depth = 0
        out = np.empty(len(text))
        for i, ch in enumerate(text):
            if ch == "(":
                out[i] = depth
                depth += 1
            elif ch == ")":
                depth -= 1
                out[i] = depth
            else:
                out[i] = depth
        if self.level is None:
            return out
        return (out == self.level).astype(np.float64)


class CurrentCharHypothesis(HypothesisFunction):
    """Indicator that the current input character equals ``char``.

    Appendix C uses this to show that "specialized" units may simply learn
    the current symbol rather than higher-level logic.
    """

    def __init__(self, char: str, name: str | None = None):
        super().__init__(name or f"char:{char}")
        if len(char) != 1:
            raise ValueError("char must be a single character")
        self.char = char

    def behavior(self, dataset: Dataset, index: int) -> np.ndarray:
        text = dataset.record_text(index)
        return np.fromiter((1.0 if c == self.char else 0.0 for c in text),
                           dtype=np.float64, count=len(text))


def sql_keyword_hypotheses(keywords: tuple[str, ...] | None = None
                           ) -> list[KeywordHypothesis]:
    """Keyword detectors for the standard SQL keywords."""
    from repro.grammar.sql import SQL_KEYWORDS
    return [KeywordHypothesis(kw) for kw in (keywords or SQL_KEYWORDS)]
