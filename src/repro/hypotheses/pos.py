"""Part-of-speech tagging (CoreNLP substitute).

The NMT experiments annotate each input word with a Penn-Treebank-style POS
tag and probe whether encoder units predict them.  This tagger combines a
word lexicon with suffix heuristics; for the synthetic parallel corpus of
:mod:`repro.nmt.corpus` the lexicon is exact by construction, so tags match
the generating grammar's ground truth.
"""

from __future__ import annotations

import numpy as np

#: Penn Treebank tags appearing in Figure 11 of the paper.
PTB_TAGS = ("NNP", "VBZ", "RB", "NN", "DT", "VBD", "IN", "TO", "VB", "VBN",
            ".", "JJ", "NNS", "CD", ":", "CC", "PRP", "VBP")

_SUFFIX_RULES = (
    ("ing", "VBG"),
    ("ed", "VBD"),
    ("ly", "RB"),
    ("es", "VBZ"),
    ("s", "NNS"),
)

_CLOSED_CLASS = {
    "the": "DT", "a": "DT", "an": "DT",
    "and": "CC", "or": "CC", "but": "CC",
    "he": "PRP", "she": "PRP", "it": "PRP", "they": "PRP", "we": "PRP",
    "to": "TO",
    "in": "IN", "on": "IN", "at": "IN", "with": "IN", "of": "IN",
    "near": "IN", "under": "IN",
    ".": ".", ",": ",", ":": ":", ";": ":",
}


class SimplePosTagger:
    """Lexicon + suffix-rule tagger over whitespace-tokenized words."""

    def __init__(self, lexicon: dict[str, str] | None = None,
                 default_tag: str = "NN"):
        self.lexicon = dict(_CLOSED_CLASS)
        if lexicon:
            self.lexicon.update(lexicon)
        self.default_tag = default_tag

    def tag_word(self, word: str) -> str:
        lower = word.lower()
        if lower in self.lexicon:
            return self.lexicon[lower]
        if word and word[0].isupper():
            return "NNP"
        if word.isdigit():
            return "CD"
        for suffix, tag in _SUFFIX_RULES:
            if lower.endswith(suffix) and len(lower) > len(suffix) + 1:
                return tag
        return self.default_tag

    def tag(self, words: list[str]) -> list[str]:
        return [self.tag_word(w) for w in words]

    def tag_ids(self, words: list[str],
                tag_names: list[str]) -> np.ndarray:
        """Tag a sentence and map tags to ids within ``tag_names``.

        Unknown tags map to the id of the default tag.
        """
        index = {t: i for i, t in enumerate(tag_names)}
        fallback = index.get(self.default_tag, 0)
        return np.array([index.get(t, fallback) for t in self.tag(words)],
                        dtype=np.int64)
