"""Hypothesis function protocol and validation.

The only contract (Section 3): evaluated over a record, a hypothesis emits a
numeric behavior vector whose length equals the record's symbol count ``ns``.
Output format is checked during execution, as the paper's implementation
does for arbitrary user Python functions.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.data.datasets import Dataset
from repro.util.identity import attr_identity


def validate_hypothesis_output(name: str, behavior: np.ndarray,
                               n_symbols: int) -> np.ndarray:
    """Check the hypothesis-function output spec; returns a float vector."""
    arr = np.asarray(behavior)
    if arr.ndim != 1:
        raise ValueError(
            f"hypothesis {name!r} must return a 1-D vector, got shape {arr.shape}")
    if arr.shape[0] != n_symbols:
        raise ValueError(
            f"hypothesis {name!r} returned {arr.shape[0]} behaviors for a "
            f"record of {n_symbols} symbols")
    if not np.issubdtype(arr.dtype, np.number):
        raise ValueError(f"hypothesis {name!r} must return numeric values")
    return arr.astype(np.float64)


class HypothesisFunction:
    """Base class; subclasses implement :meth:`behavior` per record.

    ``categorical`` marks hypotheses whose values are class ids rather than
    magnitudes (e.g. POS tags); joint measures one-hot them internally.
    """

    def __init__(self, name: str, categorical: bool = False):
        self.name = name
        self.categorical = categorical

    def behavior(self, dataset: Dataset, index: int) -> np.ndarray:
        """Behavior vector (length ``ns``) for record ``index``."""
        raise NotImplementedError

    def cache_key(self) -> str:
        """Stable *content* identity of the behaviors this hypothesis emits.

        Used by :class:`repro.core.cache.HypothesisCache` and its disk
        tier: the name alone is not safe to persist under, because an
        edited hypothesis with the same name would silently serve stale
        stored behaviors in a later session.  The default folds in every
        constructor attribute — arrays by content hash, wrapped callables
        by bytecode + closure (see :mod:`repro.util.identity`) — and is
        memoized, since hypotheses are treated as immutable once built.
        """
        key = getattr(self, "_cache_key_memo", None)
        if key is None:
            parts = [f"{k}={attr_identity(v)}"
                     for k, v in sorted(vars(self).items())
                     if not k.startswith("_")]
            key = f"{type(self).__name__}({', '.join(parts)})"
            self._cache_key_memo = key
        return key

    def extract(self, dataset: Dataset,
                indices: np.ndarray | list[int] | None = None) -> np.ndarray:
        """Behavior matrix (n_records, ns) for the given record indices."""
        if indices is None:
            indices = range(dataset.n_records)
        rows = [validate_hypothesis_output(
            self.name, self.behavior(dataset, int(i)), dataset.n_symbols)
            for i in indices]
        return np.stack(rows) if rows else np.empty((0, dataset.n_symbols))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class FunctionHypothesis(HypothesisFunction):
    """Wraps an arbitrary Python callable ``f(text) -> vector``.

    The callable sees the raw record text (including padding characters) and
    must return one value per character -- the paper's "arbitrary hypothesis
    logic" entry point.
    """

    def __init__(self, name: str, fn: Callable[[str], np.ndarray],
                 categorical: bool = False):
        super().__init__(name, categorical=categorical)
        self.fn = fn

    def behavior(self, dataset: Dataset, index: int) -> np.ndarray:
        return np.asarray(self.fn(dataset.record_text(index)), dtype=np.float64)


class PrecomputedHypothesis(HypothesisFunction):
    """A hypothesis whose full behavior matrix is already materialized.

    Used for annotation-derived hypotheses (POS tags, pixel masks) where the
    labels were produced together with the dataset.
    """

    def __init__(self, name: str, matrix: np.ndarray,
                 categorical: bool = False):
        super().__init__(name, categorical=categorical)
        self.matrix = np.asarray(matrix, dtype=np.float64)
        if self.matrix.ndim != 2:
            raise ValueError("precomputed behavior matrix must be 2-D")

    def behavior(self, dataset: Dataset, index: int) -> np.ndarray:
        return self.matrix[index]

    def extract(self, dataset: Dataset,
                indices: np.ndarray | list[int] | None = None) -> np.ndarray:
        if indices is None:
            return self.matrix
        return self.matrix[np.asarray(list(indices), dtype=int)]
