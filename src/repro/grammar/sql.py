"""Parameterized SQL grammar for the scalability benchmark (Section 6.2).

The paper samples synthetic SQL from PCFG subsets whose size varies between
95 and 171 production rules to control language complexity and the number of
derived hypothesis functions.  :func:`sql_grammar` rebuilds that family: the
rule count is tuned by the number of table/column name terminals and by
feature toggles (aggregates, GROUP BY, ORDER BY, LIMIT, string literals).

Recursive alternatives carry lower sampling weights so sampled queries stay
short enough for windowed language-model training.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grammar.cfg import Grammar, Production

#: SQL keywords used by keyword-detector hypotheses.
SQL_KEYWORDS = ("SELECT", "FROM", "WHERE", "GROUP BY", "ORDER BY", "LIMIT",
                "AND", "OR", "ASC", "DESC")


@dataclass(frozen=True)
class SqlGrammarConfig:
    """Feature toggles and name-pool sizes for the SQL grammar family."""

    n_tables: int = 8
    n_columns: int = 12
    n_letters: int = 8
    with_aggregates: bool = True
    with_group_by: bool = True
    with_order_by: bool = True
    with_limit: bool = True
    with_strings: bool = True
    recursion_weight: float = 0.35


_PRESETS = {
    # 95 rules: minimal subset, the paper's smallest grammar size
    "small": SqlGrammarConfig(n_tables=20, n_columns=26, n_letters=0,
                              with_aggregates=False, with_group_by=False,
                              with_order_by=True, with_limit=True,
                              with_strings=False),
    # 142 rules: the paper's default setting
    "default": SqlGrammarConfig(n_tables=20, n_columns=36, n_letters=22),
    # 171 rules: every feature enabled, larger name pools
    "large": SqlGrammarConfig(n_tables=32, n_columns=49, n_letters=26),
}


def sql_grammar(size: str | SqlGrammarConfig = "default") -> Grammar:
    """Build a SQL PCFG; ``size`` is a preset name or an explicit config."""
    cfg = _PRESETS[size] if isinstance(size, str) else size
    rules: list[Production] = []
    rw = cfg.recursion_weight

    def rule(lhs: str, rhs: tuple[str, ...], weight: float = 1.0) -> None:
        rules.append(Production(lhs, rhs, weight))

    # ---- query skeleton -------------------------------------------------
    rule("query", ("select_clause", "from_clause", "opt_where",
                   "opt_group", "opt_order", "opt_limit", ";"))
    rule("select_clause", ("SELECT ", "select_list"))
    rule("select_list", ("select_item",))
    rule("select_list", ("select_item", ", ", "select_list"), rw)
    rule("select_item", ("column_ref",))
    if cfg.with_aggregates:
        rule("select_item", ("agg_expr",), 0.5)
        rule("agg_expr", ("agg_fn", "(", "column_ref", ")"))
        for fn in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            rule("agg_fn", (fn,))

    rule("column_ref", ("table_name", ".", "column_name"))
    rule("column_ref", ("column_name",))

    rule("from_clause", (" FROM ", "table_list"))
    rule("table_list", ("table_name",))
    rule("table_list", ("table_name", ", ", "table_list"), rw)

    for i in range(cfg.n_tables):
        rule("table_name", (f"table_{i}",))
    for i in range(cfg.n_columns):
        rule("column_name", (f"col_{i}",))

    # ---- WHERE ----------------------------------------------------------
    rule("opt_where", ())
    rule("opt_where", ("where_clause",))
    rule("where_clause", (" WHERE ", "predicate"))
    rule("predicate", ("comparison",))
    rule("predicate", ("comparison", "bool_op", "predicate"), rw)
    rule("bool_op", (" AND ",))
    rule("bool_op", (" OR ",), 0.7)
    rule("comparison", ("column_ref", "comp_op", "value"))
    for op in (" = ", " < ", " > ", " <= ", " >= ", " <> "):
        rule("comp_op", (op,))
    rule("value", ("number",))
    rule("value", ("column_ref",), 0.5)
    if cfg.with_strings:
        rule("value", ("string_lit",), 0.5)
        rule("string_lit", ("'", "word", "'"))
        rule("word", ("letter",))
        rule("word", ("letter", "word"), rw)
        for c in "abcdefghijklmnopqrstuvwxyz"[:cfg.n_letters]:
            rule("letter", (c,))

    rule("number", ("digit",))
    rule("number", ("digit", "number"), rw)
    for d in "0123456789":
        rule("digit", (d,))

    # ---- GROUP BY / ORDER BY / LIMIT -------------------------------------
    rule("opt_group", ())
    if cfg.with_group_by:
        rule("opt_group", ("group_clause",), 0.6)
        rule("group_clause", (" GROUP BY ", "column_list"))
        rule("column_list", ("column_ref",))
        rule("column_list", ("column_ref", ", ", "column_list"), rw)

    rule("opt_order", ())
    if cfg.with_order_by:
        rule("opt_order", ("order_clause",), 0.6)
        rule("order_clause", (" ORDER BY ", "ordering_term"))
        rule("ordering_term", ("column_ref",))
        rule("ordering_term", ("column_ref", "direction"), 0.8)
        rule("direction", (" ASC",))
        rule("direction", (" DESC",))

    rule("opt_limit", ())
    if cfg.with_limit:
        rule("opt_limit", ("limit_clause",), 0.6)
        rule("limit_clause", (" LIMIT ", "number"))

    grammar = Grammar(start="query", productions=rules)
    grammar.validate()
    return grammar


def grammar_rule_count(size: str | SqlGrammarConfig = "default") -> int:
    """Number of production rules in the requested grammar subset."""
    return len(sql_grammar(size))
