"""Nested-parentheses PCFG from the accuracy benchmark (Appendix C).

The dataset consists of strings such as ``0(1(2((44))))`` where a digit
representing the current nesting level may precede each balanced parenthesis
(up to 4 levels).  The grammar is::

    r_i -> i r_i | ( r_{i+1} )      for i < 4
    r_4 -> epsilon | 4 r_4
"""

from __future__ import annotations

from repro.grammar.cfg import Grammar, Production

MAX_LEVEL = 4


def parens_grammar(digit_weight: float = 0.45,
                   stop_weight: float = 1.0) -> Grammar:
    """Build the Appendix C grammar.

    ``digit_weight`` controls how often a level emits its digit before
    recursing (larger values produce longer strings).
    """
    rules: list[Production] = []
    for level in range(MAX_LEVEL):
        rules.append(Production(f"r{level}", (str(level), f"r{level}"),
                                digit_weight))
        rules.append(Production(f"r{level}", ("(", f"r{level + 1}", ")"), 1.0))
    rules.append(Production(f"r{MAX_LEVEL}", (), stop_weight))
    rules.append(Production(f"r{MAX_LEVEL}",
                            (str(MAX_LEVEL), f"r{MAX_LEVEL}"), digit_weight))
    grammar = Grammar(start="r0", productions=rules)
    grammar.validate()
    return grammar


def nesting_depth_labels(text: str) -> list[int]:
    """Ground-truth per-character nesting level for a parens string.

    The level of a character is the number of unclosed ``(`` before it;
    opening and closing parens are labeled with the level they delimit.
    """
    labels: list[int] = []
    depth = 0
    for ch in text:
        if ch == "(":
            labels.append(depth)
            depth += 1
        elif ch == ")":
            depth -= 1
            labels.append(depth)
        else:
            labels.append(depth)
    return labels
