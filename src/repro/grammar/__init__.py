"""Context-free grammar toolkit (NLTK substitute).

Provides PCFG representation, weighted sampling that records derivation
trees, an Earley chart parser, and the two grammars used in the paper's
evaluation: a parameterized SQL subset (95-171 production rules) and the
nested-parentheses grammar of Appendix C.
"""

from repro.grammar.cfg import Grammar, Production
from repro.grammar.earley import EarleyParser, ParseError
from repro.grammar.parens import parens_grammar
from repro.grammar.sampling import GrammarSampler
from repro.grammar.sql import sql_grammar
from repro.grammar.tree import ParseNode

__all__ = [
    "EarleyParser",
    "Grammar",
    "GrammarSampler",
    "ParseError",
    "ParseNode",
    "Production",
    "parens_grammar",
    "sql_grammar",
]
