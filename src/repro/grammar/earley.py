"""Earley chart parser (NLTK chart-parser substitute).

Operates directly over characters: a terminal symbol is matched by comparing
its surface string against the input at the current position (so terminals
may span several characters).  Supports epsilon productions via standard
nullable-prediction handling.  Returns the first complete parse found; our
benchmark grammars are engineered to be unambiguous, and ties are broken by
production order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grammar.cfg import Grammar, Production
from repro.grammar.tree import ParseNode


class ParseError(ValueError):
    """The input string is not in the grammar's language."""


@dataclass(frozen=True)
class _Item:
    """An Earley item: dotted production with origin chart position."""

    prod: Production
    dot: int
    origin: int

    @property
    def complete(self) -> bool:
        return self.dot >= len(self.prod.rhs)

    @property
    def next_symbol(self) -> str | None:
        if self.complete:
            return None
        return self.prod.rhs[self.dot]


class EarleyParser:
    """Chart parser producing one :class:`ParseNode` per input string."""

    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self._nullable = grammar.nullable_symbols()

    def parse(self, text: str) -> ParseNode:
        """Parse ``text`` and return its derivation tree.

        Raises :class:`ParseError` if the string is not derivable.
        """
        n = len(text)
        # chart[i]: dict item -> children tuple (first derivation wins)
        chart: list[dict[_Item, tuple[ParseNode, ...]]] = [
            {} for _ in range(n + 1)]

        def add(pos: int, item: _Item, children: tuple[ParseNode, ...],
                agenda: list[_Item]) -> None:
            if item not in chart[pos]:
                chart[pos][item] = children
                agenda.append(item)

        # seed with start productions
        agenda: list[_Item] = []
        for prod in self.grammar.productions_for(self.grammar.start):
            add(0, _Item(prod, 0, 0), (), agenda)

        for pos in range(n + 1):
            if pos > 0:
                agenda = list(chart[pos])
            while agenda:
                item = agenda.pop()
                children = chart[pos][item]
                if item.complete:
                    self._complete(chart, pos, item, agenda)
                    continue
                sym = item.next_symbol
                assert sym is not None
                if self.grammar.is_nonterminal(sym):
                    self._predict(chart, pos, sym, agenda)
                    if sym in self._nullable:
                        # nullable fix: advance over sym with an empty node
                        empty = ParseNode(sym, start=pos, end=pos)
                        nxt = _Item(item.prod, item.dot + 1, item.origin)
                        add(pos, nxt, children + (empty,), agenda)
                else:
                    self._scan(chart, pos, item, children, text)

        for item, children in chart[n].items():
            if (item.complete and item.origin == 0
                    and item.prod.lhs == self.grammar.start):
                return self._make_node(item, children, 0, n)
        raise ParseError(f"no parse for input of length {n}: {text[:40]!r}...")

    # ------------------------------------------------------------------
    def _predict(self, chart, pos: int, sym: str, agenda: list[_Item]) -> None:
        for prod in self.grammar.productions_for(sym):
            item = _Item(prod, 0, pos)
            if item not in chart[pos]:
                chart[pos][item] = ()
                agenda.append(item)

    def _scan(self, chart, pos: int, item: _Item,
              children: tuple[ParseNode, ...], text: str) -> None:
        term = item.next_symbol
        assert term is not None
        end = pos + len(term)
        if text.startswith(term, pos) and end <= len(text):
            leaf = ParseNode(term, start=pos, end=end, terminal=True)
            nxt = _Item(item.prod, item.dot + 1, item.origin)
            if nxt not in chart[end]:
                chart[end][nxt] = children + (leaf,)

    def _complete(self, chart, pos: int, item: _Item,
                  agenda: list[_Item]) -> None:
        node = self._make_node(item, chart[pos][item], item.origin, pos)
        for waiting, wchildren in list(chart[item.origin].items()):
            if waiting.next_symbol == item.prod.lhs:
                nxt = _Item(waiting.prod, waiting.dot + 1, waiting.origin)
                if nxt not in chart[pos]:
                    chart[pos][nxt] = wchildren + (node,)
                    agenda.append(nxt)

    @staticmethod
    def _make_node(item: _Item, children: tuple[ParseNode, ...],
                   start: int, end: int) -> ParseNode:
        return ParseNode(item.prod.lhs, start=start, end=end,
                         children=list(children))

    # ------------------------------------------------------------------
    def recognizes(self, text: str) -> bool:
        """True iff ``text`` is in the language (parse without tree use)."""
        try:
            self.parse(text)
            return True
        except ParseError:
            return False
