"""Probabilistic context-free grammars.

A :class:`Production` rewrites a nonterminal into a sequence of symbols.
Symbols are plain strings; a symbol is a *nonterminal* iff it appears on the
left-hand side of some production, otherwise it is a *terminal* whose surface
form is the symbol string itself (terminals may span several characters, e.g.
``"SELECT "``).  An empty right-hand side denotes epsilon.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Production:
    """One rewrite rule ``lhs -> rhs`` with a sampling weight."""

    lhs: str
    rhs: tuple[str, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.lhs:
            raise ValueError("production lhs must be a non-empty symbol")
        if self.weight <= 0:
            raise ValueError("production weight must be positive")

    def __str__(self) -> str:
        rhs = " ".join(repr(s) for s in self.rhs) if self.rhs else "ε"
        return f"{self.lhs} -> {rhs}"


@dataclass
class Grammar:
    """A PCFG: a start symbol plus weighted productions."""

    start: str
    productions: list[Production] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_lhs: dict[str, list[Production]] = {}
        for prod in self.productions:
            self._by_lhs.setdefault(prod.lhs, []).append(prod)
        if self.start not in self._by_lhs:
            raise ValueError(f"start symbol {self.start!r} has no productions")

    # ------------------------------------------------------------------
    @property
    def nonterminals(self) -> set[str]:
        return set(self._by_lhs)

    @property
    def terminals(self) -> set[str]:
        terms: set[str] = set()
        for prod in self.productions:
            for sym in prod.rhs:
                if sym not in self._by_lhs:
                    terms.add(sym)
        return terms

    def is_nonterminal(self, symbol: str) -> bool:
        return symbol in self._by_lhs

    def productions_for(self, lhs: str) -> list[Production]:
        return self._by_lhs.get(lhs, [])

    def __len__(self) -> int:
        """Number of production rules (the paper's grammar-size knob)."""
        return len(self.productions)

    # ------------------------------------------------------------------
    def nullable_symbols(self) -> set[str]:
        """Nonterminals that can derive the empty string (fixpoint)."""
        nullable: set[str] = set()
        changed = True
        while changed:
            changed = False
            for prod in self.productions:
                if prod.lhs in nullable:
                    continue
                if all(sym in nullable for sym in prod.rhs):
                    nullable.add(prod.lhs)
                    changed = True
        return nullable

    def alphabet(self) -> list[str]:
        """Sorted set of characters appearing in any terminal."""
        chars: set[str] = set()
        for term in self.terminals:
            chars.update(term)
        return sorted(chars)

    def validate(self) -> None:
        """Raise if some nonterminal referenced on a rhs has no productions.

        (Terminals are symbols by definition, so the real check is for
        *conventionally* nonterminal-looking names; we instead check
        reachability and productivity which catch genuine authoring bugs.)
        """
        reachable = {self.start}
        frontier = [self.start]
        while frontier:
            sym = frontier.pop()
            for prod in self.productions_for(sym):
                for s in prod.rhs:
                    if self.is_nonterminal(s) and s not in reachable:
                        reachable.add(s)
                        frontier.append(s)
        unreachable = self.nonterminals - reachable
        if unreachable:
            raise ValueError(f"unreachable nonterminals: {sorted(unreachable)}")

        # productivity: every nonterminal must derive some terminal string
        productive: set[str] = set()
        changed = True
        while changed:
            changed = False
            for prod in self.productions:
                if prod.lhs in productive:
                    continue
                if all((not self.is_nonterminal(s)) or s in productive
                       for s in prod.rhs):
                    productive.add(prod.lhs)
                    changed = True
        dead = self.nonterminals - productive
        if dead:
            raise ValueError(f"unproductive nonterminals: {sorted(dead)}")


def grammar_from_rules(start: str,
                       rules: Iterable[tuple[str, Sequence[str], float]]) -> Grammar:
    """Convenience constructor from ``(lhs, rhs, weight)`` triples."""
    prods = [Production(lhs, tuple(rhs), weight) for lhs, rhs, weight in rules]
    return Grammar(start=start, productions=prods)
