"""Weighted sampling from a PCFG, recording the derivation tree.

The paper samples synthetic SQL queries from a PCFG to build its scalability
benchmark.  Because the sampler produces the derivation tree alongside the
string, hypothesis extraction can either reuse that tree (cached-parse mode)
or re-parse the string with the Earley parser (the realistic slow path that
Figure 9 of the paper exercises).
"""

from __future__ import annotations

import numpy as np

from repro.grammar.cfg import Grammar, Production
from repro.grammar.tree import ParseNode


class DepthLimitExceeded(RuntimeError):
    """Raised when a sampled derivation exceeds the depth budget."""


class GrammarSampler:
    """Samples strings (and derivation trees) from a PCFG.

    To guarantee termination on recursive grammars, expansion beyond
    ``max_depth`` restricts candidate productions to those that minimize the
    sub-derivation height (pre-computed per nonterminal); if none exists the
    sample is retried.
    """

    def __init__(self, grammar: Grammar, rng: np.random.Generator,
                 max_depth: int = 40, max_retries: int = 50):
        self.grammar = grammar
        self.rng = rng
        self.max_depth = max_depth
        self.max_retries = max_retries
        self._min_height = self._compute_min_heights()

    # ------------------------------------------------------------------
    def _compute_min_heights(self) -> dict[str, int]:
        """Minimum derivation height for each nonterminal (fixpoint)."""
        inf = float("inf")
        height: dict[str, float] = {nt: inf for nt in self.grammar.nonterminals}
        changed = True
        while changed:
            changed = False
            for prod in self.grammar.productions:
                h = 0.0
                for sym in prod.rhs:
                    if self.grammar.is_nonterminal(sym):
                        h = max(h, height[sym])
                cand = 1 + h
                if cand < height[prod.lhs]:
                    height[prod.lhs] = cand
                    changed = True
        bad = [nt for nt, h in height.items() if h == inf]
        if bad:
            raise ValueError(f"nonterminals with no finite derivation: {bad}")
        return {nt: int(h) for nt, h in height.items()}

    def _prod_min_height(self, prod: Production) -> int:
        h = 0
        for sym in prod.rhs:
            if self.grammar.is_nonterminal(sym):
                h = max(h, self._min_height[sym])
        return 1 + h

    def _choose(self, lhs: str, depth: int) -> Production:
        prods = self.grammar.productions_for(lhs)
        remaining = self.max_depth - depth
        viable = [p for p in prods if self._prod_min_height(p) <= remaining]
        if not viable:
            raise DepthLimitExceeded(lhs)
        weights = np.array([p.weight for p in viable], dtype=float)
        weights /= weights.sum()
        idx = self.rng.choice(len(viable), p=weights)
        return viable[int(idx)]

    # ------------------------------------------------------------------
    def sample_tree(self) -> ParseNode:
        """Sample one derivation tree rooted at the start symbol."""
        for _ in range(self.max_retries):
            try:
                pieces: list[str] = []
                root = self._expand(self.grammar.start, 0, pieces, offset=0)
                return root
            except DepthLimitExceeded:
                continue
        raise RuntimeError(
            f"could not sample a derivation within depth {self.max_depth}")

    def _expand(self, symbol: str, depth: int, pieces: list[str],
                offset: int) -> ParseNode:
        prod = self._choose(symbol, depth)
        node = ParseNode(symbol, start=offset, end=offset)
        cursor = offset
        for sym in prod.rhs:
            if self.grammar.is_nonterminal(sym):
                child = self._expand(sym, depth + 1, pieces, cursor)
            else:
                child = ParseNode(sym, start=cursor, end=cursor + len(sym),
                                  terminal=True)
                pieces.append(sym)
            node.children.append(child)
            cursor = child.end
        node.end = cursor
        return node

    def sample(self) -> tuple[str, ParseNode]:
        """Sample one (string, derivation tree) pair."""
        tree = self.sample_tree()
        return tree.text(), tree

    def sample_corpus(self, n: int) -> list[tuple[str, ParseNode]]:
        """Sample ``n`` independent (string, tree) pairs."""
        return [self.sample() for _ in range(n)]
