"""Parse trees with character spans.

Hypothesis functions are generated from parse trees (Section 4.2): each node
type maps to a *time-domain* hypothesis (1 for every character the node
spans), a *signal* hypothesis (1 at the first and last character), or a
*composite* hypothesis (nesting depth).  Character spans are therefore the
primary payload of a tree node.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field


@dataclass
class ParseNode:
    """A node in a parse tree.

    ``symbol`` is the grammar symbol (nonterminal for internal nodes, the
    terminal string for leaves).  ``start``/``end`` delimit the half-open
    character span ``[start, end)`` of the node in the parsed string.
    """

    symbol: str
    start: int
    end: int
    children: list["ParseNode"] = field(default_factory=list)
    #: True only for terminal leaves; an epsilon-derived nonterminal node has
    #: no children but is *not* terminal and contributes no surface text.
    terminal: bool = False

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def span(self) -> tuple[int, int]:
        return (self.start, self.end)

    def __len__(self) -> int:
        return self.end - self.start

    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator["ParseNode"]:
        """Pre-order traversal over all nodes, including leaves."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def leaves(self) -> list["ParseNode"]:
        """Terminal leaves, in surface order."""
        return [n for n in self.iter_nodes() if n.terminal]

    def text(self) -> str:
        """Reassemble the surface string from leaf terminals."""
        return "".join(leaf.symbol for leaf in self.leaves())

    def node_types(self) -> set[str]:
        """Distinct nonterminal symbols occurring in the tree."""
        return {n.symbol for n in self.iter_nodes() if not n.terminal}

    def spans_of(self, symbol: str) -> list[tuple[int, int]]:
        """Character spans of every node labeled ``symbol``."""
        return [n.span for n in self.iter_nodes()
                if n.symbol == symbol and not n.terminal]

    def depth_profile(self, symbol: str, length: int | None = None) -> list[int]:
        """Per-character nesting depth of ``symbol`` nodes (composite h1)."""
        if length is None:
            length = self.end
        depth = [0] * length
        for s, e in self.spans_of(symbol):
            for i in range(s, min(e, length)):
                depth[i] += 1
        return depth

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.is_leaf:
            return f"{pad}{self.symbol!r} [{self.start}:{self.end}]"
        lines = [f"{pad}{self.symbol} [{self.start}:{self.end}]"]
        lines.extend(child.pretty(indent + 1) for child in self.children)
        return "\n".join(lines)
