"""The connection-style entry point: one :class:`Session` for Python + SQL.

DeepBase frames Deep Neural Inspection as a declarative query system
(Section 4): users *connect*, register models, datasets and hypothesis
functions, and issue queries the engine optimizes and answers
incrementally.  :class:`Session` is that connection.  It owns the resource
lifecycle every query shares —

* a :class:`~repro.core.cache.HypothesisCache` and a
  :class:`~repro.core.cache.UnitBehaviorCache` (memory tiers),
* optionally a persistent :class:`~repro.store.DiskBehaviorStore`
  (``store_path=``), which the caches write through to with run-scoped
  deferred commits (one manifest rewrite per query),
* one scheduler pool (:func:`~repro.core.pipeline.default_scheduler`
  unless pinned),

— and carries name registries (:meth:`register_model`,
:meth:`register_dataset`, :meth:`register_hypotheses`) addressable from
both query surfaces:

* the fluent Python builder ::

      with Session("behavior_store") as session:
          session.register_model("m0", model)
          session.register_dataset("d0", dataset)
          session.register_hypotheses(hyps)
          frame = (session.inspect("m0", "d0")
                   .using("corr", "logreg")
                   .hypotheses(hyps)
                   .top_k(20)
                   .run())
          for partial in (session.inspect("m0", "d0").using("corr")
                          .hypotheses(hyps).stream()):
              ...  # scores refine as blocks arrive

* the SQL frontend — :meth:`Session.sql` compiles ``SELECT ... INSPECT``
  statements through :mod:`repro.db.inspect_clause` against the same
  caches, store and scheduler, so interleaved Python and SQL queries on
  one model share a single forward pass and one store commit per run.

``close()`` (or leaving the ``with`` block) flushes the store and shuts
the scheduler pool down.  The seed APIs remain: :func:`repro.inspect` and
:class:`repro.db.inspect_clause.InspectQuery` are thin shims over an
ephemeral ``Session``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import tempfile
import threading
import weakref
from collections.abc import Iterable, Iterator

import numpy as np

from repro.core.cache import HypothesisCache, UnitBehaviorCache
from repro.core.groups import UnitGroup, all_units_group
from repro.core.inspect import outcomes_to_frame
from repro.core.pipeline import (InspectConfig, InspectionPlan,
                                 ProcessPoolScheduler, Scheduler,
                                 _resolve_scheduler, default_scheduler)
from repro.data.datasets import Dataset
from repro.db.engine import Database
from repro.db.sqlparser import InspectSpec, parse_sql
from repro.extract.base import Extractor
from repro.hypotheses.base import HypothesisFunction
from repro.measures.base import Measure
from repro.measures.registry import get_measure
from repro.store import DiskBehaviorStore
from repro.util.frame import Frame


class Session:
    """A long-lived inspection connection: resources + registries.

    Parameters
    ----------
    store_path:
        Directory for a persistent :class:`DiskBehaviorStore`; the session
        caches become memory tiers over it (``store=`` passes an existing
        store object instead).
    db:
        Catalog database for the SQL frontend; created empty on first use
        when omitted (``register_*`` fills it).
    models / hypotheses / datasets:
        Pre-filled registries (shared by reference — the
        :class:`~repro.db.inspect_clause.InspectQuery` shim relies on
        this); usually left to :meth:`register_model` & friends.
    extractor:
        Default unit-behavior extractor for both query surfaces; defaults
        to :class:`~repro.extract.rnn.RnnActivationExtractor`.
    config:
        Base :class:`InspectConfig` every query derives from.  Fields it
        pins (an explicit cache, scheduler, store...) override the
        session's resources for every query, exactly like the seed APIs.
    session_defaults:
        When False the session creates *no* resources of its own and
        :meth:`effective_config` returns ``config`` untouched — the mode
        the ephemeral-``Session`` shims run in, preserving seed behavior.
    """

    def __init__(self, store_path=None, *,
                 store: DiskBehaviorStore | None = None,
                 db: Database | None = None,
                 db_path: str | None = None,
                 models: dict | None = None,
                 hypotheses: dict[str, HypothesisFunction] | None = None,
                 datasets: dict[str, Dataset] | None = None,
                 extractor: Extractor | None = None,
                 config: InspectConfig | None = None,
                 hyp_cache: HypothesisCache | None = None,
                 unit_cache: UnitBehaviorCache | None = None,
                 scheduler: Scheduler | str | None = None,
                 sweep_gate=None,
                 session_defaults: bool = True):
        self.config = config or InspectConfig()
        #: cross-query single-flight gate over cold raw sweeps (the
        #: inspection server installs a SweepRegistry here); threaded into
        #: every query's config via :meth:`effective_config`
        self.sweep_gate = sweep_gate
        # registration mutates the registries AND the SQL catalog (drop +
        # re-insert rows, lazy table creation): concurrent server queries
        # registering models must not interleave those steps.  RLock:
        # register_model -> db property nests.
        self._reg_lock = threading.RLock()
        # per-query observability counters (served by Session.stats() and
        # the server's /stats endpoint)
        self._query_lock = threading.Lock()
        self._query_counts = {"started": 0, "completed": 0, "failed": 0,
                              "cancelled": 0, "streams_abandoned": 0}
        if store is None and store_path is not None:
            store = DiskBehaviorStore(store_path)
        if store is None:
            store = self.config.store
        elif self.config.store is not None and self.config.store is not store:
            raise ValueError(
                "conflicting store settings: the session was given one "
                "DiskBehaviorStore and config.store names another; pass a "
                "single store object (or drop one of them)")
        self.store = store
        self.models: dict = models if models is not None else {}
        self.hypotheses: dict[str, HypothesisFunction] = (
            hypotheses if hypotheses is not None else {})
        self.datasets: dict[str, Dataset] = (
            datasets if datasets is not None else {})
        if db is not None and db_path is not None:
            raise ValueError("pass either db= or db_path=, not both")
        self._db = db
        self._db_path = db_path
        if extractor is None:
            from repro.extract.rnn import RnnActivationExtractor
            extractor = RnnActivationExtractor()
        self.extractor = extractor
        self.session_defaults = session_defaults
        self.hyp_cache = hyp_cache
        self.unit_cache = unit_cache
        self.scheduler = scheduler
        self._closed = False
        if session_defaults:
            if self.scheduler is None and self.config.scheduler is None:
                self.scheduler = default_scheduler(store=self.store)
                # the session owns this scheduler: release its worker pool
                # when the session is collected, not only on close()
                weakref.finalize(self, self.scheduler.shutdown)
            elif isinstance(self.scheduler, str):
                # resolve name specs to one session-owned instance, so
                # every query (Python and SQL) shares a single pool
                # instead of building an ephemeral one per statement
                self.scheduler, _ = _resolve_scheduler(self.scheduler)
                weakref.finalize(self, self.scheduler.shutdown)
            # a store-less session running the process scheduler still
            # needs an exchange medium for worker shards: back the caches
            # with the scheduler's temp-dir scratch store (removed on
            # scheduler shutdown), so shard-parallel extraction works —
            # and stays warm across queries — without a store_path
            backing = self.store
            if backing is None and isinstance(self.scheduler,
                                              ProcessPoolScheduler):
                backing = self.scheduler.scratch_store()
            if self.hyp_cache is None and self.config.cache is None:
                self.hyp_cache = HypothesisCache(store=backing)
            if self.unit_cache is None and self.config.unit_cache is None:
                self.unit_cache = UnitBehaviorCache(store=backing)

    # -- lifecycle ------------------------------------------------------
    @property
    def db(self) -> Database:
        """The SQL catalog (created lazily on first use).

        ``db_path=`` opens a persistent paged catalog at that directory —
        reopening the same path restores every committed table, indexes
        included.  Without it, the ``REPRO_DB_PATH`` environment variable
        forces default sessions onto persistent catalogs (each under a
        fresh directory), so the whole test suite can exercise the paged
        storage engine unchanged.
        """
        with self._reg_lock:  # concurrent first touch builds one catalog
            if self._db is None:
                path = self._db_path
                if path is None:
                    env = os.environ.get("REPRO_DB_PATH")
                    if env:
                        os.makedirs(env, exist_ok=True)
                        path = tempfile.mkdtemp(prefix="db-", dir=env)
                self._db = Database(path) if path is not None else Database()
            return self._db

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush the store and shut the scheduler pool down.

        Idempotent; after closing, issuing queries through this session
        raises :class:`RuntimeError` (a shut-down pool would otherwise
        silently respawn its worker threads).  The held scheduler is shut
        down even when the caller supplied it — the seed ``InspectQuery``
        contract; a scheduler shared with another *live* session stays
        usable there, lazily respawning its pool on next use.
        """
        if self._closed:
            return
        self._closed = True
        if self.store is not None:
            self.store.flush()
        if self._db is not None:
            self._db.close()  # commits staged catalog/score tables
        if isinstance(self.scheduler, Scheduler):
            self.scheduler.shutdown()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # -- registries -----------------------------------------------------
    @staticmethod
    def _catalog_row(table, keys: list, attrs: dict, what: str) -> list:
        """One catalog row, validated against the table's attr columns.

        The first registration fixes a table's schema; later calls must
        supply the same attribute set — a mismatch would otherwise drop
        attrs silently (or die on a bare KeyError) and corrupt the
        catalog for every later query.
        """
        expected = set(table.columns[len(keys):])
        if set(attrs) != expected:
            raise ValueError(
                f"{what} attributes {sorted(attrs)} do not match the "
                f"catalog columns {sorted(expected)} fixed by the first "
                f"registration; register every {what} with the same "
                f"attribute set")
        return keys + [attrs[c] for c in table.columns[len(keys):]]

    def _drop_catalog_rows(self, table_name: str, key_col: str,
                           value) -> None:
        """Remove a key's rows so re-registration *replaces* its catalog
        entry — the registry dict overwrites, and a second insert would
        otherwise silently duplicate every joined row downstream."""
        table = self.db.tables.get(table_name)
        if table is None:
            return
        col = table.col_index(key_col)
        rows = [r for r in table.rows if r[col] != value]
        if len(rows) != len(table.rows):
            self.db.create_table(table_name, table.columns, rows,
                                 replace=True)

    def register_model(self, mid: str, model, *, units=None, layer=0,
                       catalog: bool = True, **attrs) -> None:
        """Register a model under ``mid`` for both query surfaces.

        Also inserts catalog rows for the SQL frontend: one ``models`` row
        (``mid`` + ``attrs``) and — unless ``units=False`` — one ``units``
        row ``(mid, uid, layer)`` per hidden unit.  ``units`` may be an
        explicit unit-id sequence, a unit count, or ``None`` to take every
        unit the session extractor exposes.  ``catalog=False`` registers
        the Python object only.  Registering an existing ``mid`` again
        (e.g. a re-run notebook cell with a retrained model) replaces its
        catalog rows, mirroring the registry overwrite.
        """
        self._check_open()
        with self._reg_lock:
            self.models[mid] = model
            if not catalog:
                return
            # drop unconditionally: on a reopened persistent catalog the
            # rows survive while the registry dict starts empty, so gating
            # on the registry would duplicate every joined row downstream
            self._drop_catalog_rows("models", "mid", mid)
            self._drop_catalog_rows("units", "mid", mid)
            table = self.db.tables.get("models")
            if table is None:
                table = self.db.create_table("models",
                                             ["mid"] + sorted(attrs))
            table.insert(self._catalog_row(table, [mid], attrs, "model"))
            if units is False:
                return
            if units is None:
                units = self._n_units_of(model)
                if units is None:
                    return  # no unit count derivable: Python surface only
            uids = (np.arange(int(units)) if np.isscalar(units)
                    else np.asarray(list(units), dtype=int))
            units_table = self.db.tables.get("units")
            if units_table is None:
                units_table = self.db.create_table("units",
                                                   ["mid", "uid", "layer"])
            units_table.insert_many([[mid, int(u), layer] for u in uids])

    def _n_units_of(self, model) -> int | None:
        try:
            return int(self.extractor.n_units(model))
        except (AttributeError, NotImplementedError, TypeError):
            pass
        n = getattr(model, "n_units", None)
        return int(n) if n is not None else None

    def register_dataset(self, did: str, dataset: Dataset,
                         catalog: bool = True, **attrs) -> None:
        """Register a dataset under ``did`` (and as an ``inputs`` row);
        re-registering a ``did`` replaces its row."""
        self._check_open()
        with self._reg_lock:
            self.datasets[did] = dataset
            if not catalog:
                return
            self._drop_catalog_rows("inputs", "did", did)
            attrs.setdefault("seq", "seq")
            table = self.db.tables.get("inputs")
            if table is None:
                table = self.db.create_table(
                    "inputs", ["did"] + sorted(attrs))
            table.insert(self._catalog_row(table, [did], attrs, "dataset"))

    def register_hypotheses(self, hypotheses, catalog: bool = True,
                            **attrs) -> None:
        """Register hypothesis functions by name (single or iterable).

        Each hypothesis lands in the registry under ``hypothesis.name`` and
        as a ``hypotheses`` catalog row ``(h, name, *attrs)``; ``name``
        defaults to the hypothesis's own name and serves as the label
        column queries filter on (``WHERE H.name = 'keywords'``).
        Re-registering a name replaces its row.
        """
        self._check_open()
        if isinstance(hypotheses, HypothesisFunction) \
                or not isinstance(hypotheses, Iterable):
            hypotheses = [hypotheses]
        # dedupe within the call exactly like the registry does (last
        # object under a name wins) so catalog rows match the registry
        by_name = {hyp.name: hyp for hyp in hypotheses}
        hypotheses = list(by_name.values())
        with self._reg_lock:
            for hyp in hypotheses:
                if catalog:
                    self._drop_catalog_rows("hypotheses", "h", hyp.name)
                self.hypotheses[hyp.name] = hyp
            if not catalog:
                return
            table = self.db.tables.get("hypotheses")
            if table is None:
                columns = ["h", "name"] + sorted(set(attrs) - {"name"})
                table = self.db.create_table("hypotheses", columns)
            for hyp in hypotheses:
                row_attrs = dict(attrs)
                row_attrs.setdefault("name", hyp.name)
                table.insert(self._catalog_row(table, [hyp.name], row_attrs,
                                               "hypothesis"))

    # -- name resolution ------------------------------------------------
    def model(self, ref):
        """Resolve a model reference (registered name or live object)."""
        if isinstance(ref, str):
            try:
                return self.models[ref]
            except KeyError:
                raise KeyError(f"model {ref!r} is not registered with the "
                               f"session") from None
        return ref

    def dataset(self, ref=None) -> Dataset:
        """Resolve a dataset reference; ``None`` picks the sole registered
        dataset."""
        if ref is None:
            if len(self.datasets) != 1:
                raise ValueError(
                    f"dataset is required: the session registers "
                    f"{len(self.datasets)} datasets")
            return next(iter(self.datasets.values()))
        if isinstance(ref, str):
            try:
                return self.datasets[ref]
            except KeyError:
                raise KeyError(f"dataset {ref!r} is not registered with "
                               f"the session") from None
        return ref

    def hypothesis(self, ref) -> HypothesisFunction:
        """Resolve a hypothesis reference (registered name or object)."""
        if isinstance(ref, str):
            try:
                return self.hypotheses[ref]
            except KeyError:
                raise KeyError(f"hypothesis {ref!r} is not registered with "
                               f"the session") from None
        return ref

    # -- query surfaces -------------------------------------------------
    def effective_config(self) -> InspectConfig:
        """The per-run config with the session's resources filled in.

        Raises once the session is closed — every query path (builder,
        ``sql()``, and the lower-level ``run_inspect_spec`` entry points
        that take the session as their context) resolves its config here,
        so none of them can silently respawn a shut-down pool.
        """
        self._check_open()
        if not self.session_defaults:
            return self.config
        return self.config.with_session_defaults(
            cache=self.hyp_cache, unit_cache=self.unit_cache,
            scheduler=self.scheduler, store=self.store,
            sweep_gate=self.sweep_gate)

    def inspect(self, models=None, dataset=None, *,
                extractor: Extractor | None = None) -> "InspectionQuery":
        """Start a fluent, lazy inspection query.

        ``models`` is one model (or registered name) or a list of them;
        ``dataset`` likewise resolves through the registry.  Nothing
        executes until :meth:`InspectionQuery.run` /
        :meth:`InspectionQuery.stream`.
        """
        self._check_open()
        return InspectionQuery(self, models=models, dataset=dataset,
                               extractor=extractor)

    def sql(self, statement: str) -> Frame:
        """Execute one SQL statement against the session catalog.

        Statements with an ``INSPECT`` clause compile through the shared
        inspection planner wired to this session's caches, store and
        scheduler; plain ``SELECT`` statements run on the columnar engine.
        """
        self._check_open()
        with self._track_query():
            return self._sql(statement)

    def _sql(self, statement: str) -> Frame:
        from repro.db.executor import execute_select
        from repro.db.inspect_clause import run_inspect_spec
        parsed = parse_sql(statement)
        if isinstance(parsed, InspectSpec):
            return run_inspect_spec(self, parsed)
        rows = execute_select(self.db, parsed)
        return Frame.from_records(
            rows, columns=[item.alias for item in parsed.items])

    def stream_sql(self, statement: str) -> Iterator[Frame]:
        """Execute one SQL statement progressively.

        ``INSPECT`` statements yield one partial frame per processed
        behavior block — scores refining as records arrive — with the
        final frame bit-identical to :meth:`sql`'s result for the same
        statement (same planning path, same executor states).  Plain
        ``SELECT`` statements yield their single final frame.  Abandoning
        the iterator stops the run cleanly (no further extraction; the
        pending store scope flushes, an owned scheduler pool shuts down)
        and is counted as a cancelled query — the server's client-initiated
        cancellation rides on exactly this.
        """
        self._check_open()
        from repro.db.inspect_clause import stream_inspect_spec
        parsed = parse_sql(statement)
        if isinstance(parsed, InspectSpec):
            inner = stream_inspect_spec(self, parsed)
        else:
            inner = self._select_frames(statement)
        return self._tracked_stream(inner)

    def _select_frames(self, statement: str) -> Iterator[Frame]:
        yield self._sql(statement)

    # -- query accounting ----------------------------------------------
    def _count_query(self, *keys: str) -> None:
        with self._query_lock:
            for key in keys:
                self._query_counts[key] += 1

    @contextlib.contextmanager
    def _track_query(self):
        """Count one query's lifecycle (started -> completed/failed)."""
        self._count_query("started")
        try:
            yield
        except BaseException:
            self._count_query("failed")
            raise
        self._count_query("completed")

    def _tracked_stream(self, frames: Iterator[Frame]) -> Iterator[Frame]:
        """Wrap a progressive run with lifecycle counters.

        A consumer that abandons the iterator (``close()``, ``break``, a
        disconnecting websocket client) counts as a cancelled query and a
        stream abandonment; the inner generator's own cleanup (store
        flush, scheduler release) still runs via generator close
        propagation.
        """
        self._count_query("started")
        try:
            yield from frames
        except GeneratorExit:
            self._count_query("cancelled", "streams_abandoned")
            raise
        except BaseException:
            self._count_query("failed")
            raise
        self._count_query("completed")

    def stats(self) -> dict:
        """Cache/store/query counters for the session's shared resources.

        ``queries`` counts every query issued through the session surfaces
        (:meth:`sql`, :meth:`stream_sql`, the fluent builder): started,
        completed, failed, cancelled (abandoned streams included), plus
        ``streams_abandoned`` specifically — the numbers the server's
        ``/stats`` endpoint reports per deployment.
        """
        out: dict = {}
        if self.hyp_cache is not None:
            out["hypothesis_cache"] = self.hyp_cache.stats()
        if self.unit_cache is not None:
            out["unit_cache"] = self.unit_cache.stats()
        if self.store is not None:
            out["store"] = self.store.stats()
        with self._query_lock:
            out["queries"] = dict(self._query_counts)
        return out

    def reset_counters(self) -> None:
        """Zero the cache counters; cached behaviors stay warm.

        Bracket a query with this and :meth:`stats` to see what that one
        query cost (hits served vs. fresh extractions).
        """
        for cache in (self.hyp_cache, self.unit_cache):
            if cache is not None:
                cache.reset_counters()


class InspectionQuery:
    """A fluent, lazy inspection query bound to a :class:`Session`.

    Builder methods mutate and return the same query, so they chain::

        session.inspect("m0", "d0").using("corr").hypotheses(hyps).run()

    Compilation to an :class:`~repro.core.pipeline.InspectionPlan` happens
    in :meth:`plan`; :meth:`run` executes it to one result
    :class:`~repro.util.frame.Frame`, :meth:`stream` executes the same
    plan progressively, yielding a partial frame after every block (the
    final one bit-identical to :meth:`run`'s).
    """

    def __init__(self, session: Session, models=None, dataset=None,
                 extractor: Extractor | None = None):
        self._session = session
        self._models = models
        self._dataset = dataset
        self._extractor = extractor
        self._measures: list = []
        self._hypotheses: list = []
        self._units = None
        self._groups: list[UnitGroup] | None = None
        self._top_k: int | None = None
        self._overrides: dict = {}

    # -- builder steps --------------------------------------------------
    def using(self, *measures) -> "InspectionQuery":
        """Add affinity measures: registry names or Measure objects."""
        for measure in self._flatten(measures):
            if isinstance(measure, str):
                measure = get_measure(measure)
            elif not isinstance(measure, Measure):
                raise TypeError(f"expected a measure name or Measure, "
                                f"got {measure!r}")
            self._measures.append(measure)
        return self

    def hypotheses(self, *hypotheses) -> "InspectionQuery":
        """Add hypothesis functions: registered names or objects."""
        for hyp in self._flatten(hypotheses):
            self._hypotheses.append(self._session.hypothesis(hyp))
        return self

    def where(self, units=None,
              groups: list[UnitGroup] | None = None) -> "InspectionQuery":
        """Restrict the inspected units.

        ``units`` is a unit-id sequence applied to every model;
        ``groups`` supplies explicit :class:`UnitGroup` objects instead
        (and takes precedence over ``models``, which groups carry).
        """
        if units is not None:
            self._units = np.asarray(list(units), dtype=int)
        if groups is not None:
            self._groups = list(groups)
        return self

    def top_k(self, k: int) -> "InspectionQuery":
        """Keep only the ``k`` highest-|affinity| unit rows per
        (model, measure, hypothesis) in the result frame (group-affinity
        rows always survive)."""
        self._top_k = int(k)
        return self

    def with_config(self, **overrides) -> "InspectionQuery":
        """Override execution knobs (``mode=``, ``block_size=``, ...) on
        top of the session's effective config for this query only."""
        self._overrides.update(overrides)
        return self

    @staticmethod
    def _flatten(items) -> Iterator:
        for item in items:
            if isinstance(item, (str, Measure, HypothesisFunction)):
                yield item  # atoms, even if technically iterable
            elif isinstance(item, Iterable):
                yield from item
            else:
                yield item

    # -- compilation ----------------------------------------------------
    def _compile(self):
        session = self._session
        # a builder created before close() must not execute after it —
        # the shut-down scheduler pool would silently respawn its threads
        session._check_open()
        extractor = self._extractor or session.extractor
        if not self._measures:
            raise ValueError("no measures: call .using(...) first")
        if not self._hypotheses:
            raise ValueError("no hypotheses: call .hypotheses(...) first")
        groups = self._groups
        if groups is None:
            models = self._models
            if models is None:
                raise ValueError("provide models or explicit unit_groups")
            if not isinstance(models, (list, tuple)):
                models = [models]
            resolved = [session.model(m) for m in models]
            if self._units is None:
                groups = [all_units_group(m, extractor) for m in resolved]
            else:
                groups = [UnitGroup(model=m, unit_ids=self._units,
                                    name="selected") for m in resolved]
        dataset = session.dataset(self._dataset)
        config = session.effective_config()
        if self._overrides:
            config = dataclasses.replace(config, **self._overrides)
        return groups, dataset, extractor, config

    def plan(self) -> InspectionPlan:
        """Compile (without executing) to an inspection plan."""
        groups, dataset, extractor, config = self._compile()
        return InspectionPlan.build(groups, dataset, self._measures,
                                    self._hypotheses, extractor, config)

    def explain(self) -> str:
        """The compiled plan's operator tree (EXPLAIN)."""
        return self.plan().describe()

    # -- execution ------------------------------------------------------
    def run(self, as_frame: bool = True):
        """Execute the query and return the result frame.

        ``as_frame=False`` returns the raw
        :class:`~repro.core.pipeline.GroupMeasureOutcome` list (cheaper
        for large unit counts; ``top_k`` does not apply).
        """
        with self._session._track_query():
            outcomes = self.plan().execute()
            if not as_frame:
                return outcomes
            return self._postprocess(outcomes_to_frame(outcomes))

    def stream(self) -> Iterator[Frame]:
        """Execute progressively: one partial frame per processed block.

        Each yielded frame carries the convergence state per row
        (``n_rows_seen`` / ``converged`` columns) plus
        ``frame.records_processed`` and ``frame.converged`` attributes;
        the final frame equals :meth:`run`'s bit for bit.  Abandoning the
        iterator stops the run cleanly (no further extraction; pending
        store commits flush) and counts as a cancelled query in
        :meth:`Session.stats`.
        """
        return self._session._tracked_stream(self._stream())

    def _stream(self) -> Iterator[Frame]:
        plan = self.plan()
        # closing(): the run's store scope flushes and owned pools stop
        # deterministically even if the consumer abandons the iterator
        with contextlib.closing(plan.execute_progressive()) as snapshots:
            for outcomes in snapshots:
                frame = self._postprocess(outcomes_to_frame(outcomes))
                frame.records_processed = max(
                    (o.records_processed for o in outcomes), default=0)
                frame.converged = all(t.done or bool(t.col_converged.all())
                                      for t in plan.tasks)
                yield frame

    def _postprocess(self, frame: Frame) -> Frame:
        if self._top_k is None:
            return frame
        return _top_k_frame(frame, self._top_k)


def _top_k_frame(frame: Frame, k: int) -> Frame:
    """Keep the k highest-|val| unit rows per (model, score, hypothesis).

    Row order is preserved (rows are dropped, never reordered), so two
    identical frames stay identical after the cut; group-affinity rows are
    always kept.
    """
    if not len(frame):
        return frame
    kinds = frame.column("kind")
    vals = np.abs(frame.column("val", dtype=float))
    keys = list(zip(frame["model_id"], frame["score_id"], frame["hyp_id"]))
    by_group: dict[tuple, list[int]] = {}
    for i, (kind, key) in enumerate(zip(kinds, keys)):
        if kind == "unit":
            by_group.setdefault(key, []).append(i)
    keep = np.ones(len(frame), dtype=bool)
    for rows in by_group.values():
        if len(rows) <= k:
            continue
        # ties broken by original position, so the cut is deterministic
        ranked = sorted(rows, key=lambda i: (-vals[i], i))
        keep[ranked[k:]] = False
    idx = np.flatnonzero(keep)
    return Frame({name: [frame[name][i] for i in idx]
                  for name in frame.columns})
