"""Symbol perturbations that preserve or flip hypothesis behavior.

For a record prefix ``s_1 .. s_k`` the procedure needs two replacements of
``s_k``: a baseline ``s_k^b != s_k`` with unchanged hypothesis behavior
``b_k``, and a treatment ``s_k^t`` whose behavior differs.  The
:class:`GenericPerturber` discovers both sets by re-evaluating the
hypothesis on candidate replacements; :class:`MappingPerturber` encodes them
explicitly (e.g. swap ``and`` with ``or`` vs. with ``chicken``).
"""

from __future__ import annotations


from repro.data.datasets import Dataset
from repro.hypotheses.base import HypothesisFunction
from repro.util.debuglog import degraded


class Perturber:
    """Yields (baseline_chars, treatment_chars) for a position in a text."""

    def candidates(self, text: str, pos: int) -> tuple[list[str], list[str]]:
        raise NotImplementedError


class MappingPerturber(Perturber):
    """Explicit per-character replacement tables."""

    def __init__(self, baseline: dict[str, list[str]],
                 treatment: dict[str, list[str]]):
        self.baseline = baseline
        self.treatment = treatment

    def candidates(self, text: str, pos: int) -> tuple[list[str], list[str]]:
        ch = text[pos]
        return list(self.baseline.get(ch, [])), list(self.treatment.get(ch, []))


class GenericPerturber(Perturber):
    """Classifies every alphabet symbol by its effect on the hypothesis.

    A replacement is *baseline* if the hypothesis behavior at ``pos`` is
    unchanged and *treatment* otherwise.  Replacements that leave the
    behavior vector identical everywhere else are preferred but not
    required, matching the paper's definition which fixes only the prefix.
    """

    def __init__(self, hypothesis: HypothesisFunction, dataset: Dataset,
                 alphabet: list[str] | None = None, atol: float = 1e-9):
        self.hypothesis = hypothesis
        self.dataset = dataset
        if alphabet is None:
            alphabet = [dataset.vocab.char(i)
                        for i in range(1, len(dataset.vocab))]
        self.alphabet = alphabet
        self.atol = atol

    def _behavior_at(self, text: str, pos: int) -> float:
        probe = _TextDataset(text, self.dataset)
        return float(self.hypothesis.behavior(probe, 0)[pos])

    def candidates(self, text: str, pos: int) -> tuple[list[str], list[str]]:
        original = text[pos]
        ref = self._behavior_at(text, pos)
        baseline: list[str] = []
        treatment: list[str] = []
        for ch in self.alphabet:
            if ch == original:
                continue
            perturbed = text[:pos] + ch + text[pos + 1:]
            try:
                value = self._behavior_at(perturbed, pos)
            except Exception as exc:
                # hypothesis undefined on this perturbation
                degraded("verify.perturbation-undefined",
                         self.hypothesis.name, exc=exc)
                continue
            if abs(value - ref) <= self.atol:
                baseline.append(ch)
            else:
                treatment.append(ch)
        return baseline, treatment


class _TextDataset:
    """A one-record view over a raw string, for hypothesis evaluation."""

    def __init__(self, text: str, template: Dataset):
        self.vocab = template.vocab
        self.n_symbols = len(text)
        self.n_records = 1
        self._text = text
        self.meta = [{"text": text, "source_id": 0, "offset": 0}]

    def record_text(self, index: int) -> str:
        assert index == 0
        return self._text
