"""Perturbation-based verification of high-scoring units (Section 4.4).

DNI is a data-mining procedure over many pairwise tests, so high scores may
be false positives.  The verification procedure runs randomized-control
trials: for sampled input positions it swaps the symbol with a *baseline*
replacement (hypothesis behavior unchanged) and a *treatment* replacement
(behavior changes), and checks whether the candidate units' activation
deltas separate the two conditions -- quantified with the Silhouette score.
"""

from repro.verify.perturb import (GenericPerturber, MappingPerturber,
                                  Perturber)
from repro.verify.procedure import VerificationReport, verify_units

__all__ = [
    "GenericPerturber",
    "MappingPerturber",
    "Perturber",
    "VerificationReport",
    "verify_units",
]
