"""The randomized-control verification procedure (Section 4.4, Appendix C).

For sampled (record, position) sites the procedure builds one baseline and
one treatment perturbation, runs the model on original + perturbed records,
and collects the candidate units' activation change at the perturbed
position.  If the units truly track the hypothesis, treatment deltas should
separate from baseline deltas; the Silhouette score over the labeled deltas
quantifies the separation (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset
from repro.hypotheses.base import HypothesisFunction
from repro.measures.stats import silhouette_score
from repro.verify.perturb import GenericPerturber, Perturber


@dataclass
class VerificationReport:
    """Outcome of one verification run."""

    silhouette: float
    n_sites: int
    deltas: np.ndarray          # (2 * n_sites, n_units) activation changes
    labels: np.ndarray          # 0 = baseline, 1 = treatment

    def separated(self, threshold: float = 0.1) -> bool:
        """Whether the clusters separate beyond ``threshold``."""
        return self.silhouette > threshold


def _sample_sites(dataset: Dataset, hypothesis: HypothesisFunction,
                  n_sites: int, rng: np.random.Generator,
                  positions: str) -> list[tuple[int, int]]:
    """Sample (record, position) pairs, preferring active positions."""
    sites: list[tuple[int, int]] = []
    record_order = rng.permutation(dataset.n_records)
    for rec in record_order:
        behavior = hypothesis.behavior(dataset, int(rec))
        if positions == "active":
            cand = np.flatnonzero(behavior != 0)
        else:
            cand = np.arange(dataset.n_symbols)
        # skip padding at the start of the window
        text = dataset.record_text(int(rec))
        cand = cand[[text[p] != dataset.vocab.pad_char for p in cand]] \
            if cand.size else cand
        if cand.size == 0:
            continue
        pos = int(rng.choice(cand))
        sites.append((int(rec), pos))
        if len(sites) >= n_sites:
            break
    return sites


def verify_units(model, dataset: Dataset, hypothesis: HypothesisFunction,
                 unit_ids: np.ndarray | list[int],
                 n_sites: int = 64,
                 perturber: Perturber | None = None,
                 positions: str = "active",
                 rng: np.random.Generator | None = None) -> VerificationReport:
    """Run the verification procedure for a set of candidate units.

    ``model`` must expose ``hidden_states(ids) -> (batch, ns, units)``.
    Returns a report whose Silhouette score is high when the unit group's
    activations respond differently to treatment vs. baseline perturbations.
    """
    unit_ids = np.asarray(unit_ids, dtype=int)
    rng = rng or np.random.default_rng(0)
    if perturber is None:
        perturber = GenericPerturber(hypothesis, dataset)

    sites = _sample_sites(dataset, hypothesis, n_sites, rng, positions)
    originals: list[str] = []
    perturbed: list[str] = []
    site_pos: list[int] = []
    labels: list[int] = []

    for rec, pos in sites:
        text = dataset.record_text(rec)
        baseline, treatment = perturber.candidates(text, pos)
        if not baseline or not treatment:
            continue
        b_char = str(rng.choice(baseline))
        t_char = str(rng.choice(treatment))
        for replacement, label in ((b_char, 0), (t_char, 1)):
            originals.append(text)
            perturbed.append(text[:pos] + replacement + text[pos + 1:])
            site_pos.append(pos)
            labels.append(label)

    if len(labels) < 4 or len(set(labels)) < 2:
        raise ValueError(
            "not enough perturbable sites; relax `positions` or provide an "
            "explicit perturber")

    vocab = dataset.vocab
    orig_ids = np.stack([vocab.encode(t) for t in originals])
    pert_ids = np.stack([vocab.encode(t) for t in perturbed])
    orig_states = model.hidden_states(orig_ids)
    pert_states = model.hidden_states(pert_ids)

    rows = np.arange(len(labels))
    pos_arr = np.asarray(site_pos)
    deltas = (pert_states[rows, pos_arr][:, unit_ids]
              - orig_states[rows, pos_arr][:, unit_ids])
    labels_arr = np.asarray(labels)
    score = silhouette_score(deltas, labels_arr)
    return VerificationReport(silhouette=score, n_sites=len(labels) // 2,
                              deltas=deltas, labels=labels_arr)
