"""Ablation-based verification (the Section 4.4 alternative).

The paper's main verification method perturbs *inputs*; it names model
perturbation -- removing the high-scoring units and measuring the effect on
the model's output -- as the other established method (Karpathy et al.,
Morcos et al.) and leaves it to future work.  This module implements it:
hidden units are zeroed during the recurrence (their outgoing influence is
removed at every timestep) and the drop in task accuracy is compared against
ablating random unit sets of the same size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import new_rng


@dataclass
class AblationReport:
    """Accuracy impact of removing a unit set vs. random sets."""

    base_accuracy: float
    ablated_accuracy: float
    random_accuracies: list[float]

    @property
    def drop(self) -> float:
        return self.base_accuracy - self.ablated_accuracy

    @property
    def random_drop(self) -> float:
        return self.base_accuracy - float(np.mean(self.random_accuracies))

    def more_important_than_random(self, margin: float = 0.0) -> bool:
        """Whether the candidate units matter more than random ones."""
        return self.drop > self.random_drop + margin


def _masked_accuracy(model, ids: np.ndarray, targets: np.ndarray,
                     unit_ids: np.ndarray) -> float:
    """Task accuracy with the given hidden units forced to zero.

    The mask is applied to the hidden sequence before the output head; for
    single-layer models this removes the units' influence on the
    prediction.  (Zeroing inside the recurrence would also change the other
    units' dynamics; output-side ablation isolates the units' direct
    contribution, which is the variant Morcos et al. analyze.)
    """
    states = model.hidden_states(ids)
    masked = states.copy()
    masked[:, :, unit_ids] = 0.0
    logits = model.head.forward(masked[:, -1])
    return float((logits.argmax(axis=-1) == targets).mean())


def ablate_units(model, ids: np.ndarray, targets: np.ndarray,
                 unit_ids: np.ndarray | list[int],
                 n_random_controls: int = 5,
                 rng: np.random.Generator | None = None) -> AblationReport:
    """Measure the importance of ``unit_ids`` for the model's task.

    Compares the accuracy drop from ablating the candidate units against
    the drops from ``n_random_controls`` random unit sets of the same size
    (sampled from the remaining units).
    """
    unit_ids = np.asarray(unit_ids, dtype=int)
    rng = rng or new_rng(0)

    logits = model.forward(ids)
    base = float((logits.argmax(axis=-1) == targets).mean())
    ablated = _masked_accuracy(model, ids, targets, unit_ids)

    others = np.setdiff1d(np.arange(model.n_units), unit_ids)
    randoms = []
    for _ in range(n_random_controls):
        if others.shape[0] >= unit_ids.shape[0]:
            pick = rng.choice(others, size=unit_ids.shape[0], replace=False)
        else:
            pick = rng.choice(np.arange(model.n_units),
                              size=unit_ids.shape[0], replace=False)
        randoms.append(_masked_accuracy(model, ids, targets, pick))

    return AblationReport(base_accuracy=base, ablated_accuracy=ablated,
                          random_accuracies=randoms)
