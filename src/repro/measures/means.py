"""Difference-of-means measure (independent).

Scores each unit by the standardized difference between its mean behavior on
symbols where the (binary) hypothesis is active versus inactive -- one of the
classic measures in the RNN-interpretation literature (Section 4.3).
Early stopping uses the standard error of the mean difference.
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import Measure, MeasureState
from repro.measures.stats import Z_95


class _DiffMeansState(MeasureState):
    def __init__(self, n_units: int, n_hyps: int):
        super().__init__(n_units, n_hyps)
        # sufficient statistics split by hypothesis value (h>0 vs h<=0)
        self.n_pos = np.zeros(n_hyps)
        self.n_neg = np.zeros(n_hyps)
        self.sum_pos = np.zeros((n_units, n_hyps))
        self.sum_neg = np.zeros((n_units, n_hyps))
        self.sumsq_pos = np.zeros((n_units, n_hyps))
        self.sumsq_neg = np.zeros((n_units, n_hyps))

    def update(self, units: np.ndarray, hyps: np.ndarray) -> None:
        active = hyps > 0
        self.n_pos += active.sum(axis=0)
        self.n_neg += (~active).sum(axis=0)
        self.sum_pos += units.T @ active
        self.sum_neg += units.T @ (~active)
        units_sq = units**2
        self.sumsq_pos += units_sq.T @ active
        self.sumsq_neg += units_sq.T @ (~active)

    def _moments(self):
        n_pos = np.maximum(self.n_pos, 1e-12)
        n_neg = np.maximum(self.n_neg, 1e-12)
        mean_pos = self.sum_pos / n_pos
        mean_neg = self.sum_neg / n_neg
        var_pos = np.maximum(self.sumsq_pos / n_pos - mean_pos**2, 0.0)
        var_neg = np.maximum(self.sumsq_neg / n_neg - mean_neg**2, 0.0)
        return mean_pos, mean_neg, var_pos, var_neg, n_pos, n_neg

    def unit_scores(self) -> np.ndarray:
        return self._memoized("unit_scores", self._unit_scores)

    def _unit_scores(self) -> np.ndarray:
        mean_pos, mean_neg, var_pos, var_neg, n_pos, n_neg = self._moments()
        pooled = np.sqrt((var_pos * n_pos + var_neg * n_neg)
                         / (n_pos + n_neg))
        with np.errstate(divide="ignore", invalid="ignore"):
            scores = np.where(pooled > 1e-12,
                              (mean_pos - mean_neg) / pooled, 0.0)
        # zero out hypotheses that never (or always) fired: undefined contrast
        degenerate = (self.n_pos < 2) | (self.n_neg < 2)
        scores[:, degenerate] = 0.0
        return scores

    def column_errors(self) -> np.ndarray:
        return self._memoized("column_errors", self._column_errors)

    def _column_errors(self) -> np.ndarray:
        if self.n_rows < 8:
            return np.full(self.n_hyps, np.inf)
        _, _, var_pos, var_neg, n_pos, n_neg = self._moments()
        # hypotheses that never (or always) fired have scores pinned at 0:
        # their error is *vacuous* (NaN) -- the engine must not freeze them
        # (a contrast may still appear), but they don't block convergence
        valid = (self.n_pos >= 2) & (self.n_neg >= 2)
        se = np.sqrt(var_pos / np.maximum(n_pos, 1)
                     + var_neg / np.maximum(n_neg, 1))
        return np.where(valid, (Z_95 * se).max(axis=0), np.nan)

    def restrict_columns(self, keep: np.ndarray) -> None:
        keep = np.asarray(keep, dtype=int)
        self.n_pos = self.n_pos[keep]
        self.n_neg = self.n_neg[keep]
        self.sum_pos = self.sum_pos[:, keep]
        self.sum_neg = self.sum_neg[:, keep]
        self.sumsq_pos = self.sumsq_pos[:, keep]
        self.sumsq_neg = self.sumsq_neg[:, keep]
        self.n_hyps = int(keep.shape[0])

    def error(self) -> float:
        errors = self.column_errors()
        informative = ~np.isnan(errors)
        if not informative.any():
            # no contrast anywhere yet -- vacuously converged
            return 0.0
        return float(errors[informative].max())


class DiffMeansScore(Measure):
    """Standardized mean-activation difference, active vs. inactive symbols."""

    joint = False
    supports_partition = True
    score_id = "diff_means"

    def new_state(self, n_units: int, n_hyps: int) -> _DiffMeansState:
        return _DiffMeansState(n_units, n_hyps)
