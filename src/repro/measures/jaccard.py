"""Jaccard-coefficient measure (independent) -- the NetDissect score.

NetDissect binarizes each unit's activation map at a top-quantile threshold
and computes the intersection-over-union with annotated pixels.  The
threshold is estimated from an activation sample collected over the first
blocks (an online quantile approximation, as the paper notes NetDissect's
pipeline is); afterwards intersection/union counts accumulate exactly.
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import DeltaWindowMixin, Measure, MeasureState


class _JaccardState(MeasureState, DeltaWindowMixin):
    def __init__(self, n_units: int, n_hyps: int, quantile: float,
                 calibration_rows: int, window: int):
        MeasureState.__init__(self, n_units, n_hyps)
        DeltaWindowMixin.__init__(self, window=window)
        self.quantile = quantile
        self.calibration_rows = calibration_rows
        self._buffer_u: list[np.ndarray] = []
        self._buffer_h: list[np.ndarray] = []
        self._buffered_rows = 0
        self._provisional: tuple[int, np.ndarray] | None = None
        self.thresholds: np.ndarray | None = None
        self.intersection = np.zeros((n_units, n_hyps))
        self.active_u = np.zeros(n_units)   # |A| per unit
        self.active_h = np.zeros(n_hyps)    # |H| per hypothesis

    def update(self, units: np.ndarray, hyps: np.ndarray) -> None:
        if self.thresholds is None:
            # buffer until enough rows exist to estimate the quantile;
            # scoring stays lazy so a mid-stream result read cannot force
            # calibration from an undersized sample
            self._buffer_u.append(units.copy())
            self._buffer_h.append(hyps.copy())
            self._buffered_rows += units.shape[0]
            if self._buffered_rows >= self.calibration_rows:
                self._flush_buffer()
        else:
            self._accumulate(units, hyps)
        if self.thresholds is not None:
            # no score history accumulates while calibrating: convergence
            # cannot be judged from provisional thresholds
            self.push_score(self.unit_scores().max(axis=0))

    def _flush_buffer(self) -> None:
        sample = np.concatenate(self._buffer_u, axis=0)
        self.thresholds = np.quantile(sample, self.quantile, axis=0)
        for u_blk, h_blk in zip(self._buffer_u, self._buffer_h):
            self._accumulate(u_blk, h_blk)
        self._buffer_u, self._buffer_h = [], []
        self._provisional = None  # drop the snapshot memo with the buffer

    def _counts(self, units: np.ndarray, hyps: np.ndarray,
                thresholds: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]:
        active = (units > thresholds[None, :]).astype(np.float64)
        h_active = (hyps > 0).astype(np.float64)
        return active.T @ h_active, active.sum(axis=0), h_active.sum(axis=0)

    def _accumulate(self, units: np.ndarray, hyps: np.ndarray) -> None:
        assert self.thresholds is not None
        inter, a_u, a_h = self._counts(units, hyps, self.thresholds)
        self.intersection += inter
        self.active_u += a_u
        self.active_h += a_h

    @staticmethod
    def _iou(intersection: np.ndarray, active_u: np.ndarray,
             active_h: np.ndarray) -> np.ndarray:
        union = active_u[:, None] + active_h[None, :] - intersection
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(union > 0,
                            intersection / np.maximum(union, 1e-12), 0.0)

    def unit_scores(self) -> np.ndarray:
        if self.thresholds is None:
            if not self._buffer_u:
                return np.zeros((self.n_units, self.n_hyps))
            return self._provisional_scores()
        return self._iou(self.intersection, self.active_u, self.active_h)

    def _provisional_scores(self) -> np.ndarray:
        """Scores over the calibration buffer, without mutating state.

        Serves result reads while still buffering (including end-of-stream
        on datasets smaller than ``calibration_rows``): thresholds are
        estimated from whatever is buffered, but the state keeps
        calibrating, so the real quantile estimate still sees at least
        ``calibration_rows`` rows when the stream is long enough.
        Memoized per buffer size -- the buffer is append-only, so repeated
        reads between blocks cost one computation.
        """
        if self._provisional is not None \
                and self._provisional[0] == self._buffered_rows:
            return self._provisional[1]
        sample_u = np.concatenate(self._buffer_u, axis=0)
        sample_h = np.concatenate(self._buffer_h, axis=0)
        thresholds = np.quantile(sample_u, self.quantile, axis=0)
        inter, a_u, a_h = self._counts(sample_u, sample_h, thresholds)
        scores = self._iou(inter, a_u, a_h)
        self._provisional = (self._buffered_rows, scores)
        return scores

    def error(self) -> float:
        return self.delta_error()


class JaccardScore(Measure):
    """Intersection-over-union of thresholded activations vs. annotations.

    ``quantile`` sets the activation threshold (NetDissect uses the top 0.5%,
    i.e. 0.995); ``calibration_rows`` controls how many symbols are buffered
    to estimate it.
    """

    joint = False

    def __init__(self, quantile: float = 0.995, calibration_rows: int = 2048,
                 window: int = 4):
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.quantile = quantile
        self.calibration_rows = calibration_rows
        self.window = window
        self.score_id = f"jaccard:q{quantile}"

    def new_state(self, n_units: int, n_hyps: int) -> _JaccardState:
        return _JaccardState(n_units, n_hyps, self.quantile,
                             self.calibration_rows, self.window)
