"""Jaccard-coefficient measure (independent) -- the NetDissect score.

NetDissect binarizes each unit's activation map at a top-quantile threshold
and computes the intersection-over-union with annotated pixels.  The
threshold is estimated from an activation sample collected over the first
blocks (an online quantile approximation, as the paper notes NetDissect's
pipeline is); afterwards intersection/union counts accumulate exactly.
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import DeltaWindowMixin, Measure, MeasureState


class _JaccardState(MeasureState, DeltaWindowMixin):
    def __init__(self, n_units: int, n_hyps: int, quantile: float,
                 calibration_rows: int, window: int):
        MeasureState.__init__(self, n_units, n_hyps)
        DeltaWindowMixin.__init__(self, window=window)
        self.quantile = quantile
        self.calibration_rows = calibration_rows
        self._buffer_u: list[np.ndarray] = []
        self._buffer_h: list[np.ndarray] = []
        self._buffered_rows = 0
        self.thresholds: np.ndarray | None = None
        self.intersection = np.zeros((n_units, n_hyps))
        self.active_u = np.zeros(n_units)   # |A| per unit
        self.active_h = np.zeros(n_hyps)    # |H| per hypothesis

    def update(self, units: np.ndarray, hyps: np.ndarray) -> None:
        if self.thresholds is None:
            # buffer until enough rows exist to estimate the quantile
            self._buffer_u.append(units.copy())
            self._buffer_h.append(hyps.copy())
            self._buffered_rows += units.shape[0]
            if self._buffered_rows >= self.calibration_rows:
                self._flush_buffer()
        else:
            self._accumulate(units, hyps)
        self.push_score(self.unit_scores().max(axis=0))

    def _flush_buffer(self) -> None:
        sample = np.concatenate(self._buffer_u, axis=0)
        self.thresholds = np.quantile(sample, self.quantile, axis=0)
        for u_blk, h_blk in zip(self._buffer_u, self._buffer_h):
            self._accumulate(u_blk, h_blk)
        self._buffer_u, self._buffer_h = [], []

    def _accumulate(self, units: np.ndarray, hyps: np.ndarray) -> None:
        assert self.thresholds is not None
        active = (units > self.thresholds[None, :]).astype(np.float64)
        h_active = (hyps > 0).astype(np.float64)
        self.intersection += active.T @ h_active
        self.active_u += active.sum(axis=0)
        self.active_h += h_active.sum(axis=0)

    def unit_scores(self) -> np.ndarray:
        if self.thresholds is None:
            if not self._buffer_u:
                return np.zeros((self.n_units, self.n_hyps))
            self._flush_buffer()  # small datasets: calibrate on what we have
        union = (self.active_u[:, None] + self.active_h[None, :]
                 - self.intersection)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(union > 0,
                            self.intersection / np.maximum(union, 1e-12), 0.0)

    def error(self) -> float:
        return self.delta_error()


class JaccardScore(Measure):
    """Intersection-over-union of thresholded activations vs. annotations.

    ``quantile`` sets the activation threshold (NetDissect uses the top 0.5%,
    i.e. 0.995); ``calibration_rows`` controls how many symbols are buffered
    to estimate it.
    """

    joint = False

    def __init__(self, quantile: float = 0.995, calibration_rows: int = 2048,
                 window: int = 4):
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.quantile = quantile
        self.calibration_rows = calibration_rows
        self.window = window
        self.score_id = f"jaccard:q{quantile}"

    def new_state(self, n_units: int, n_hyps: int) -> _JaccardState:
        return _JaccardState(n_units, n_hyps, self.quantile,
                             self.calibration_rows, self.window)
