"""Linear-probe measure (Alain & Bengio style, joint, closed form).

A ridge-regularized linear model predicting the hypothesis behavior from all
unit activations.  Because the normal equations only need the accumulated
moments ``X'X`` and ``X'y``, the incremental state is exact: each block costs
one rank-update, and the probe can be (re)solved at any point -- giving
cheap early-stopping checks via the R-squared delta window.
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import DeltaWindowMixin, Measure, MeasureState


class _LinearProbeState(MeasureState, DeltaWindowMixin):
    def __init__(self, n_units: int, n_hyps: int, ridge: float, window: int):
        MeasureState.__init__(self, n_units, n_hyps)
        DeltaWindowMixin.__init__(self, window=window)
        self.ridge = ridge
        d = n_units + 1  # intercept column
        self.xtx = np.zeros((d, d))
        self.xty = np.zeros((d, n_hyps))
        self.yty = np.zeros(n_hyps)
        self.y_sum = np.zeros(n_hyps)

    def update(self, units: np.ndarray, hyps: np.ndarray) -> None:
        x = np.concatenate([units, np.ones((units.shape[0], 1))], axis=1)
        self.xtx += x.T @ x
        self.xty += x.T @ hyps
        self.yty += (hyps**2).sum(axis=0)
        self.y_sum += hyps.sum(axis=0)
        self.push_score(self.group_scores())

    def _solve(self) -> np.ndarray:
        d = self.xtx.shape[0]
        reg = self.ridge * np.eye(d)
        reg[-1, -1] = 0.0  # do not penalize the intercept
        try:
            return np.linalg.solve(self.xtx + reg, self.xty)
        except np.linalg.LinAlgError:
            return np.linalg.lstsq(self.xtx + reg, self.xty, rcond=None)[0]

    def unit_scores(self) -> np.ndarray:
        return self._solve()[:-1, :]

    def group_scores(self) -> np.ndarray:
        """R-squared per hypothesis, computed from accumulated moments."""
        if self.n_rows == 0:
            return np.zeros(self.n_hyps)
        beta = self._solve()
        n = max(self.n_rows, 1)
        sse = (self.yty
               - 2.0 * np.einsum("dh,dh->h", beta, self.xty)
               + np.einsum("dh,de,eh->h", beta, self.xtx, beta))
        sst = self.yty - self.y_sum**2 / n
        with np.errstate(divide="ignore", invalid="ignore"):
            r2 = np.where(sst > 1e-12, 1.0 - sse / np.maximum(sst, 1e-12), 0.0)
        return np.clip(r2, -1.0, 1.0)

    def error(self) -> float:
        return self.delta_error()


class LinearProbeScore(Measure):
    """Closed-form ridge probe; group score R², unit scores coefficients."""

    joint = True

    def __init__(self, ridge: float = 1e-3, window: int = 4):
        if ridge < 0:
            raise ValueError("ridge strength must be non-negative")
        self.ridge = ridge
        self.window = window
        self.score_id = "linear_probe"

    def new_state(self, n_units: int, n_hyps: int) -> _LinearProbeState:
        return _LinearProbeState(n_units, n_hyps, self.ridge, self.window)
