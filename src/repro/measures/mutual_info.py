"""Mutual-information measures.

:class:`MutualInfoScore` (independent) discretizes each unit's behavior into
quantile bins and accumulates joint histograms against each hypothesis --
the measure Morcos et al. use to find "semantic neurons".

:class:`MultivariateMutualInfoScore` (joint) estimates the MI between a
hypothesis and the joint activation *pattern* of the most informative units
of the group, matching the paper's "multivariate implementation of mutual
information" (Section 4.3).
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import DeltaWindowMixin, Measure, MeasureState


def _digitize(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Column-wise bin ids given per-column inner edges (n_edges, n_cols)."""
    out = np.zeros(values.shape, dtype=np.int64)
    for e in range(edges.shape[0]):
        out += values > edges[e][None, :]
    return out


def _quantile_edges(sample: np.ndarray, n_bins: int) -> np.ndarray:
    """Inner quantile edges (n_bins - 1, n_cols); ties collapse bins."""
    qs = np.linspace(0, 1, n_bins + 1)[1:-1]
    return np.quantile(sample, qs, axis=0)


def _mi_from_joint(joint: np.ndarray) -> float:
    """MI in nats from a 2-D contingency table of counts."""
    total = joint.sum()
    if total <= 0:
        return 0.0
    p = joint / total
    pi = p.sum(axis=1, keepdims=True)
    pj = p.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = p * np.log(p / (pi @ pj))
    return float(np.nansum(terms))


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log(p)).sum())


class _MiState(MeasureState, DeltaWindowMixin):
    def __init__(self, n_units: int, n_hyps: int, n_bins: int,
                 calibration_rows: int, normalize: bool, window: int):
        MeasureState.__init__(self, n_units, n_hyps)
        DeltaWindowMixin.__init__(self, window=window)
        self.n_bins = n_bins
        self.calibration_rows = calibration_rows
        self.normalize = normalize
        self._buffer: list[tuple[np.ndarray, np.ndarray]] = []
        self._buffered_rows = 0
        self.u_edges: np.ndarray | None = None
        self.h_edges: np.ndarray | None = None
        # joint histogram: (n_units, n_hyps, u_bin, h_bin)
        self.joint: np.ndarray | None = None

    def _calibrate_and_flush(self) -> None:
        sample_u = np.concatenate([u for u, _ in self._buffer], axis=0)
        sample_h = np.concatenate([h for _, h in self._buffer], axis=0)
        self.u_edges = _quantile_edges(sample_u, self.n_bins)
        self.h_edges = _quantile_edges(sample_h, self.n_bins)
        self.joint = np.zeros(
            (self.n_units, self.n_hyps, self.n_bins, self.n_bins))
        for u_blk, h_blk in self._buffer:
            self._accumulate(u_blk, h_blk)
        self._buffer = []

    def _accumulate(self, units: np.ndarray, hyps: np.ndarray) -> None:
        assert self.joint is not None
        u_bins = _digitize(units, self.u_edges)
        h_bins = _digitize(hyps, self.h_edges)
        for bu in range(self.n_bins):
            mask_u = (u_bins == bu).astype(np.float64)
            for bh in range(self.n_bins):
                mask_h = (h_bins == bh).astype(np.float64)
                self.joint[:, :, bu, bh] += mask_u.T @ mask_h

    def update(self, units: np.ndarray, hyps: np.ndarray) -> None:
        if self.joint is None:
            self._buffer.append((units.copy(), hyps.copy()))
            self._buffered_rows += units.shape[0]
            if self._buffered_rows >= self.calibration_rows:
                self._calibrate_and_flush()
        else:
            self._accumulate(units, hyps)
        self.push_score(self.unit_scores().max(axis=0))

    def unit_scores(self) -> np.ndarray:
        if self.joint is None:
            if not self._buffer:
                return np.zeros((self.n_units, self.n_hyps))
            self._calibrate_and_flush()
        scores = np.zeros((self.n_units, self.n_hyps))
        for i in range(self.n_units):
            for j in range(self.n_hyps):
                mi = _mi_from_joint(self.joint[i, j])
                if self.normalize:
                    h_u = _entropy(self.joint[i, j].sum(axis=1))
                    h_h = _entropy(self.joint[i, j].sum(axis=0))
                    denom = np.sqrt(h_u * h_h)
                    mi = mi / denom if denom > 1e-12 else 0.0
                scores[i, j] = mi
        return scores

    def error(self) -> float:
        return self.delta_error()


class MutualInfoScore(Measure):
    """Quantile-binned mutual information per (unit, hypothesis) pair.

    ``normalize=True`` rescales by sqrt(H(U) * H(H)) so scores live in
    [0, 1] and are comparable across hypotheses of different entropy.
    """

    joint = False

    def __init__(self, n_bins: int = 4, calibration_rows: int = 2048,
                 normalize: bool = True, window: int = 4):
        if n_bins < 2:
            raise ValueError("need at least 2 bins")
        self.n_bins = n_bins
        self.calibration_rows = calibration_rows
        self.normalize = normalize
        self.window = window
        self.score_id = "mutual_info"

    def new_state(self, n_units: int, n_hyps: int) -> _MiState:
        return _MiState(n_units, n_hyps, self.n_bins, self.calibration_rows,
                        self.normalize, self.window)


class _MultiMiState(MeasureState, DeltaWindowMixin):
    def __init__(self, n_units: int, n_hyps: int, top_k: int,
                 calibration_rows: int, window: int):
        MeasureState.__init__(self, n_units, n_hyps)
        DeltaWindowMixin.__init__(self, window=window)
        self.top_k = min(top_k, n_units)
        self.calibration_rows = calibration_rows
        self._buffer: list[tuple[np.ndarray, np.ndarray]] = []
        self._buffered_rows = 0
        self.u_medians: np.ndarray | None = None
        self.selected: np.ndarray | None = None  # (n_hyps, top_k)
        # per-hypothesis joint histogram over patterns x binary hypothesis
        self.pattern_joint: np.ndarray | None = None
        # per-unit binary joint for individual scores
        self.unit_joint = np.zeros((n_units, n_hyps, 2, 2))

    # -- calibration: pick each hypothesis's most correlated units ------
    def _calibrate_and_flush(self) -> None:
        sample_u = np.concatenate([u for u, _ in self._buffer], axis=0)
        sample_h = np.concatenate([h for _, h in self._buffer], axis=0)
        self.u_medians = np.median(sample_u, axis=0)
        bits = sample_u > self.u_medians[None, :]
        h_act = sample_h > 0
        # |corr| of binarized signals selects the informative units
        bu = bits - bits.mean(axis=0, keepdims=True)
        bh = h_act - h_act.mean(axis=0, keepdims=True)
        denom = (np.sqrt((bu**2).sum(axis=0))[:, None]
                 * np.sqrt((bh**2).sum(axis=0))[None, :])
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = np.where(denom > 1e-12, np.abs(bu.T @ bh) / denom, 0.0)
        self.selected = np.argsort(-corr, axis=0)[:self.top_k].T.copy()
        self.pattern_joint = np.zeros((self.n_hyps, 2**self.top_k, 2))
        for u_blk, h_blk in self._buffer:
            self._accumulate(u_blk, h_blk)
        self._buffer = []

    def _accumulate(self, units: np.ndarray, hyps: np.ndarray) -> None:
        assert self.selected is not None and self.pattern_joint is not None
        bits = (units > self.u_medians[None, :]).astype(np.int64)
        h_act = (hyps > 0).astype(np.int64)
        powers = 1 << np.arange(self.top_k)
        for j in range(self.n_hyps):
            patterns = bits[:, self.selected[j]] @ powers
            np.add.at(self.pattern_joint[j], (patterns, h_act[:, j]), 1.0)
        # individual unit contingency tables
        for bu in (0, 1):
            mask_u = (bits == bu).astype(np.float64)
            for bh in (0, 1):
                mask_h = (h_act == bh).astype(np.float64)
                self.unit_joint[:, :, bu, bh] += mask_u.T @ mask_h

    def update(self, units: np.ndarray, hyps: np.ndarray) -> None:
        if self.pattern_joint is None:
            self._buffer.append((units.copy(), hyps.copy()))
            self._buffered_rows += units.shape[0]
            if self._buffered_rows >= self.calibration_rows:
                self._calibrate_and_flush()
        else:
            self._accumulate(units, hyps)
        group = self.group_scores()
        if group is not None:
            self.push_score(group)

    def unit_scores(self) -> np.ndarray:
        scores = np.zeros((self.n_units, self.n_hyps))
        for i in range(self.n_units):
            for j in range(self.n_hyps):
                scores[i, j] = _mi_from_joint(self.unit_joint[i, j])
        return scores

    def group_scores(self) -> np.ndarray | None:
        if self.pattern_joint is None:
            if not self._buffer:
                return None
            self._calibrate_and_flush()
        return np.array([_mi_from_joint(self.pattern_joint[j])
                         for j in range(self.n_hyps)])

    def error(self) -> float:
        return self.delta_error()


class MultivariateMutualInfoScore(Measure):
    """MI between a hypothesis and the joint pattern of the top-k units."""

    joint = True

    def __init__(self, top_k: int = 8, calibration_rows: int = 2048,
                 window: int = 4):
        if top_k < 1 or top_k > 16:
            raise ValueError("top_k must be in [1, 16]")
        self.top_k = top_k
        self.calibration_rows = calibration_rows
        self.window = window
        self.score_id = f"multi_mi:k{top_k}"

    def new_state(self, n_units: int, n_hyps: int) -> _MultiMiState:
        return _MultiMiState(n_units, n_hyps, self.top_k,
                             self.calibration_rows, self.window)
