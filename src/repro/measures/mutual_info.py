"""Mutual-information measures.

:class:`MutualInfoScore` (independent) discretizes each unit's behavior into
quantile bins and accumulates joint histograms against each hypothesis --
the measure Morcos et al. use to find "semantic neurons".

:class:`MultivariateMutualInfoScore` (joint) estimates the MI between a
hypothesis and the joint activation *pattern* of the most informative units
of the group, matching the paper's "multivariate implementation of mutual
information" (Section 4.3).
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import DeltaWindowMixin, Measure, MeasureState


def _digitize(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Column-wise bin ids given per-column inner edges (n_edges, n_cols)."""
    out = np.zeros(values.shape, dtype=np.int64)
    for e in range(edges.shape[0]):
        out += values > edges[e][None, :]
    return out


def _quantile_edges(sample: np.ndarray, n_bins: int) -> np.ndarray:
    """Inner quantile edges (n_bins - 1, n_cols); ties collapse bins."""
    qs = np.linspace(0, 1, n_bins + 1)[1:-1]
    return np.quantile(sample, qs, axis=0)


#: bin-grid size above which the flat scatter-add beats BLAS mask matmuls
#: (measured crossover ~144 cells on one core)
_SCATTER_MIN_CELLS = 128


def _scatter_counts(joint: np.ndarray, u_bins: np.ndarray,
                    h_bins: np.ndarray) -> None:
    """``joint[i, j, u_bins[r, i], h_bins[r, j]] += 1`` for every row r.

    Two strategies, picked by bin-grid size.  Small grids keep one dense
    0/1-mask matmul per (u_bin, h_bin) cell -- BLAS wins while the cell
    count is tiny (masks are precomputed once per axis).  Larger grids use
    a flat ``bincount`` scatter-add (``np.add.at`` semantics) whose cost is
    O(rows x units x hyps) *regardless* of the bin count, instead of
    scaling quadratically with ``n_bins``; chunking keeps the intermediate
    code matrix small for wide unit/hypothesis blocks.
    """
    n_units, n_hyps, nb_u, nb_h = joint.shape
    if nb_u * nb_h <= _SCATTER_MIN_CELLS:
        masks_u = [(u_bins == b).astype(np.float64).T for b in range(nb_u)]
        masks_h = [(h_bins == b).astype(np.float64) for b in range(nb_h)]
        for bu in range(nb_u):
            for bh in range(nb_h):
                joint[:, :, bu, bh] += masks_u[bu] @ masks_h[bh]
        return
    cell_base = (np.arange(n_units)[:, None] * n_hyps
                 + np.arange(n_hyps)[None, :]) * (nb_u * nb_h)
    chunk = max(1, 4_000_000 // max(1, n_units * n_hyps))
    for start in range(0, u_bins.shape[0], chunk):
        codes = (cell_base[None, :, :]
                 + u_bins[start:start + chunk, :, None] * nb_h
                 + h_bins[start:start + chunk, None, :])
        joint += np.bincount(codes.reshape(-1),
                             minlength=joint.size).reshape(joint.shape)


def _mi_from_joint(joint: np.ndarray) -> float:
    """MI in nats from a 2-D contingency table of counts."""
    total = joint.sum()
    if total <= 0:
        return 0.0
    p = joint / total
    pi = p.sum(axis=1, keepdims=True)
    pj = p.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = p * np.log(p / (pi @ pj))
    return float(np.nansum(terms))


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log(p)).sum())


class _MiState(MeasureState, DeltaWindowMixin):
    def __init__(self, n_units: int, n_hyps: int, n_bins: int,
                 calibration_rows: int, normalize: bool, window: int):
        MeasureState.__init__(self, n_units, n_hyps)
        DeltaWindowMixin.__init__(self, window=window)
        self.n_bins = n_bins
        self.calibration_rows = calibration_rows
        self.normalize = normalize
        self._buffer: list[tuple[np.ndarray, np.ndarray]] = []
        self._buffered_rows = 0
        self._provisional: tuple[int, np.ndarray] | None = None
        self.u_edges: np.ndarray | None = None
        self.h_edges: np.ndarray | None = None
        # joint histogram: (n_units, n_hyps, u_bin, h_bin)
        self.joint: np.ndarray | None = None

    def _calibrate_and_flush(self) -> None:
        sample_u = np.concatenate([u for u, _ in self._buffer], axis=0)
        sample_h = np.concatenate([h for _, h in self._buffer], axis=0)
        self.u_edges = _quantile_edges(sample_u, self.n_bins)
        self.h_edges = _quantile_edges(sample_h, self.n_bins)
        self.joint = np.zeros(
            (self.n_units, self.n_hyps, self.n_bins, self.n_bins))
        for u_blk, h_blk in self._buffer:
            self._accumulate(u_blk, h_blk)
        self._buffer = []
        self._provisional = None  # drop the snapshot memo with the buffer

    def _accumulate(self, units: np.ndarray, hyps: np.ndarray) -> None:
        assert self.joint is not None
        _scatter_counts(self.joint, _digitize(units, self.u_edges),
                        _digitize(hyps, self.h_edges))

    def update(self, units: np.ndarray, hyps: np.ndarray) -> None:
        if self.joint is None:
            # buffer until enough rows exist to estimate the bin edges;
            # scoring stays lazy so a mid-stream result read cannot force
            # calibration from an undersized sample
            self._buffer.append((units.copy(), hyps.copy()))
            self._buffered_rows += units.shape[0]
            if self._buffered_rows >= self.calibration_rows:
                self._calibrate_and_flush()
        else:
            self._accumulate(units, hyps)
        if self.joint is not None:
            # no score history accumulates while calibrating: convergence
            # cannot be judged from provisional bin edges
            self.push_score(self.unit_scores().max(axis=0))

    def _scores_from_joint(self, joint: np.ndarray) -> np.ndarray:
        scores = np.zeros((self.n_units, self.n_hyps))
        for i in range(self.n_units):
            for j in range(self.n_hyps):
                mi = _mi_from_joint(joint[i, j])
                if self.normalize:
                    h_u = _entropy(joint[i, j].sum(axis=1))
                    h_h = _entropy(joint[i, j].sum(axis=0))
                    denom = np.sqrt(h_u * h_h)
                    mi = mi / denom if denom > 1e-12 else 0.0
                scores[i, j] = mi
        return scores

    def _provisional_joint(self) -> np.ndarray:
        """Histograms over the calibration buffer, without mutating state.

        Serves result reads while still buffering (including end-of-stream
        on datasets smaller than ``calibration_rows``): edges are estimated
        from whatever is buffered, but the state keeps calibrating.
        Memoized per buffer size -- the buffer is append-only, so repeated
        reads between blocks cost one computation.
        """
        if self._provisional is not None \
                and self._provisional[0] == self._buffered_rows:
            return self._provisional[1]
        sample_u = np.concatenate([u for u, _ in self._buffer], axis=0)
        sample_h = np.concatenate([h for _, h in self._buffer], axis=0)
        joint = np.zeros(
            (self.n_units, self.n_hyps, self.n_bins, self.n_bins))
        _scatter_counts(joint,
                        _digitize(sample_u,
                                  _quantile_edges(sample_u, self.n_bins)),
                        _digitize(sample_h,
                                  _quantile_edges(sample_h, self.n_bins)))
        self._provisional = (self._buffered_rows, joint)
        return joint

    def unit_scores(self) -> np.ndarray:
        if self.joint is None:
            if not self._buffer:
                return np.zeros((self.n_units, self.n_hyps))
            return self._scores_from_joint(self._provisional_joint())
        return self._scores_from_joint(self.joint)

    def error(self) -> float:
        return self.delta_error()


class MutualInfoScore(Measure):
    """Quantile-binned mutual information per (unit, hypothesis) pair.

    ``normalize=True`` rescales by sqrt(H(U) * H(H)) so scores live in
    [0, 1] and are comparable across hypotheses of different entropy.
    """

    joint = False

    def __init__(self, n_bins: int = 4, calibration_rows: int = 2048,
                 normalize: bool = True, window: int = 4):
        if n_bins < 2:
            raise ValueError("need at least 2 bins")
        self.n_bins = n_bins
        self.calibration_rows = calibration_rows
        self.normalize = normalize
        self.window = window
        self.score_id = "mutual_info"

    def new_state(self, n_units: int, n_hyps: int) -> _MiState:
        return _MiState(n_units, n_hyps, self.n_bins, self.calibration_rows,
                        self.normalize, self.window)


class _MultiMiState(MeasureState, DeltaWindowMixin):
    def __init__(self, n_units: int, n_hyps: int, top_k: int,
                 calibration_rows: int, window: int):
        MeasureState.__init__(self, n_units, n_hyps)
        DeltaWindowMixin.__init__(self, window=window)
        self.top_k = min(top_k, n_units)
        self.calibration_rows = calibration_rows
        self._buffer: list[tuple[np.ndarray, np.ndarray]] = []
        self._buffered_rows = 0
        self._prov: tuple[int, tuple[np.ndarray, np.ndarray]] | None = None
        self.u_medians: np.ndarray | None = None
        self.selected: np.ndarray | None = None  # (n_hyps, top_k)
        # per-hypothesis joint histogram over patterns x binary hypothesis
        self.pattern_joint: np.ndarray | None = None
        # per-unit binary joint for individual scores
        self.unit_joint = np.zeros((n_units, n_hyps, 2, 2))

    # -- calibration: pick each hypothesis's most correlated units ------
    def _select_units(self, sample_u: np.ndarray,
                      sample_h: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(medians, per-hypothesis selected unit ids) from a sample."""
        u_medians = np.median(sample_u, axis=0)
        bits = sample_u > u_medians[None, :]
        h_act = sample_h > 0
        # |corr| of binarized signals selects the informative units
        bu = bits - bits.mean(axis=0, keepdims=True)
        bh = h_act - h_act.mean(axis=0, keepdims=True)
        denom = (np.sqrt((bu**2).sum(axis=0))[:, None]
                 * np.sqrt((bh**2).sum(axis=0))[None, :])
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = np.where(denom > 1e-12, np.abs(bu.T @ bh) / denom, 0.0)
        selected = np.argsort(-corr, axis=0)[:self.top_k].T.copy()
        return u_medians, selected

    def _calibrate_and_flush(self) -> None:
        sample_u = np.concatenate([u for u, _ in self._buffer], axis=0)
        sample_h = np.concatenate([h for _, h in self._buffer], axis=0)
        self.u_medians, self.selected = self._select_units(sample_u, sample_h)
        self.pattern_joint = np.zeros((self.n_hyps, 2**self.top_k, 2))
        for u_blk, h_blk in self._buffer:
            self._accumulate(u_blk, h_blk)
        self._buffer = []
        self._prov = None  # drop the snapshot memo with the buffer

    def _accumulate_into(self, pattern_joint: np.ndarray,
                         unit_joint: np.ndarray, u_medians: np.ndarray,
                         selected: np.ndarray, units: np.ndarray,
                         hyps: np.ndarray) -> None:
        bits = (units > u_medians[None, :]).astype(np.int64)
        h_act = (hyps > 0).astype(np.int64)
        powers = 1 << np.arange(self.top_k)
        for j in range(hyps.shape[1]):
            patterns = bits[:, selected[j]] @ powers
            np.add.at(pattern_joint[j], (patterns, h_act[:, j]), 1.0)
        # individual unit contingency tables, via the flat scatter-add
        _scatter_counts(unit_joint, bits, h_act)

    def _accumulate(self, units: np.ndarray, hyps: np.ndarray) -> None:
        assert self.selected is not None and self.pattern_joint is not None
        self._accumulate_into(self.pattern_joint, self.unit_joint,
                              self.u_medians, self.selected, units, hyps)

    def update(self, units: np.ndarray, hyps: np.ndarray) -> None:
        if self.pattern_joint is None:
            # buffer until the unit-selection sample is large enough;
            # scoring stays lazy so a mid-stream result read cannot force
            # selection from an undersized sample
            self._buffer.append((units.copy(), hyps.copy()))
            self._buffered_rows += units.shape[0]
            if self._buffered_rows >= self.calibration_rows:
                self._calibrate_and_flush()
        else:
            self._accumulate(units, hyps)
        if self.pattern_joint is not None:
            self.push_score(self.group_scores())

    def _provisional(self) -> tuple[np.ndarray, np.ndarray]:
        """(pattern_joint, unit_joint) over the calibration buffer.

        Computed without mutating state, so mid-stream result reads (and
        end-of-stream reads on datasets smaller than ``calibration_rows``)
        cannot cut the selection sample short.  Memoized per buffer size --
        a result read touches both histograms, and the buffer is
        append-only, so each block pays one computation.
        """
        if self._prov is not None and self._prov[0] == self._buffered_rows:
            return self._prov[1]
        sample_u = np.concatenate([u for u, _ in self._buffer], axis=0)
        sample_h = np.concatenate([h for _, h in self._buffer], axis=0)
        u_medians, selected = self._select_units(sample_u, sample_h)
        pattern_joint = np.zeros((self.n_hyps, 2**self.top_k, 2))
        unit_joint = np.zeros((self.n_units, self.n_hyps, 2, 2))
        self._accumulate_into(pattern_joint, unit_joint, u_medians, selected,
                              sample_u, sample_h)
        self._prov = (self._buffered_rows, (pattern_joint, unit_joint))
        return pattern_joint, unit_joint

    def unit_scores(self) -> np.ndarray:
        if self.pattern_joint is None:
            if not self._buffer:
                return np.zeros((self.n_units, self.n_hyps))
            unit_joint = self._provisional()[1]
        else:
            unit_joint = self.unit_joint
        scores = np.zeros((self.n_units, self.n_hyps))
        for i in range(self.n_units):
            for j in range(self.n_hyps):
                scores[i, j] = _mi_from_joint(unit_joint[i, j])
        return scores

    def group_scores(self) -> np.ndarray | None:
        if self.pattern_joint is None:
            if not self._buffer:
                return None
            pattern_joint = self._provisional()[0]
        else:
            pattern_joint = self.pattern_joint
        return np.array([_mi_from_joint(pattern_joint[j])
                         for j in range(self.n_hyps)])

    def error(self) -> float:
        return self.delta_error()


class MultivariateMutualInfoScore(Measure):
    """MI between a hypothesis and the joint pattern of the top-k units."""

    joint = True

    def __init__(self, top_k: int = 8, calibration_rows: int = 2048,
                 window: int = 4):
        if top_k < 1 or top_k > 16:
            raise ValueError("top_k must be in [1, 16]")
        self.top_k = top_k
        self.calibration_rows = calibration_rows
        self.window = window
        self.score_id = f"multi_mi:k{top_k}"

    def new_state(self, n_units: int, n_hyps: int) -> _MultiMiState:
        return _MultiMiState(n_units, n_hyps, self.top_k,
                             self.calibration_rows, self.window)
