"""Naive baseline scores: random class and majority class (Section 4.1).

These anchor affinity scores: a probe is only evidence of learned structure
if it beats what a classifier that ignores the activations entirely would
score.  Both baselines estimate the hypothesis class prior ``p`` online and
report the *expected* F1 of the trivial predictor:

* random (prior-matched coin flip):  F1 = p
* majority class: F1 = 2p / (1 + p) when the positive class dominates,
  0 otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import Measure, MeasureState


class _PriorState(MeasureState):
    def __init__(self, n_units: int, n_hyps: int, kind: str):
        super().__init__(n_units, n_hyps)
        self.kind = kind
        self.n_pos = np.zeros(n_hyps)

    def update(self, units: np.ndarray, hyps: np.ndarray) -> None:
        self.n_pos += (hyps > 0).sum(axis=0)

    def _prior(self) -> np.ndarray:
        return self.n_pos / max(self.n_rows, 1)

    def group_scores(self) -> np.ndarray:
        p = self._prior()
        if self.kind == "random":
            # E[tp]=p^2 n, E[fp]=E[fn]=p(1-p) n  =>  F1 = p
            return p
        return np.where(p > 0.5, 2.0 * p / (1.0 + p), 0.0)

    def unit_scores(self) -> np.ndarray:
        # baselines ignore unit behaviors: same floor for every unit
        return np.tile(self.group_scores()[None, :], (self.n_units, 1))

    def error(self) -> float:
        # the prior estimate converges at 1/sqrt(n)
        if self.n_rows < 2:
            return float("inf")
        return float(1.0 / np.sqrt(self.n_rows))


class RandomClassScore(Measure):
    """Expected F1 of a prior-matched random classifier."""

    joint = True
    score_id = "baseline:random"

    def new_state(self, n_units: int, n_hyps: int) -> _PriorState:
        return _PriorState(n_units, n_hyps, "random")


class MajorityClassScore(Measure):
    """Expected F1 of the majority-class predictor."""

    joint = True
    score_id = "baseline:majority"

    def new_state(self, n_units: int, n_hyps: int) -> _PriorState:
        return _PriorState(n_units, n_hyps, "majority")
