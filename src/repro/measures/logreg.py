"""Logistic-regression affinity measures (joint).

The measure of Belinkov et al. and Alain & Bengio: train a classifier that
predicts the hypothesis behavior from the group's unit activations.  The F1
score (5-fold cross-validation on the full-data path, held-out rows on the
streaming path) is the group affinity; coefficients are the per-unit scores.

**Model merging** (Section 5.2.1): instead of training one probe per
hypothesis, all |H| probes share a single (n_units + 1, |H|) weight matrix
trained jointly.  Since the merged loss is the sum of independent
per-hypothesis losses, minimizing it is equivalent to minimizing each loss
separately -- merging is exact, it only changes wall-clock.  The
:class:`repro.nn.device.Device` shim decides whether the merged linear
algebra runs vectorized ("gpu") or column-at-a-time ("cpu").
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import DeltaWindowMixin, Measure, MeasureState
from repro.measures.stats import (f1_score, multiclass_precision)
from repro.nn.device import Device, get_device
from repro.nn.layers import sigmoid, softmax
from repro.util.rng import new_rng


class MergedLogisticRegression:
    """|H| binary logistic probes sharing one weight matrix, Adam-trained."""

    def __init__(self, n_features: int, n_outputs: int,
                 device: Device | str | None = None,
                 l1: float = 0.0, l2: float = 0.0, lr: float = 0.05,
                 seed: int = 0):
        self.n_features = n_features
        self.n_outputs = n_outputs
        self.device = get_device(device)
        self.l1 = l1
        self.l2 = l2
        self.lr = lr
        rng = new_rng(seed)
        self.weights = rng.standard_normal((n_features, n_outputs)) * 0.01
        self.bias = np.zeros(n_outputs)
        # Adam state
        self._mw = np.zeros_like(self.weights)
        self._vw = np.zeros_like(self.weights)
        self._mb = np.zeros_like(self.bias)
        self._vb = np.zeros_like(self.bias)
        self._t = 0

    # ------------------------------------------------------------------
    def logits(self, x: np.ndarray) -> np.ndarray:
        return self.device.matmul(x, self.weights) + self.bias

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return sigmoid(self.logits(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.logits(x) > 0.0

    def partial_fit(self, x: np.ndarray, y: np.ndarray,
                    batch_size: int = 128) -> None:
        """One pass of minibatch Adam over the given rows."""
        n = x.shape[0]
        for start in range(0, n, batch_size):
            xb = x[start:start + batch_size]
            yb = y[start:start + batch_size]
            delta = self.predict_proba(xb) - yb      # dL/dlogits, (n_b, H)
            grad_w = self.device.batched_outer_update(xb, delta) / xb.shape[0]
            grad_b = delta.mean(axis=0)
            if self.l2:
                grad_w = grad_w + self.l2 * self.weights
            if self.l1:
                grad_w = grad_w + self.l1 * np.sign(self.weights)
            self._adam_step(grad_w, grad_b)

    def _adam_step(self, grad_w: np.ndarray, grad_b: np.ndarray,
                   beta1: float = 0.9, beta2: float = 0.999,
                   eps: float = 1e-7) -> None:
        self._t += 1
        for grad, val, m, v in ((grad_w, self.weights, self._mw, self._vw),
                                (grad_b, self.bias, self._mb, self._vb)):
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad**2
            m_hat = m / (1 - beta1**self._t)
            v_hat = v / (1 - beta2**self._t)
            val -= self.lr * m_hat / (np.sqrt(v_hat) + eps)

    def f1_per_output(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        pred = self.predict(x)
        truth = y > 0
        return np.array([f1_score(pred[:, j], truth[:, j])
                         for j in range(self.n_outputs)])


class _Standardizer:
    """Freezes feature mean/std on the first calibration rows."""

    def __init__(self, calibration_rows: int = 512):
        self.calibration_rows = calibration_rows
        self._buffer: list[np.ndarray] = []
        self._rows = 0
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def feed(self, x: np.ndarray) -> None:
        if self.mean is not None:
            return
        self._buffer.append(x)
        self._rows += x.shape[0]
        if self._rows >= self.calibration_rows:
            self.fit(np.concatenate(self._buffer, axis=0))

    def fit(self, x: np.ndarray) -> None:
        self.mean = x.mean(axis=0)
        self.std = np.maximum(x.std(axis=0), 1e-8)
        self._buffer = []

    @property
    def ready(self) -> bool:
        return self.mean is not None

    def transform(self, x: np.ndarray) -> np.ndarray:
        assert self.mean is not None and self.std is not None
        return (x - self.mean) / self.std


class _LogRegState(MeasureState, DeltaWindowMixin):
    """Streaming state: online training with held-out validation rows."""

    def __init__(self, n_units: int, n_hyps: int, measure: "LogRegressionScore"):
        MeasureState.__init__(self, n_units, n_hyps)
        DeltaWindowMixin.__init__(self, window=measure.window)
        self.measure = measure
        self.model = MergedLogisticRegression(
            n_units, n_hyps, device=measure.device,
            l1=measure.l1, l2=measure.l2, lr=measure.lr, seed=measure.seed)
        self.standardizer = _Standardizer()
        self._val_x: list[np.ndarray] = []
        self._val_y: list[np.ndarray] = []
        self._val_rows = 0

    def update(self, units: np.ndarray, hyps: np.ndarray) -> None:
        if not self.standardizer.ready:
            self.standardizer.fit(units)  # first (shuffled) block calibrates
        x = self.standardizer.transform(units)
        y = (hyps > 0).astype(np.float64)
        # hold out every 5th row for validation (cap the buffer)
        val_mask = np.arange(x.shape[0]) % 5 == 0
        if self._val_rows < self.measure.max_val_rows:
            self._val_x.append(x[val_mask])
            self._val_y.append(y[val_mask])
            self._val_rows += int(val_mask.sum())
        self.model.partial_fit(x[~val_mask], y[~val_mask],
                               batch_size=self.measure.batch_size)
        self.push_score(self._val_f1())

    def _val_f1(self) -> np.ndarray:
        if not self._val_x:
            return np.zeros(self.n_hyps)
        x = np.concatenate(self._val_x, axis=0)
        y = np.concatenate(self._val_y, axis=0)
        return self.model.f1_per_output(x, y)

    def unit_scores(self) -> np.ndarray:
        return self.model.weights.copy()

    def group_scores(self) -> np.ndarray:
        return self._val_f1()

    def error(self) -> float:
        return self.delta_error()


class LogRegressionScore(Measure):
    """Merged logistic-regression probe; F1 group score, coefficient units.

    ``LogRegressionScore(regul='L1', score='F1')`` reproduces the paper's
    API example.  ``device`` selects merged-vectorized ("gpu") vs
    column-looped ("cpu") execution; ``merged=False`` switches the full-data
    path to the naive one-model-per-hypothesis loop the baselines use.
    """

    joint = True

    def __init__(self, regul: str = "L1", score: str = "F1",
                 strength: float = 1e-3, lr: float = 0.05,
                 epochs: int = 4, cv_folds: int = 5,
                 device: Device | str | None = None, merged: bool = True,
                 batch_size: int = 128, max_val_rows: int = 4096,
                 window: int = 4, seed: int = 0):
        regul = regul.upper()
        if regul not in ("L1", "L2", "NONE"):
            raise ValueError("regul must be L1, L2 or NONE")
        if score != "F1":
            raise ValueError("only the F1 score is implemented")
        self.l1 = strength if regul == "L1" else 0.0
        self.l2 = strength if regul == "L2" else 0.0
        self.lr = lr
        self.epochs = epochs
        self.cv_folds = cv_folds
        self.device = get_device(device)
        self.merged = merged
        self.batch_size = batch_size
        self.max_val_rows = max_val_rows
        self.window = window
        self.seed = seed
        self.score_id = f"logreg:{regul.lower()}"

    # ------------------------------------------------------------------
    def new_state(self, n_units: int, n_hyps: int) -> _LogRegState:
        return _LogRegState(n_units, n_hyps, self)

    # ------------------------------------------------------------------
    def compute(self, units: np.ndarray, hyps: np.ndarray):
        """Full-data path: k-fold cross-validated F1 (Section 4.3)."""
        n_units, n_hyps = units.shape[1], hyps.shape[1]
        std = _Standardizer()
        std.fit(units)
        x = std.transform(units)
        y = (hyps > 0).astype(np.float64)

        if self.merged:
            f1 = self._cv_f1_merged(x, y)
            final = self._train_merged(x, y)
        else:
            f1 = np.empty(n_hyps)
            coefs = np.empty((n_units, n_hyps))
            for j in range(n_hyps):
                f1[j] = self._cv_f1_merged(x, y[:, j:j + 1])[0]
                model = self._train_merged(x, y[:, j:j + 1])
                coefs[:, j] = model.weights[:, 0]
            result = self._make_result(coefs, f1, units.shape[0])
            return result
        return self._make_result(final.weights.copy(), f1, units.shape[0])

    def _make_result(self, coefs, f1, n_rows):
        from repro.measures.base import MeasureResult
        return MeasureResult(unit_scores=coefs, group_scores=f1,
                             n_rows_seen=n_rows, converged=True)

    def _train_merged(self, x: np.ndarray,
                      y: np.ndarray) -> MergedLogisticRegression:
        model = MergedLogisticRegression(
            x.shape[1], y.shape[1], device=self.device,
            l1=self.l1, l2=self.l2, lr=self.lr, seed=self.seed)
        rng = new_rng(self.seed)
        for _ in range(self.epochs):
            order = rng.permutation(x.shape[0])
            model.partial_fit(x[order], y[order], batch_size=self.batch_size)
        return model

    def _cv_f1_merged(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        folds = max(2, self.cv_folds)
        fold_ids = np.arange(n) % folds
        scores = np.zeros((folds, y.shape[1]))
        for k in range(folds):
            test = fold_ids == k
            model = self._train_merged(x[~test], y[~test])
            scores[k] = model.f1_per_output(x[test], y[test])
        return scores.mean(axis=0)


class _MulticlassState(MeasureState, DeltaWindowMixin):
    def __init__(self, n_units: int, measure: "MulticlassLogRegScore"):
        MeasureState.__init__(self, n_units, 1)
        DeltaWindowMixin.__init__(self, window=measure.window)
        self.measure = measure
        self.n_classes = measure.n_classes
        rng = new_rng(measure.seed)
        self.weights = rng.standard_normal((n_units, self.n_classes)) * 0.01
        self.bias = np.zeros(self.n_classes)
        self._mw = np.zeros_like(self.weights)
        self._vw = np.zeros_like(self.weights)
        self._mb = np.zeros_like(self.bias)
        self._vb = np.zeros_like(self.bias)
        self._t = 0
        self.standardizer = _Standardizer()
        self._val_x: list[np.ndarray] = []
        self._val_y: list[np.ndarray] = []

    def _step(self, x: np.ndarray, y_ids: np.ndarray) -> None:
        measure = self.measure
        for start in range(0, x.shape[0], measure.batch_size):
            xb = x[start:start + measure.batch_size]
            yb = y_ids[start:start + measure.batch_size]
            probs = softmax(xb @ self.weights + self.bias, axis=-1)
            probs[np.arange(xb.shape[0]), yb] -= 1.0
            grad_w = xb.T @ probs / xb.shape[0] + measure.l2 * self.weights
            if measure.l1:
                grad_w += measure.l1 * np.sign(self.weights)
            grad_b = probs.mean(axis=0)
            self._adam(grad_w, grad_b)

    def _adam(self, grad_w, grad_b, beta1=0.9, beta2=0.999, eps=1e-7):
        self._t += 1
        for grad, val, m, v in ((grad_w, self.weights, self._mw, self._vw),
                                (grad_b, self.bias, self._mb, self._vb)):
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad**2
            val -= self.measure.lr * (m / (1 - beta1**self._t)) / (
                np.sqrt(v / (1 - beta2**self._t)) + eps)

    def update(self, units: np.ndarray, hyps: np.ndarray) -> None:
        if hyps.shape[1] != 1:
            raise ValueError("multiclass probe expects a single categorical "
                             "hypothesis column")
        if not self.standardizer.ready:
            self.standardizer.fit(units)
        x = self.standardizer.transform(units)
        y_ids = hyps[:, 0].astype(np.int64)
        val_mask = np.arange(x.shape[0]) % 5 == 0
        self._val_x.append(x[val_mask])
        self._val_y.append(y_ids[val_mask])
        self._step(x[~val_mask], y_ids[~val_mask])
        self.push_score(np.array([self._val_accuracy()]))

    def _predict(self, x: np.ndarray) -> np.ndarray:
        return (x @ self.weights + self.bias).argmax(axis=-1)

    def _val_accuracy(self) -> float:
        if not self._val_x:
            return 0.0
        x = np.concatenate(self._val_x, axis=0)
        y = np.concatenate(self._val_y, axis=0)
        return float((self._predict(x) == y).mean())

    def unit_scores(self) -> np.ndarray:
        # per-unit relevance: L2 norm of the unit's class coefficients
        return np.sqrt((self.weights**2).sum(axis=1, keepdims=True))

    def group_scores(self) -> np.ndarray:
        return np.array([self._val_accuracy()])

    def extras(self) -> dict:
        if not self._val_x:
            return {"per_class_precision": np.zeros(self.n_classes)}
        x = np.concatenate(self._val_x, axis=0)
        y = np.concatenate(self._val_y, axis=0)
        return {"per_class_precision": multiclass_precision(
            self._predict(x), y, self.n_classes)}

    def error(self) -> float:
        return self.delta_error()


class MulticlassLogRegScore(Measure):
    """Softmax probe for one categorical hypothesis (Figure 11's measure).

    The group score is held-out accuracy; ``extras['per_class_precision']``
    carries the per-tag precision the paper plots.
    """

    joint = True

    def __init__(self, n_classes: int, regul: str = "L2",
                 strength: float = 1e-4, lr: float = 0.05,
                 epochs: int = 10, batch_size: int = 128,
                 window: int = 4, seed: int = 0):
        if n_classes < 2:
            raise ValueError("need at least two classes")
        regul = regul.upper()
        self.n_classes = n_classes
        self.l1 = strength if regul == "L1" else 0.0
        self.l2 = strength if regul == "L2" else 0.0
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.window = window
        self.seed = seed
        self.score_id = f"multiclass_logreg:{regul.lower()}"

    def new_state(self, n_units: int, n_hyps: int) -> _MulticlassState:
        if n_hyps != 1:
            raise ValueError("multiclass probe expects exactly one hypothesis")
        return _MulticlassState(n_units, self)

    def compute(self, units: np.ndarray, hyps: np.ndarray):
        """Full-data path: fixed train/validation split, multiple epochs."""
        state = self.new_state(units.shape[1], hyps.shape[1])
        units = np.asarray(units, dtype=np.float64)
        y_ids = np.asarray(hyps, dtype=np.float64)[:, 0].astype(np.int64)
        n = units.shape[0]
        val_mask = np.arange(n) % 5 == 0
        state.standardizer.fit(units[~val_mask])
        x_train = state.standardizer.transform(units[~val_mask])
        y_train = y_ids[~val_mask]
        state._val_x.append(state.standardizer.transform(units[val_mask]))
        state._val_y.append(y_ids[val_mask])
        rng = new_rng(self.seed)
        for _ in range(self.epochs):
            order = rng.permutation(x_train.shape[0])
            state._step(x_train[order], y_train[order])
        state.n_rows = n
        return state.result(converged=True)
