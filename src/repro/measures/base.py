"""Measure protocol: full-data computation plus the incremental block API.

A measure quantifies the affinity between unit behaviors ``U`` (rows =
symbols, columns = units) and hypothesis behaviors ``H`` (rows = symbols,
columns = hypotheses).  Following Definition 1, it returns a per-unit score
for every (unit, hypothesis) pair and -- for *joint* measures -- a group
score per hypothesis.

The streaming engine drives measures through :class:`MeasureState`::

    state = measure.new_state(n_units, n_hyps)
    for U_block, H_block in blocks:
        scores, err = measure.process_block(state, U_block, H_block)
        if err <= threshold: break

which is the ``l.process_block(U, h, recs) -> (scores, err)`` API of
Section 5.2.2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class MeasureResult:
    """Affinity output for one (unit group, measure) over all hypotheses."""

    unit_scores: np.ndarray            # (n_units, n_hyps)
    group_scores: np.ndarray | None    # (n_hyps,) for joint measures
    n_rows_seen: int = 0               # symbols consumed before convergence
    converged: bool = False
    extras: dict | None = None         # measure-specific outputs (see docs)
    #: per-hypothesis-column accounting, filled by the plan executor when a
    #: measure supports column partitioning (frozen columns see fewer rows)
    col_rows_seen: np.ndarray | None = None    # (n_hyps,) int
    col_converged: np.ndarray | None = None    # (n_hyps,) bool


class MeasureState:
    """Incremental computation state; subclasses accumulate sufficient stats."""

    def __init__(self, n_units: int, n_hyps: int):
        self.n_units = n_units
        self.n_hyps = n_hyps
        self.n_rows = 0
        self._memo: dict = {}

    def _memoized(self, name: str, compute):
        """Cache a derived quantity until (n_rows, n_hyps) changes.

        One block typically triggers several score/error reads (result,
        error, per-column convergence check); the sufficient statistics only
        change with ``update`` (which bumps ``n_rows``) or
        ``restrict_columns`` (which shrinks ``n_hyps``), so those two values
        key the cache.  Only safe for states that do NOT read scores inside
        ``update`` (``n_rows`` is bumped after update returns).
        """
        key = (self.n_rows, self.n_hyps)
        hit = self._memo.get(name)
        if hit is None or hit[0] != key:
            hit = (key, compute())
            self._memo[name] = hit
        return hit[1]

    def update(self, units: np.ndarray, hyps: np.ndarray) -> None:
        raise NotImplementedError

    def unit_scores(self) -> np.ndarray:
        raise NotImplementedError

    def group_scores(self) -> np.ndarray | None:
        return None

    def error(self) -> float:
        """Upper estimate of the current score error (inf until defined)."""
        return float("inf")

    def column_errors(self) -> np.ndarray | None:
        """Per-hypothesis-column error estimates, shape (n_hyps,).

        Measures whose sufficient statistics factor across hypothesis columns
        return one error bound per column so the engine can freeze converged
        columns individually; the default (None) keeps the scalar criterion.
        A ``NaN`` entry marks a *vacuous* column (its score is pinned but
        could still change, e.g. a hypothesis that has not fired yet): the
        engine never freezes it, but it does not block task convergence.
        The max over non-NaN entries must equal :meth:`error` (0.0 when all
        entries are NaN).
        """
        return None

    def restrict_columns(self, keep: np.ndarray) -> None:
        """Drop all hypothesis columns except ``keep`` (positional indices).

        Called by the engine after converged columns are frozen; subsequent
        :meth:`update` calls receive hypothesis blocks restricted to the kept
        columns.  Only measures with ``supports_partition`` implement this.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support column partitioning")

    def extras(self) -> dict | None:
        return None

    def result(self, converged: bool = False) -> MeasureResult:
        return MeasureResult(unit_scores=self.unit_scores(),
                             group_scores=self.group_scores(),
                             n_rows_seen=self.n_rows,
                             converged=converged,
                             extras=self.extras())


class Measure:
    """Base class for affinity measures."""

    #: identifier used in result frames (e.g. ``corr:pearson``)
    score_id: str = "measure"
    #: joint measures score a unit group as a whole (e.g. logistic regression)
    joint: bool = False
    #: whether process_block errors are meaningful for early stopping
    supports_early_stop: bool = True
    #: whether states factor across hypothesis columns (column_errors /
    #: restrict_columns), enabling per-hypothesis early stopping
    supports_partition: bool = False

    # ------------------------------------------------------------------
    def new_state(self, n_units: int, n_hyps: int) -> MeasureState:
        raise NotImplementedError

    def process_block(self, state: MeasureState, units: np.ndarray,
                      hyps: np.ndarray) -> tuple[MeasureResult, float]:
        """Consume one block; returns (current scores, current error)."""
        units = np.asarray(units, dtype=np.float64)
        hyps = np.asarray(hyps, dtype=np.float64)
        if units.shape[0] != hyps.shape[0]:
            raise ValueError(
                f"block row mismatch: units {units.shape[0]} vs "
                f"hyps {hyps.shape[0]}")
        state.update(units, hyps)
        state.n_rows += units.shape[0]
        return state.result(), state.error()

    def compute(self, units: np.ndarray, hyps: np.ndarray) -> MeasureResult:
        """Single-shot full-data computation (the non-streaming path)."""
        state = self.new_state(units.shape[1], hyps.shape[1])
        result, _ = self.process_block(state, units, hyps)
        result.converged = True
        return result

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.score_id!r})"


class DeltaWindowMixin:
    """Score-delta convergence: error = |score - mean(last N scores)|.

    The paper uses this empirical criterion for measures without closed-form
    confidence intervals, with a window sized to cover ~2,048 tuples.
    """

    def __init__(self, window: int = 4):
        self._history: list[np.ndarray] = []
        self._window = window

    def push_score(self, scores: np.ndarray) -> None:
        self._history.append(np.asarray(scores, dtype=np.float64))
        if len(self._history) > self._window + 1:
            self._history.pop(0)

    def delta_error(self) -> float:
        if len(self._history) <= self._window:
            return float("inf")
        past = np.mean(self._history[:-1], axis=0)
        return float(np.max(np.abs(self._history[-1] - past)))
