"""Pearson / Spearman correlation measures (independent, per-unit).

Correlation is the paper's canonical independent measure (used by Karpathy
et al. to find interpretable units).  The incremental state keeps running
first and second moments plus the cross-moment matrix, so each block costs
one ``U.T @ H`` -- and early stopping uses Normal-based confidence intervals
from the Fisher transformation (Section 5.2.2).
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import Measure, MeasureState
from repro.measures.stats import fisher_ci_halfwidth


class _CorrState(MeasureState):
    def __init__(self, n_units: int, n_hyps: int, rank_transform: bool):
        super().__init__(n_units, n_hyps)
        self.rank_transform = rank_transform
        self.sum_u = np.zeros(n_units)
        self.sum_uu = np.zeros(n_units)
        self.sum_h = np.zeros(n_hyps)
        self.sum_hh = np.zeros(n_hyps)
        self.sum_uh = np.zeros((n_units, n_hyps))

    @staticmethod
    def _rank(x: np.ndarray) -> np.ndarray:
        """Column-wise average ranks: tied values share the mean of the
        positions they occupy (0-based; Spearman is shift-invariant).

        Vectorized across columns: one argsort per column (batched), then
        tie runs are resolved with prefix/suffix scans instead of a Python
        loop over ``np.unique``.  A run of equal values occupying sorted
        positions ``[s, e]`` gets rank ``(s + e) / 2``; both that midpoint
        and the historical ``cumsum(counts) - (counts + 1) / 2`` form are
        sums of integers halved, exact in float64, so the results are
        bit-identical on ties.
        """
        n, m = x.shape
        if n == 0 or m == 0:
            return np.empty(x.shape, dtype=np.float64)
        # sort along rows of the contiguous transpose -- sorting axis=0 of
        # a C-ordered matrix strides across cache lines and costs ~2x.
        # Any sort order works: every member of a tie run receives the
        # run's midpoint, so intra-run permutation cannot show.
        xt = np.ascontiguousarray(x.T)
        order = np.argsort(xt, axis=1)
        xs = np.take_along_axis(xt, order, axis=1)
        idx = np.arange(n, dtype=np.int64)[None, :]
        # start[i] = first sorted position of i's tie run: the largest
        # boundary position at or before i (a boundary opens a new run)
        new_run = np.empty((m, n), dtype=bool)
        new_run[:, 0] = True
        np.not_equal(xs[:, 1:], xs[:, :-1], out=new_run[:, 1:])
        start = np.maximum.accumulate(np.where(new_run, idx, 0), axis=1)
        # end[i] = last sorted position of the run: smallest closing
        # boundary at or after i, via the reversed scan
        closes = np.empty((m, n), dtype=bool)
        closes[:, -1] = True
        closes[:, :-1] = new_run[:, 1:]
        end = np.minimum.accumulate(
            np.where(closes, idx, n - 1)[:, ::-1], axis=1)[:, ::-1]
        mean_pos = (start + end) / 2.0
        ranks_t = np.empty((m, n), dtype=np.float64)
        np.put_along_axis(ranks_t, order, mean_pos, axis=1)
        # hand back a C-contiguous matrix: downstream reductions must see
        # the same memory layout (and thus the same bits) as before
        return np.ascontiguousarray(ranks_t.T)

    def update(self, units: np.ndarray, hyps: np.ndarray) -> None:
        if self.rank_transform:
            units = self._rank(units)
            hyps = self._rank(hyps)
        self.sum_u += units.sum(axis=0)
        self.sum_uu += (units**2).sum(axis=0)
        self.sum_h += hyps.sum(axis=0)
        self.sum_hh += (hyps**2).sum(axis=0)
        self.sum_uh += units.T @ hyps

    def unit_scores(self) -> np.ndarray:
        return self._memoized("unit_scores", self._unit_scores)

    def _unit_scores(self) -> np.ndarray:
        n = max(self.n_rows, 1)
        cov = self.sum_uh / n - np.outer(self.sum_u / n, self.sum_h / n)
        var_u = np.maximum(self.sum_uu / n - (self.sum_u / n)**2, 0.0)
        var_h = np.maximum(self.sum_hh / n - (self.sum_h / n)**2, 0.0)
        denom = np.sqrt(np.outer(var_u, var_h))
        with np.errstate(divide="ignore", invalid="ignore"):
            r = np.where(denom > 1e-12, cov / denom, 0.0)
        return np.clip(r, -1.0, 1.0)

    def column_errors(self) -> np.ndarray:
        return self._memoized("column_errors", self._column_errors)

    def _column_errors(self) -> np.ndarray:
        if self.n_rows <= 3:
            return np.full(self.n_hyps, np.inf)
        # the widest CI across the column's units bounds its scores' error
        halfwidths = fisher_ci_halfwidth(self.unit_scores(), self.n_rows)
        return halfwidths.max(axis=0)

    def restrict_columns(self, keep: np.ndarray) -> None:
        keep = np.asarray(keep, dtype=int)
        self.sum_h = self.sum_h[keep]
        self.sum_hh = self.sum_hh[keep]
        self.sum_uh = self.sum_uh[:, keep]
        self.n_hyps = int(keep.shape[0])

    def error(self) -> float:
        return float(self.column_errors().max())


class CorrelationScore(Measure):
    """Pearson correlation between each unit and each hypothesis.

    ``CorrelationScore('pearson')`` reproduces the paper's API example.
    """

    joint = False
    supports_partition = True

    def __init__(self, method: str = "pearson"):
        if method not in ("pearson",):
            raise ValueError(
                f"unknown method {method!r}; use SpearmanCorrelationScore "
                "for rank correlation")
        self.method = method
        self.score_id = f"corr:{method}"

    def new_state(self, n_units: int, n_hyps: int) -> _CorrState:
        return _CorrState(n_units, n_hyps, rank_transform=False)


class SpearmanCorrelationScore(Measure):
    """Spearman rank correlation (block-wise rank approximation).

    Ranks are computed within each processed block; for shuffled blocks this
    converges to the full-data rank correlation as block size grows.
    """

    joint = False
    supports_partition = True
    score_id = "corr:spearman"

    def new_state(self, n_units: int, n_hyps: int) -> _CorrState:
        return _CorrState(n_units, n_hyps, rank_transform=True)
