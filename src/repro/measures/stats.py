"""Shared statistical helpers: classification scores, Fisher CIs, silhouette."""

from __future__ import annotations

import numpy as np

Z_95 = 1.959963984540054  # 95% two-sided normal quantile


def confusion_counts(pred: np.ndarray, truth: np.ndarray
                     ) -> tuple[float, float, float, float]:
    """(tp, fp, fn, tn) for binary arrays."""
    pred = pred.astype(bool)
    truth = truth.astype(bool)
    tp = float(np.sum(pred & truth))
    fp = float(np.sum(pred & ~truth))
    fn = float(np.sum(~pred & truth))
    tn = float(np.sum(~pred & ~truth))
    return tp, fp, fn, tn


def precision_score(pred: np.ndarray, truth: np.ndarray) -> float:
    tp, fp, _, _ = confusion_counts(pred, truth)
    return tp / (tp + fp) if tp + fp > 0 else 0.0


def recall_score(pred: np.ndarray, truth: np.ndarray) -> float:
    tp, _, fn, _ = confusion_counts(pred, truth)
    return tp / (tp + fn) if tp + fn > 0 else 0.0


def f1_score(pred: np.ndarray, truth: np.ndarray) -> float:
    tp, fp, fn, _ = confusion_counts(pred, truth)
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom > 0 else 0.0


def f1_from_counts(tp: float, fp: float, fn: float) -> float:
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom > 0 else 0.0


def multiclass_precision(pred: np.ndarray, truth: np.ndarray,
                         n_classes: int) -> np.ndarray:
    """Per-class precision (Figure 11's score); 0 for unpredicted classes."""
    out = np.zeros(n_classes)
    for cls in range(n_classes):
        predicted = pred == cls
        if predicted.any():
            out[cls] = float(np.mean(truth[predicted] == cls))
    return out


def fisher_ci_halfwidth(r: np.ndarray, n: int, z: float = Z_95) -> np.ndarray:
    """Half-width of the CI for Pearson correlations via Fisher transform.

    ``atanh(r)`` is approximately normal with sd ``1/sqrt(n-3)``; the bound
    is mapped back to correlation space, giving tighter widths for |r|
    near 1 -- the property the early-stopping optimizer exploits.
    """
    if n <= 3:
        return np.full_like(np.asarray(r, dtype=np.float64), np.inf)
    r = np.clip(np.asarray(r, dtype=np.float64), -0.999999, 0.999999)
    se = 1.0 / np.sqrt(n - 3)
    z_r = np.arctanh(r)
    upper = np.tanh(z_r + z * se)
    lower = np.tanh(z_r - z * se)
    return np.maximum(upper - r, r - lower)


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient (Rousseeuw 1987), euclidean distance.

    Used by the verification procedure (Section 4.4) to quantify how well
    baseline vs. treatment activation deltas separate.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if unique.shape[0] < 2:
        raise ValueError("silhouette requires at least two clusters")
    if points.ndim == 1:
        points = points[:, None]
    n = points.shape[0]
    dists = np.sqrt(
        np.maximum(((points[:, None, :] - points[None, :, :])**2).sum(-1), 0.0))
    sil = np.zeros(n)
    for i in range(n):
        own = labels == labels[i]
        n_own = own.sum()
        if n_own <= 1:
            sil[i] = 0.0
            continue
        a = dists[i, own].sum() / (n_own - 1)
        b = np.inf
        for other in unique:
            if other == labels[i]:
                continue
            members = labels == other
            b = min(b, dists[i, members].mean())
        denom = max(a, b)
        sil[i] = (b - a) / denom if denom > 0 else 0.0
    return float(sil.mean())
