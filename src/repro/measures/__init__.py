"""Statistical affinity measures between unit behaviors and hypotheses.

DeepBase natively provides 8 measures plus 2 naive baselines (Section 4.3):

==============================  =========  ==================================
measure                         type       early-stop criterion
==============================  =========  ==================================
CorrelationScore                indep.     Fisher-transform confidence bound
SpearmanCorrelationScore        indep.     Fisher bound on rank statistics
DiffMeansScore                  indep.     standard error of mean difference
MutualInfoScore                 indep.     score-delta window
JaccardScore                    indep.     score-delta window
LogRegressionScore              joint      validation-score window
LinearProbeScore                joint      score-delta window
MultivariateMutualInfoScore     joint      score-delta window
RandomClassScore (baseline)     indep.     immediate
MajorityClassScore (baseline)   indep.     immediate
==============================  =========  ==================================

All measures implement the incremental ``process_block`` API of Section
5.2.2 so the streaming pipeline can terminate the moment scores converge.
"""

from repro.measures.base import Measure, MeasureResult, MeasureState
from repro.measures.baselines import MajorityClassScore, RandomClassScore
from repro.measures.correlation import (CorrelationScore,
                                        SpearmanCorrelationScore)
from repro.measures.jaccard import JaccardScore
from repro.measures.logreg import LogRegressionScore, MulticlassLogRegScore
from repro.measures.means import DiffMeansScore
from repro.measures.mutual_info import (MultivariateMutualInfoScore,
                                        MutualInfoScore)
from repro.measures.probes import LinearProbeScore
from repro.measures.registry import get_measure, list_measures

__all__ = [
    "CorrelationScore",
    "DiffMeansScore",
    "JaccardScore",
    "LinearProbeScore",
    "LogRegressionScore",
    "MajorityClassScore",
    "Measure",
    "MeasureResult",
    "MeasureState",
    "MulticlassLogRegScore",
    "MultivariateMutualInfoScore",
    "MutualInfoScore",
    "RandomClassScore",
    "SpearmanCorrelationScore",
    "get_measure",
    "list_measures",
]
