"""Name-based measure lookup (used by the SQL INSPECT clause)."""

from __future__ import annotations

from collections.abc import Callable

from repro.measures.base import Measure
from repro.measures.baselines import MajorityClassScore, RandomClassScore
from repro.measures.correlation import (CorrelationScore,
                                        SpearmanCorrelationScore)
from repro.measures.jaccard import JaccardScore
from repro.measures.logreg import LogRegressionScore
from repro.measures.means import DiffMeansScore
from repro.measures.mutual_info import (MultivariateMutualInfoScore,
                                        MutualInfoScore)
from repro.measures.probes import LinearProbeScore

_FACTORIES: dict[str, Callable[[], Measure]] = {
    "corr": lambda: CorrelationScore("pearson"),
    "pearson": lambda: CorrelationScore("pearson"),
    "spearman": SpearmanCorrelationScore,
    "diff_means": DiffMeansScore,
    "mutual_info": MutualInfoScore,
    "multi_mi": MultivariateMutualInfoScore,
    "jaccard": JaccardScore,
    "logreg": lambda: LogRegressionScore(regul="L1"),
    "logreg_l1": lambda: LogRegressionScore(regul="L1"),
    "logreg_l2": lambda: LogRegressionScore(regul="L2"),
    "linear_probe": LinearProbeScore,
    "random": RandomClassScore,
    "majority": MajorityClassScore,
}


def list_measures() -> list[str]:
    return sorted(_FACTORIES)


def get_measure(name: str) -> Measure:
    """Instantiate a measure by registry name (case-insensitive)."""
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown measure {name!r}; available: {list_measures()}")
    return _FACTORIES[key]()
