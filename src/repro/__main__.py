"""``python -m repro`` — run INSPECT SQL against a :class:`Session`.

Opens a session (optionally backed by a persistent behavior store) and
executes SQL statements — from ``-c "..."`` or a ``.sql`` file — printing
each result frame.  Because INSPECT statements need live Python objects
(models, datasets, hypothesis functions), a ``--setup`` script registers
them: it is executed with the open ``session`` in its globals::

    # setup.py
    session.register_model("m0", model)
    session.register_dataset("d0", dataset)
    session.register_hypotheses(hyps, name="keywords")

    $ python -m repro --store ./behavior_store --setup setup.py \\
          -c "SELECT S.uid, S.unit_score
              INSPECT U.uid AND H.h USING corr OVER D.seq AS S
              FROM models M, units U, hypotheses H, inputs D
              WHERE M.mid = U.mid ORDER BY S.unit_score DESC LIMIT 10"

Statements are split on ``;``; plain SELECTs (catalog queries) work too.
With a ``--store`` path, re-running the same inspection in a new process
serves behaviors from the store with zero model forward passes.

``python -m repro serve`` starts the multi-tenant inspection server on
the same session setup — many clients share one store, one scheduler
pool and deduplicated forward sweeps (see :mod:`repro.server`)::

    $ python -m repro serve --store ./behavior_store --setup setup.py \\
          --port 8707 --max-concurrent 8
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.session import Session


def _split_statements(text: str) -> list[str]:
    """Split a script on ';' (the mini-SQL grammar has no string-embedded
    semicolons to worry about beyond quoted literals, which we respect)."""
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    for ch in text:
        if ch == "'":
            in_string = not in_string
        if ch == ";" and not in_string:
            statements.append("".join(current))
            current = []
        else:
            current.append(ch)
    statements.append("".join(current))
    return [s.strip() for s in statements if s.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Execute INSPECT SQL statements against a repro "
                    "Session.")
    parser.add_argument("sql_file", nargs="?", metavar="FILE.sql",
                        help="file of ';'-separated SQL statements")
    parser.add_argument("-c", "--command", metavar="SQL", default=None,
                        help="execute this SQL string instead of a file")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="open the session over a persistent "
                             "DiskBehaviorStore at PATH")
    parser.add_argument("--db", metavar="PATH", default=None,
                        help="open the session catalog over a persistent "
                             "paged database at PATH (tables and score "
                             "relations survive across runs)")
    parser.add_argument("--setup", metavar="SCRIPT.py", default=None,
                        help="python script run with the open 'session' in "
                             "globals, to register models/datasets/"
                             "hypotheses")
    parser.add_argument("--max-rows", type=int, default=40,
                        help="rows to print per result frame (default 40)")
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve INSPECT SQL to many concurrent clients over "
                    "HTTP/websocket, multiplexed onto one shared Session.")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="open the session over a persistent "
                             "DiskBehaviorStore at PATH")
    parser.add_argument("--db", metavar="PATH", default=None,
                        help="open the session catalog over a persistent "
                             "paged database at PATH")
    parser.add_argument("--setup", metavar="SCRIPT.py", default=None,
                        help="python script run with the open 'session' in "
                             "globals, to register models/datasets/"
                             "hypotheses")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8707,
                        help="bind port; 0 picks a free one (default 8707)")
    parser.add_argument("--max-concurrent", type=int, default=4,
                        help="queries executing at once across all clients "
                             "(default 4)")
    parser.add_argument("--per-client-inflight", type=int, default=2,
                        help="running queries one client may hold "
                             "(default 2)")
    parser.add_argument("--per-client-queue", type=int, default=8,
                        help="queued queries one client may hold before "
                             "rejection (default 8)")
    parser.add_argument("--no-dedup", action="store_true",
                        help="disable the cross-query forward-sweep "
                             "single-flight gate")
    return parser


def serve_main(argv: list[str]) -> int:
    import asyncio

    from repro.server.app import InspectionServer

    parser = build_serve_parser()
    args = parser.parse_args(argv)

    async def run() -> int:
        with Session(args.store, db_path=args.db) as session:
            if args.setup is not None:
                setup_path = Path(args.setup)
                if not setup_path.exists():
                    parser.error(f"no such setup script: {setup_path}")
                code = compile(setup_path.read_text(encoding="utf-8"),
                               str(setup_path), "exec")
                exec(code, {"session": session, "__name__": "__setup__"})
            server = InspectionServer(
                session, host=args.host, port=args.port,
                max_concurrent=args.max_concurrent,
                per_client_inflight=args.per_client_inflight,
                per_client_queue=args.per_client_queue,
                dedup=not args.no_dedup)
            await server.start()
            print(f"inspection server listening on "
                  f"http://{server.host}:{server.port}", flush=True)
            try:
                while True:           # until interrupted
                    await asyncio.sleep(3600)
            except asyncio.CancelledError:
                pass
            finally:
                await server.stop()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("\nshutting down")
        return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if (args.command is None) == (args.sql_file is None):
        parser.error("provide exactly one of FILE.sql or -c SQL")
    if args.command is not None:
        text = args.command
    else:
        path = Path(args.sql_file)
        if not path.exists():
            parser.error(f"no such SQL file: {path}")
        text = path.read_text(encoding="utf-8")
    statements = _split_statements(text)
    if not statements:
        parser.error("no SQL statements to execute")

    with Session(args.store, db_path=args.db) as session:
        if args.setup is not None:
            setup_path = Path(args.setup)
            if not setup_path.exists():
                parser.error(f"no such setup script: {setup_path}")
            code = compile(setup_path.read_text(encoding="utf-8"),
                           str(setup_path), "exec")
            exec(code, {"session": session, "__name__": "__setup__"})
        for i, statement in enumerate(statements):
            if len(statements) > 1:
                print(f"-- statement {i + 1}/{len(statements)}")
            try:
                frame = session.sql(statement)
            except Exception as exc:  # surface SQL errors, keep the trace out
                print(f"error: {exc}", file=sys.stderr)
                return 1
            print(frame.to_string(max_rows=args.max_rows))
            print(f"({len(frame)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
