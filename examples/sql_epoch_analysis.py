"""What does the model learn across training epochs? (Appendix D, Fig 14).

Captures model snapshots after chosen epochs, registers every snapshot
with one :class:`repro.Session`, and inspects them all in a single fluent
query — the logistic-regression measure shows that fundamental SQL
clauses are learned early in training.  One plan inspects every snapshot;
the session's scheduler pool runs the per-snapshot score tasks in
parallel.

Run:  python examples/sql_epoch_analysis.py
"""

from repro import Session
from repro.data import generate_sql_workload
from repro.hypotheses import grammar_hypotheses
from repro.measures import LogRegressionScore
from repro.nn import CharLSTMModel, TrainConfig, train_model
from repro.nn.serialize import clone_model
from repro.util.frame import Frame
from repro.util.rng import new_rng

SNAPSHOT_EPOCHS = (0, 1, 4)
TRACKED = ("time:select_clause", "time:where_clause", "time:order_clause",
           "time:table_name", "time:column_ref")


def main() -> None:
    workload = generate_sql_workload("default", n_queries=60, window=30,
                                     stride=5, seed=2)
    model = CharLSTMModel(len(workload.vocab), n_units=48, rng=new_rng(3),
                          model_id="sql_epochs")

    snapshots: dict[int, object] = {}

    def capture(epoch: int, trained) -> None:
        if epoch in SNAPSHOT_EPOCHS:
            snap = clone_model(trained)
            snap.model_id = f"epoch_{epoch}"
            snapshots[epoch] = snap

    # epoch "0" in the paper is the randomly initialized model
    untrained = clone_model(model)
    untrained.model_id = "epoch_init"
    snapshots[-1] = untrained

    train_model(model, workload.dataset.symbols, workload.targets,
                TrainConfig(epochs=max(SNAPSHOT_EPOCHS) + 1, lr=3e-3,
                            patience=99, verbose=True),
                snapshot_hook=capture)

    hypotheses = [h for h in grammar_hypotheses(
        workload.grammar, workload.queries, workload.trees,
        mode="derivation") if h.name in TRACKED]

    measure = LogRegressionScore(regul="L1", epochs=2, cv_folds=3)
    with Session() as session:
        session.register_dataset("d0", workload.dataset)
        session.register_hypotheses(hypotheses)
        for epoch in sorted(snapshots):
            snap = snapshots[epoch]
            session.register_model(snap.model_id, snap, epoch=epoch)

        ordered = [snapshots[e].model_id for e in sorted(snapshots)]
        frame = (session.inspect(ordered, "d0")
                 .using(measure)
                 .hypotheses(hypotheses)
                 .with_config(mode="full", max_records=400)
                 .run())

    label_of = {snap.model_id: "init" if epoch == -1 else epoch
                for epoch, snap in snapshots.items()}
    rows = []
    for epoch in sorted(snapshots):
        snap = snapshots[epoch]
        for row in frame.where(kind="group",
                               model_id=snap.model_id).rows():
            rows.append({"epoch": label_of[snap.model_id],
                         "hypothesis": row["hyp_id"],
                         "F1": round(row["val"], 3)})

    table = Frame.from_records(rows)
    print("\nF1 of grammar-rule hypotheses across training epochs "
          "(Figure 14):")
    print(table.to_string(max_rows=50))

    print("\nExpected shape: F1 rises sharply after the first epoch for "
          "clause-level hypotheses, mirroring the paper's finding that the "
          "model learns fundamental SQL clauses early.")


if __name__ == "__main__":
    main()
