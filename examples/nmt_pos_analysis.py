"""Neural-machine-translation inspection (Section 6.3, Figures 11-12).

1. Trains a seq2seq En->De model on the synthetic tagged corpus.
2. Compares DeepBase's cached-activation POS probe against the Belinkov
   et al. in-place scripts (per-tag precision correlation, Figure 11).
3. Contrasts trained vs. untrained models: correlation histogram
   (Figure 12a) and logistic-regression F1 per hypothesis (Figure 12b).
4. Inspects encoder layers separately with L1 probes (unit-group study).

Run:  python examples/nmt_pos_analysis.py
"""

import numpy as np

from repro import InspectConfig, UnitGroup, inspect
from repro.extract import EncoderActivationExtractor
from repro.hypotheses.annotations import (categorical_hypothesis,
                                          tag_indicator_hypotheses)
from repro.measures import (CorrelationScore, LogRegressionScore,
                            MulticlassLogRegScore)
from repro.nmt import BelinkovProbe, generate_nmt_corpus, train_nmt_model
from repro.nmt.model import translation_accuracy, untrained_nmt_model


def sentence_dataset(corpus):
    """Wrap the token matrix as an inspection dataset (words = symbols)."""
    from repro.data.datasets import Dataset, Vocab
    vocab = Vocab(list("abcdefghijklmnopqrstuvwxyz<>. ;"))
    return Dataset(corpus.src, vocab,
                   meta=[{"source_id": i, "offset": 0}
                         for i in range(corpus.n_sentences)])


def main() -> None:
    corpus = generate_nmt_corpus(n_sentences=500, seed=0)
    print(f"corpus: {corpus.n_sentences} sentences, "
          f"{len(corpus.src_vocab)} source words, "
          f"{len(corpus.tag_names) - 1} POS tags")

    model = train_nmt_model(corpus, n_units=48, epochs=15, seed=0,
                            lr=5e-3, verbose=True)
    control = untrained_nmt_model(corpus, n_units=48)
    print("teacher-forced accuracy: trained="
          f"{translation_accuracy(model, corpus):.3f} untrained="
          f"{translation_accuracy(control, corpus):.3f}")

    dataset = sentence_dataset(corpus)
    extractor = EncoderActivationExtractor(layer=None)  # all 2 x 48 units

    # ---- Figure 11: DeepBase vs Belinkov scripts ----------------------
    print("\n== Figure 11: POS probe, DeepBase vs Belinkov scripts ==")
    pos_hyp = categorical_hypothesis(corpus.tags)
    probe = MulticlassLogRegScore(n_classes=len(corpus.tag_names), epochs=10)
    out = inspect(None, dataset, [probe], [pos_hyp],
                  unit_groups=[UnitGroup(model=model,
                                         unit_ids=np.arange(96),
                                         name="encoder",
                                         extractor=extractor)],
                  config=InspectConfig(mode="full"), as_frame=False)
    deepbase_prec = out[0].result.extras["per_class_precision"]

    belinkov = BelinkovProbe(layer=1, max_epochs=25, patience=8,
                             batch_size=32, lr=0.3).run(model, corpus)
    both = [(corpus.tag_names[i], deepbase_prec[i],
             belinkov.per_tag_precision[i])
            for i in range(1, len(corpus.tag_names))
            if deepbase_prec[i] > 0 or belinkov.per_tag_precision[i] > 0]
    print(f"{'tag':6s} {'DeepBase':>9s} {'Belinkov':>9s}")
    for tag, a, b in both:
        print(f"{tag:6s} {a:9.3f} {b:9.3f}")
    a = np.array([x[1] for x in both])
    b = np.array([x[2] for x in both])
    r = np.corrcoef(a, b)[0, 1] if len(both) > 2 else float("nan")
    print(f"precision correlation between approaches: r={r:.2f} "
          "(paper reports r=0.84)")

    # ---- Figure 12a: correlation histogram ----------------------------
    # open-class tags only: closed-class tags (DT, '.', CC) are word-identity
    # features that even a random encoder reflects -- the paper's own
    # "architecture as a strong prior" caveat (Figure 12b)
    print("\n== Figure 12a: unit correlation histogram (open-class tags) ==")
    open_class = {"NN", "NNS", "JJ", "VBZ", "VBD", "RB", "NNP", "CD"}
    all_tag_hyps = tag_indicator_hypotheses(corpus.tags, corpus.tag_names)
    tag_hyps = [h for h in all_tag_hyps
                if h.name.split(":")[1] in open_class]
    cfg = InspectConfig(mode="full")
    for name, m in (("trained", model), ("untrained", control)):
        frame = inspect(None, dataset, [CorrelationScore()], tag_hyps,
                        unit_groups=[UnitGroup(model=m,
                                               unit_ids=np.arange(96),
                                               name="encoder",
                                               extractor=extractor)],
                        config=cfg)
        best = {}
        for row in frame.rows():
            key = row["h_unit_id"]
            best[key] = max(best.get(key, 0.0), abs(row["val"]))
        values = np.array(list(best.values()))
        hist, edges = np.histogram(values, bins=5, range=(0, 1))
        print(f"{name:10s} |corr| histogram "
              + " ".join(f"[{edges[i]:.1f},{edges[i+1]:.1f}):{hist[i]}"
                         for i in range(5)))

    # ---- Figure 12b: logreg F1 per hypothesis --------------------------
    # the paper's exact hypotheses: Cardinal, Adjective, Adverb, Period,
    # Verb (past tense).  Period is the low-level feature both models learn.
    print("\n== Figure 12b: L2 logistic regression F1 per hypothesis ==")
    interesting = [h for h in all_tag_hyps
                   if h.name.split(":")[1] in ("CD", "JJ", "RB", ".", "VBD")]
    measure = LogRegressionScore(regul="L2", epochs=3, cv_folds=3)
    print(f"{'hypothesis':12s} {'trained':>8s} {'untrained':>10s}")
    scores = {}
    for name, m in (("trained", model), ("untrained", control)):
        frame = inspect(None, dataset, [measure], interesting,
                        unit_groups=[UnitGroup(model=m,
                                               unit_ids=np.arange(96),
                                               name="encoder",
                                               extractor=extractor)],
                        config=cfg)
        scores[name] = {r["hyp_id"]: r["val"]
                        for r in frame.where(kind="group").rows()}
    for hyp in interesting:
        print(f"{hyp.name:12s} {scores['trained'][hyp.name]:8.3f} "
              f"{scores['untrained'][hyp.name]:10.3f}")

    # ---- unit groups: per-layer probes ---------------------------------
    print("\n== per-layer L1 probes (unit-group study) ==")
    l1_measure = LogRegressionScore(regul="L1", strength=1e-3, epochs=8,
                                    lr=0.1, cv_folds=3)
    for layer in (0, 1):
        ext = EncoderActivationExtractor(layer=layer)
        frame = inspect(None, dataset, [l1_measure], interesting,
                        unit_groups=[UnitGroup(model=model,
                                               unit_ids=np.arange(48),
                                               name=f"layer{layer}",
                                               extractor=ext)],
                        config=cfg)
        for hyp in interesting:
            units = frame.where(hyp_id=hyp.name, kind="unit")
            selected = sum(1 for v in units["val"] if abs(v) > 0.05)
            f1 = frame.where(hyp_id=hyp.name, kind="group")["val"][0]
            print(f"layer {layer} {hyp.name:12s} F1={f1:.3f} "
                  f"selected_units={selected}")


if __name__ == "__main__":
    main()
