"""The INSPECT SQL extension (Appendix B): an epoch-sweep query.

Registers models, units, hypotheses and a dataset as catalog relations,
then runs the paper's example query: correlate layer-0 units with keyword
hypotheses, grouped by training epoch, keeping only high-affinity units,
best-first.

The statement compiles into ONE shared inspection plan: the WHERE clause
pushes into columnar catalog scans, all GROUP BY groups share extraction
through the session caches (each snapshot's behavior is extracted once, and
the hypothesis behaviors once in total), and HAVING / ORDER BY / LIMIT run
vectorized over the materialized score relation.  Re-running a query in the
same session costs almost nothing -- that is the interactive loop.

Run:  python examples/inspect_sql_clause.py
"""

import time

from repro.core.pipeline import InspectConfig
from repro.data import generate_sql_workload
from repro.db import Database, run_inspect_sql
from repro.db.inspect_clause import InspectQuery
from repro.extract import RnnActivationExtractor
from repro.hypotheses.library import sql_keyword_hypotheses
from repro.nn import CharLSTMModel, TrainConfig, train_model
from repro.nn.serialize import clone_model
from repro.util.rng import new_rng

SNAPSHOT_EPOCHS = (0, 1, 2, 3)


def main() -> None:
    workload = generate_sql_workload("default", n_queries=40, seed=1)
    model = CharLSTMModel(len(workload.vocab), n_units=24, rng=new_rng(0),
                          model_id="sqlparser")

    snapshots = {}

    def capture(epoch, trained):
        if epoch in SNAPSHOT_EPOCHS:
            snapshots[epoch] = clone_model(trained)

    train_model(model, workload.dataset.symbols, workload.targets,
                TrainConfig(epochs=max(SNAPSHOT_EPOCHS) + 1, lr=3e-3,
                            patience=99),
                snapshot_hook=capture)

    hyps = sql_keyword_hypotheses(("SELECT", "FROM", "WHERE"))

    # --- register everything as catalog relations -----------------------
    db = Database()
    db.create_table("models", ["mid", "epoch"],
                    [[f"sqlparser_e{e}", e] for e in snapshots])
    db.create_table("units", ["mid", "uid", "layer"],
                    [[f"sqlparser_e{e}", u, 0]
                     for e in snapshots for u in range(24)])
    db.create_table("hypotheses", ["h", "name"],
                    [[h.name, "keywords"] for h in hyps])
    db.create_table("inputs", ["did", "seq"], [["d0", "seq"]])

    context = InspectQuery(
        db=db,
        models={f"sqlparser_e{e}": m for e, m in snapshots.items()},
        hypotheses={h.name: h for h in hyps},
        datasets={"d0": workload.dataset},
        extractor=RnnActivationExtractor(),
        config=InspectConfig(mode="full", max_records=300))

    sql = """
        SELECT M.epoch, S.uid, S.hid, S.unit_score
        INSPECT U.uid AND H.h USING corr OVER D.seq AS S
        FROM models M, units U, hypotheses H, inputs D
        WHERE M.mid = U.mid AND U.layer = 0 AND H.name = 'keywords'
        GROUP BY M.epoch
        HAVING S.unit_score > 0.25
        ORDER BY S.unit_score DESC
        LIMIT 15
    """
    print("running:\n" + sql)
    t0 = time.perf_counter()
    frame = run_inspect_sql(context, sql)
    cold = time.perf_counter() - t0
    print(f"\ntop {len(frame)} high-affinity (epoch, unit, hypothesis) rows:")
    print(frame.to_string(max_rows=15))

    stats = context.unit_cache.stats()
    print(f"\nshared plan: {stats['extractions']} unit extractions for "
          f"{len(snapshots)} snapshots across {len(snapshots)} GROUP BY "
          f"groups (once per model), "
          f"{context.hyp_cache.stats()['extractions']} hypothesis "
          f"extractions for {len(hyps)} hypotheses (once each).")

    t0 = time.perf_counter()
    run_inspect_sql(context, sql)
    warm = time.perf_counter() - t0
    print(f"cold query: {cold:.3f}s; same query warm in this session: "
          f"{warm:.3f}s (caches serve every behavior).")

    print("\nLater epochs should expose more high-scoring keyword "
          "detectors than epoch 0, since the model learns clause "
          "structure during training.")
    context.close()


if __name__ == "__main__":
    main()
