"""The INSPECT SQL extension (Appendix B).

Registers models, units, hypotheses and a dataset as catalog relations,
then runs the paper's example query: correlate layer-0 units with keyword
hypotheses, grouped by training epoch, keeping only high-affinity units.

Run:  python examples/inspect_sql_clause.py
"""

from repro.core.pipeline import InspectConfig
from repro.data import generate_sql_workload
from repro.db import Database, run_inspect_sql
from repro.db.inspect_clause import InspectQuery
from repro.extract import RnnActivationExtractor
from repro.hypotheses.library import sql_keyword_hypotheses
from repro.nn import CharLSTMModel, TrainConfig, train_model
from repro.nn.serialize import clone_model
from repro.util.rng import new_rng


def main() -> None:
    workload = generate_sql_workload("default", n_queries=40, seed=1)
    model = CharLSTMModel(len(workload.vocab), n_units=24, rng=new_rng(0),
                          model_id="sqlparser")

    snapshots = {}

    def capture(epoch, trained):
        if epoch in (0, 3):
            snapshots[epoch] = clone_model(trained)

    train_model(model, workload.dataset.symbols, workload.targets,
                TrainConfig(epochs=4, lr=3e-3, patience=99),
                snapshot_hook=capture)

    hyps = sql_keyword_hypotheses(("SELECT", "FROM", "WHERE"))

    # --- register everything as catalog relations -----------------------
    db = Database()
    db.create_table("models", ["mid", "epoch"],
                    [[f"sqlparser_e{e}", e] for e in snapshots])
    db.create_table("units", ["mid", "uid", "layer"],
                    [[f"sqlparser_e{e}", u, 0]
                     for e in snapshots for u in range(24)])
    db.create_table("hypotheses", ["h", "name"],
                    [[h.name, "keywords"] for h in hyps])
    db.create_table("inputs", ["did", "seq"], [["d0", "seq"]])

    context = InspectQuery(
        db=db,
        models={f"sqlparser_e{e}": m for e, m in snapshots.items()},
        hypotheses={h.name: h for h in hyps},
        datasets={"d0": workload.dataset},
        extractor=RnnActivationExtractor(),
        config=InspectConfig(mode="full", max_records=300))

    sql = """
        SELECT M.epoch, S.uid, S.hid, S.unit_score
        INSPECT U.uid AND H.h USING corr OVER D.seq AS S
        FROM models M, units U, hypotheses H, inputs D
        WHERE M.mid = U.mid AND U.layer = 0 AND H.name = 'keywords'
        GROUP BY M.epoch
        HAVING S.unit_score > 0.25
    """
    print("running:\n" + sql)
    frame = run_inspect_sql(context, sql)
    print(f"\n{len(frame)} high-affinity (epoch, unit, hypothesis) rows:")
    print(frame.sort("S.unit_score", reverse=True).to_string(max_rows=15))
    print("\nEpoch 3 should expose more high-scoring keyword detectors than "
          "epoch 0, since the model learns clause structure during training.")


if __name__ == "__main__":
    main()
