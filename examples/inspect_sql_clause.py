"""The INSPECT SQL extension (Appendix B): an epoch-sweep query.

Registers model snapshots, hypotheses and a dataset with one
:class:`repro.Session` (each ``register_*`` call inserts the catalog rows
for you), then runs the paper's example query: correlate units with
keyword hypotheses, grouped by training epoch, keeping only high-affinity
units, best-first.

The statement compiles into ONE shared inspection plan: the WHERE clause
pushes into columnar catalog scans, all GROUP BY groups share extraction
through the session caches (each snapshot's behavior is extracted once,
and the hypothesis behaviors once in total), and HAVING / ORDER BY /
LIMIT run vectorized over the materialized score relation.  Re-running a
query in the same session costs almost nothing -- that is the interactive
loop.

Run:  python examples/inspect_sql_clause.py
"""

import time

from repro import InspectConfig, Session
from repro.data import generate_sql_workload
from repro.hypotheses.library import sql_keyword_hypotheses
from repro.nn import CharLSTMModel, TrainConfig, train_model
from repro.nn.serialize import clone_model
from repro.util.rng import new_rng

SNAPSHOT_EPOCHS = (0, 1, 2, 3)


def main() -> None:
    workload = generate_sql_workload("default", n_queries=40, seed=1)
    model = CharLSTMModel(len(workload.vocab), n_units=24, rng=new_rng(0),
                          model_id="sqlparser")

    snapshots = {}

    def capture(epoch, trained):
        if epoch in SNAPSHOT_EPOCHS:
            snapshots[epoch] = clone_model(trained)

    train_model(model, workload.dataset.symbols, workload.targets,
                TrainConfig(epochs=max(SNAPSHOT_EPOCHS) + 1, lr=3e-3,
                            patience=99),
                snapshot_hook=capture)

    hyps = sql_keyword_hypotheses(("SELECT", "FROM", "WHERE"))

    # --- one session; registration fills the catalog relations ----------
    with Session(config=InspectConfig(mode="full",
                                      max_records=300)) as session:
        for epoch, snap in snapshots.items():
            session.register_model(f"sqlparser_e{epoch}", snap, epoch=epoch)
        session.register_hypotheses(hyps, name="keywords")
        session.register_dataset("d0", workload.dataset)

        sql = """
            SELECT M.epoch, S.uid, S.hid, S.unit_score
            INSPECT U.uid AND H.h USING corr OVER D.seq AS S
            FROM models M, units U, hypotheses H, inputs D
            WHERE M.mid = U.mid AND U.layer = 0 AND H.name = 'keywords'
            GROUP BY M.epoch
            HAVING S.unit_score > 0.25
            ORDER BY S.unit_score DESC
            LIMIT 15
        """
        print("running:\n" + sql)
        t0 = time.perf_counter()
        frame = session.sql(sql)
        cold = time.perf_counter() - t0
        print(f"\ntop {len(frame)} high-affinity (epoch, unit, hypothesis) "
              "rows:")
        print(frame.to_string(max_rows=15))

        stats = session.unit_cache.stats()
        print(f"\nshared plan: {stats['extractions']} unit extractions for "
              f"{len(snapshots)} snapshots across {len(snapshots)} GROUP BY "
              "groups (once per model), "
              f"{session.hyp_cache.stats()['extractions']} hypothesis "
              f"extractions for {len(hyps)} hypotheses (once each).")

        t0 = time.perf_counter()
        session.sql(sql)
        warm = time.perf_counter() - t0
        print(f"cold query: {cold:.3f}s; same query warm in this session: "
              f"{warm:.3f}s (caches serve every behavior).")

        print("\nLater epochs should expose more high-scoring keyword "
              "detectors than epoch 0, since the model learns clause "
              "structure during training.")


if __name__ == "__main__":
    main()
