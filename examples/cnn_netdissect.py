"""CNN inspection and NetDissect comparison (Appendix E, Figure 15).

Trains a small CNN on synthetic annotated images, runs NetDissect's IoU
dissection and DeepBase's Jaccard measure over the same channels, and
reports the agreement between the two systems.

Run:  python examples/cnn_netdissect.py
"""

import numpy as np

from repro import InspectConfig, UnitGroup, inspect
from repro.hypotheses.annotations import mask_hypotheses
from repro.measures import JaccardScore
from repro.vision import (generate_shape_dataset, netdissect_scores,
                          train_shape_cnn)
from repro.vision.netdissect import CnnPixelExtractor
from repro.vision.shapes import CONCEPTS


def image_dataset(dataset):
    """Images as records: symbol = pixel, record carries the image index.

    Symbol values are opaque to the pipeline (behaviors come from the CNN
    extractor and the precomputed mask hypotheses); the record's first
    column carries the image index the extractor resolves.
    """
    from repro.data.datasets import Dataset, Vocab
    n_pixels = dataset.image_size ** 2
    symbols = np.repeat(np.arange(dataset.n_images)[:, None], n_pixels,
                        axis=1)
    return Dataset(symbols, Vocab(["x"]),
                   meta=[{"image": i} for i in range(dataset.n_images)])


def main() -> None:
    shapes = generate_shape_dataset(n_images=300, image_size=20, seed=0)
    model = train_shape_cnn(shapes, epochs=10, lr=4e-3, seed=0, verbose=True)
    _, acc = model.evaluate(shapes.images, shapes.labels)
    print(f"classifier accuracy: {acc:.3f} (4 classes)")

    quantile = 0.97

    print("\n== NetDissect ==")
    nd = netdissect_scores(model, shapes, quantile=quantile, seed=1)
    for concept in CONCEPTS:
        best = int(np.argmax(nd[concept]))
        print(f"{concept:9s} best channel {best:2d} "
              f"IoU={nd[concept][best]:.3f}")

    print("\n== DeepBase (Jaccard measure over the same channels) ==")
    ds = image_dataset(shapes)
    # records carry image indices; the extractor resolves them to pixels
    records_ds = ds
    extractor = CnnPixelExtractor(shapes.images)
    hyps = mask_hypotheses(shapes.flat_masks())
    # calibrate the activation threshold over most of the pixel stream so
    # it matches NetDissect's full-sample quantile estimate
    measure = JaccardScore(quantile=quantile,
                           calibration_rows=shapes.n_images * 300)
    frame = inspect(None, records_ds, [measure], hyps,
                    unit_groups=[UnitGroup(model=model,
                                           unit_ids=np.arange(model.n_units),
                                           name="conv2",
                                           extractor=extractor)],
                    config=InspectConfig(mode="full"))

    deepbase = {}
    for concept in CONCEPTS:
        sub = frame.where(hyp_id=f"mask:{concept}")
        scores = np.zeros(model.n_units)
        for row in sub.rows():
            scores[row["h_unit_id"]] = row["val"]
        deepbase[concept] = scores
        best = int(np.argmax(scores))
        print(f"{concept:9s} best channel {best:2d} "
              f"IoU={scores[best]:.3f}")

    print("\n== Figure 15: score agreement ==")
    nd_all = np.concatenate([nd[c] for c in CONCEPTS])
    db_all = np.concatenate([deepbase[c] for c in CONCEPTS])
    r = np.corrcoef(nd_all, db_all)[0, 1]
    print("Pearson correlation across all (channel, concept) pairs: "
          f"r={r:.3f}")
    print("The paper reports strong but imperfect agreement, attributing "
          "differences to non-deterministic pipeline components (here: the "
          "sampled quantile threshold).")


if __name__ == "__main__":
    main()
