"""The multi-tenant inspection server: two clients share one forward pass.

Starts the asyncio SQL-over-HTTP server on a background thread around a
shared :class:`repro.Session`, then has two tenants fire the SAME
``INSPECT`` statement concurrently.  The server's sweep registry
single-flights the cold extraction: one client leads, the other joins
the same sweep and reads the results out of the shared session caches,
so the model runs exactly once (asserted with a counting wrapper).

The second half streams the query over a websocket: the client receives
one partial score frame per processed block, and the final frame is
bit-identical to the one-shot HTTP answer.

Run:  python examples/serve_and_query.py
"""

import threading

from repro import InspectConfig, Session
from repro.data import generate_sql_workload
from repro.hypotheses.library import sql_keyword_hypotheses
from repro.nn import CharLSTMModel, TrainConfig, train_model
from repro.server import InspectClient, serve_in_thread
from repro.util.rng import new_rng
from repro.util.testing import CountingForwardModel

SQL = """
    SELECT S.uid AS uid, S.hid AS hid, S.unit_score AS unit_score
    INSPECT U.uid AND H.h USING corr OVER D.seq AS S
    FROM models M, units U, hypotheses H, inputs D
    WHERE M.mid = U.mid
    ORDER BY S.unit_score DESC
    LIMIT 5
"""


def main() -> None:
    workload = generate_sql_workload("default", n_queries=30, seed=7)
    model = CharLSTMModel(len(workload.vocab), n_units=16, rng=new_rng(0),
                          model_id="sqlparser")
    train_model(model, workload.dataset.symbols, workload.targets,
                TrainConfig(epochs=2, lr=3e-3, patience=99))
    config = InspectConfig(max_records=60, block_size=16, early_stop=False)
    hyps = sql_keyword_hypotheses(("SELECT", "FROM", "WHERE"))

    def registered_session(wrapped):
        session = Session(config=config)
        session.register_model("m0", wrapped)
        session.register_dataset("d0", workload.dataset)
        session.register_hypotheses(hyps, name="kw")
        return session

    # solo baseline: the forward-pass cost of exactly one extraction
    solo = CountingForwardModel(model)
    with registered_session(solo) as solo_session:
        solo_session.sql(SQL)
    print(f"solo session: {solo.forward_calls} forward passes (one sweep)")

    counting = CountingForwardModel(model)
    session = registered_session(counting)

    with session, serve_in_thread(session) as server:
        print(f"serving on 127.0.0.1:{server.port}")

        # --- two tenants, one identical cold query, ONE extraction ------
        tenants = [InspectClient("127.0.0.1", server.port,
                                 client_id=f"tenant-{i}") for i in range(2)]
        frames = [None, None]

        def run(i):
            frames[i] = tenants[i].query(SQL)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert frames[0] == frames[1]
        assert counting.forward_calls == solo.forward_calls, \
            "two concurrent tenants must share ONE extraction sweep"
        calls_after_pair = counting.forward_calls
        dedup = tenants[0].stats()["dedup"]
        print(f"two tenants, ONE shared sweep "
              f"({counting.forward_calls} per-block forward passes; "
              f"registry: {dedup['leads']} led, {dedup['joins']} joined, "
              f"{dedup['waits']} waited)")
        print("\ntop units, tenant 0's copy:")
        for row in frames[0].rows():
            print(f"  unit {row['uid']:>3}  {row['hid']:<8} "
                  f"score={row['unit_score']:.4f}")

        # --- the same query streamed over a websocket --------------------
        streamed = tenants[0].stream(SQL).results()
        partials = len(streamed) - 1
        final = streamed[-1][1]
        assert final == frames[0], "final frame must match the HTTP answer"
        assert counting.forward_calls == calls_after_pair, \
            "warm replay must not touch the model"
        print(f"\nstreamed: {partials} partial frame(s) + 1 final, "
              f"final bit-identical to the one-shot answer, "
              f"0 new forward passes")


if __name__ == "__main__":
    main()
