"""Perturbation-based verification (Section 4.4 / Appendix C).

Trains the Appendix C specialized model (a 16-unit RNN whose first units
are forced, via an auxiliary loss, to track a parentheses-detector
hypothesis), selects high-affinity units with DeepBase, and verifies them
with baseline/treatment perturbations -- including the paper's negative
results: hypotheses too close to the model task fail verification.

Run:  python examples/verification.py
"""

import numpy as np

from repro.data import generate_parens_workload
from repro.extract import RnnActivationExtractor
from repro.extract.base import HypothesisExtractor
from repro.hypotheses import (CharSetHypothesis, NestingDepthHypothesis)
from repro.hypotheses.library import CurrentCharHypothesis
from repro.measures import LogRegressionScore
from repro.nn import SpecializedLSTMModel, TrainConfig, train_model
from repro.util.rng import new_rng
from repro.verify import verify_units


def main() -> None:
    workload = generate_parens_workload(n_strings=150, window=16, stride=2,
                                        seed=0)
    hypothesis = CharSetHypothesis("parens", "()")
    aux = hypothesis.extract(workload.dataset)

    model = SpecializedLSTMModel(len(workload.vocab), 16, new_rng(1),
                                 specialized_units=[0, 1, 2, 3], weight=0.6)
    train_model(model, workload.dataset.symbols, workload.targets,
                TrainConfig(epochs=20, lr=5e-3, patience=25),
                aux_behavior=aux)

    # --- select high-affinity units with an L1 probe --------------------
    units = RnnActivationExtractor().extract(model, workload.dataset.symbols)
    hyp_m = HypothesisExtractor([hypothesis]).extract(workload.dataset)
    probe = LogRegressionScore(regul="L1", strength=5e-3, epochs=3,
                               cv_folds=3)
    result = probe.compute(units, hyp_m)
    coefs = np.abs(result.unit_scores[:, 0])
    selected = np.argsort(-coefs)[:4]
    rng = new_rng(2)
    random_units = rng.choice(16, size=4, replace=False)
    print(f"L1 probe F1={result.group_scores[0]:.3f}; "
          f"selected units {selected.tolist()} "
          "(specialized were [0, 1, 2, 3])")

    # --- verification: selected vs random units -------------------------
    print("\n== verification: parentheses-detector hypothesis ==")
    spec = verify_units(model, workload.dataset, hypothesis, selected,
                        n_sites=60, rng=new_rng(3))
    rand = verify_units(model, workload.dataset, hypothesis, random_units,
                        n_sites=60, rng=new_rng(3))
    print(f"silhouette selected={spec.silhouette:.3f}  "
          f"random={rand.silhouette:.3f}")
    print("selected units separate baseline/treatment perturbations; "
          "random units do so far less (Figure 13).")

    # --- negative control: hypothesis ~ model task ----------------------
    print("\n== negative control: nesting-depth hypothesis ==")
    depth_hyp = NestingDepthHypothesis()
    try:
        depth = verify_units(model, workload.dataset, depth_hyp, selected,
                             n_sites=60, positions="any", rng=new_rng(4))
        print(f"silhouette={depth.silhouette:.3f} -- near the random level: "
              "the hypothesis is nearly the model task itself, so "
              "verification cannot distinguish the selected units "
              "(the paper's Appendix C negative result)")
    except ValueError as exc:
        print(f"verification not applicable: {exc}")

    # --- ambiguous hypothesis: current char is '4' ----------------------
    print("\n== ambiguous hypothesis: detects the character '4' ==")
    char4 = CurrentCharHypothesis("4")
    try:
        amb = verify_units(model, workload.dataset, char4, selected,
                           n_sites=60, rng=new_rng(5))
        print(f"silhouette={amb.silhouette:.3f} -- low separation suggests "
              "the units track parentheses rather than the literal '4', "
              "matching the paper's ambiguity discussion")
    except ValueError as exc:
        print(f"verification not applicable: {exc}")


if __name__ == "__main__":
    main()
