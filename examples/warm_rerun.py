"""Cross-session warm rerun through the persistent behavior store.

Run this script twice::

    python examples/warm_rerun.py           # cold: extracts + persists
    python examples/warm_rerun.py           # warm: zero forward passes

The first invocation trains the SQL model deterministically and inspects
it through a :class:`repro.Session` opened over ``./behavior_store`` —
the session caches write every extracted behavior through to memory-mapped
shards, committed once per run.  The second invocation — a completely
separate process — re-derives the same model fingerprint and dataset hash,
finds the raw activations already on disk, and serves the whole inspection
from mmap reads: the extraction counters stay at zero and the scores are
bit-identical.  ``--fresh`` wipes the store first; ``--gc BYTES`` applies
a byte budget afterwards.

``--scheduler processes`` runs the cold extraction shard-parallel across
cores: the coordinator describes picklable shard tasks, pool workers
write activation shards straight into ``./behavior_store``, and the
session adopts them into the manifest in its single commit — same store
layout, same scores, warm reruns unchanged.  The default (``auto``)
lets :func:`repro.core.pipeline.default_scheduler` decide: processes on
a multi-core host because this session is store-backed, serial on one
core.
"""

import argparse
import shutil
import time
from pathlib import Path

from repro import Session
from repro.data import generate_sql_workload
from repro.hypotheses import grammar_hypotheses
from repro.hypotheses.library import sql_keyword_hypotheses
from repro.measures import CorrelationScore, DiffMeansScore
from repro.nn import CharLSTMModel, TrainConfig, train_model
from repro.util.rng import new_rng

STORE_DIR = Path("behavior_store")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", action="store_true",
                        help="delete the store before running")
    parser.add_argument("--gc", type=int, metavar="BYTES", default=None,
                        help="apply a byte budget to the store afterwards")
    parser.add_argument("--scheduler", default="auto",
                        choices=["auto", "serial", "threads", "processes"],
                        help="execution scheduler (auto: serial on one "
                             "core, processes on a multi-core host)")
    args = parser.parse_args()
    if args.fresh and STORE_DIR.exists():
        shutil.rmtree(STORE_DIR)

    print("== deterministic workload + model (same in every session) ==")
    workload = generate_sql_workload("default", n_queries=60, window=30,
                                     stride=5, seed=0)
    model = CharLSTMModel(len(workload.vocab), n_units=48, rng=new_rng(1),
                          model_id="sql_char_model")
    train_model(model, workload.dataset.symbols, workload.targets,
                TrainConfig(epochs=4, batch_size=128, lr=3e-3, patience=9))
    hypotheses = grammar_hypotheses(workload.grammar, workload.queries,
                                    workload.trees, mode="derivation")
    hypotheses += sql_keyword_hypotheses()

    print(f"\n== Session over the persistent store at ./{STORE_DIR} ==")
    scheduler = None if args.scheduler == "auto" else args.scheduler
    with Session(STORE_DIR, scheduler=scheduler) as session:
        print(f"scheduler: {session.scheduler.name}")
        was_empty = not session.store.keys()
        session.register_model("sql_char_model", model)
        session.register_dataset("d0", workload.dataset)
        session.register_hypotheses(hypotheses)

        t0 = time.perf_counter()
        frame = (session.inspect("sql_char_model", "d0")
                 .using(CorrelationScore("pearson"), DiffMeansScore())
                 .hypotheses(hypotheses)
                 .with_config(mode="streaming", early_stop=False, seed=0)
                 .run())
        elapsed = time.perf_counter() - t0

        label = "COLD (store was empty)" if was_empty else "WARM (from mmap)"
        print(f"{label}: {elapsed:.2f}s for {len(frame)} result rows")
        for name, stats in session.stats().items():
            print(f"{name:16s}: {stats}")
        if not was_empty:
            assert session.unit_cache.stats()["extractions"] == 0, \
                "warm session must not run the model"
            assert session.hyp_cache.stats()["extractions"] == 0, \
                "warm session must not re-evaluate hypotheses"
            print("zero extractor invocations: the model never ran "
                  "in this process")
        else:
            # the whole run landed in one manifest commit
            assert session.store.stats()["commits"] == 1
            print("run this script again: the next process serves "
                  "everything from the store")

        if args.gc is not None:
            report = session.store.gc(max_bytes=args.gc)
            print(f"gc({args.gc}): {report}; now {session.store.stats()}")


if __name__ == "__main__":
    main()
