"""Quickstart: the paper's Section 4.1 walkthrough on the SQL model.

Trains the SQL auto-completion LSTM, prints a Figure 1-style activation
trace, then opens a :class:`repro.Session` — the connection-style entry
point — and runs the two analyses from the paper's API example through
its fluent query builder:

1. Pearson correlation between every unit and grammar-rule hypotheses.
2. Logistic-regression (L1) F1 predicting hypothesis behaviors from all
   unit activations.

The session owns the behavior caches, so the warm re-run at the end costs
no forward passes; the progressive section streams partial scores block
by block, like an online aggregation query.

Run:  python examples/quickstart.py
"""

import time

from repro import Session
from repro.data import generate_sql_workload
from repro.hypotheses import grammar_hypotheses
from repro.hypotheses.library import sql_keyword_hypotheses
from repro.measures import CorrelationScore, LogRegressionScore
from repro.nn import CharLSTMModel, TrainConfig, train_model
from repro.util.rng import new_rng


def ascii_trace(model, dataset, unit_ids, record: int = 0) -> None:
    """A terminal rendition of Figure 1: activations over one record."""
    states = model.hidden_states(dataset.symbols[record:record + 1])[0]
    text = dataset.record_text(record)
    print(f"\ninput: {text}")
    for unit in unit_ids:
        row = []
        for value in states[:, unit]:
            level = int((value + 1) / 2 * 4.999)  # map [-1,1] to 5 glyphs
            row.append(" .:*#"[level])
        print(f"unit {unit:3d} |{''.join(row)}|")


def main() -> None:
    print("== 1. generate the SQL workload (PCFG sampling + windows) ==")
    workload = generate_sql_workload("default", n_queries=80, window=30,
                                     stride=5, seed=0)
    print(f"{len(workload.queries)} queries -> "
          f"{workload.dataset.n_records} window records, "
          f"vocab size {len(workload.vocab)}")

    print("\n== 2. train the auto-completion model ==")
    model = CharLSTMModel(len(workload.vocab), n_units=64, rng=new_rng(1),
                          model_id="sql_char_model")
    result = train_model(model, workload.dataset.symbols, workload.targets,
                         TrainConfig(epochs=8, batch_size=128, lr=3e-3,
                                     patience=4, verbose=True))
    print(f"best validation accuracy: {result.best_val_acc:.3f}")

    ascii_trace(model, workload.dataset, unit_ids=[12, 30, 47, 63],
                record=min(10, workload.dataset.n_records - 1))

    print("\n== 3. connect a Session and inspect declaratively ==")
    hypotheses = grammar_hypotheses(workload.grammar, workload.queries,
                                    workload.trees, mode="derivation")
    hypotheses += sql_keyword_hypotheses()
    print(f"{len(hypotheses)} hypothesis functions")

    scores = [CorrelationScore("pearson"),
              LogRegressionScore(regul="L1", score="F1", epochs=2,
                                 cv_folds=3)]
    with Session() as session:
        session.register_model("sql_char_model", model)
        session.register_dataset("d0", workload.dataset)
        session.register_hypotheses(hypotheses)

        def query():
            return (session.inspect("sql_char_model", "d0")
                    .using(scores)
                    .hypotheses(hypotheses)
                    .with_config(mode="streaming", block_size=256))

        t0 = time.perf_counter()
        frame = query().run()
        cold_s = time.perf_counter() - t0
        print(f"result frame: {frame}")

        print("\ntop units correlated with the SELECT keyword "
              "(builder top_k):")
        top = (session.inspect("sql_char_model", "d0")
               .using("corr").hypotheses("kw:SELECT")
               .top_k(5).run())
        print(top.where(kind="unit").select(
            "h_unit_id", "val").to_string())

        print("\nmost predictable hypotheses (logreg F1, group scores):")
        groups = frame.where(score_id="logreg:l1", kind="group")
        print(groups.sort("val", reverse=True).head(8).select(
            "hyp_id", "val").to_string())

        print("\n== 4. progressive mode: scores refine as blocks arrive ==")
        for partial in (session.inspect("sql_char_model", "d0")
                        .using("corr").hypotheses(hypotheses)
                        .with_config(mode="streaming", block_size=128)
                        .stream()):
            converged = sum(partial["converged"]) / max(len(partial), 1)
            print(f"  {partial.records_processed:5d} records processed, "
                  f"{converged:4.0%} of rows converged")
        print("(early stopping freezes converged hypothesis columns; the "
              "stream ends when every score has converged)")

        print("\n== 5. interactive re-run: the session caches are warm ==")
        t0 = time.perf_counter()
        query().run()
        warm_s = time.perf_counter() - t0
        print(f"cold run {cold_s:.2f}s -> warm run {warm_s:.2f}s "
              f"({cold_s / max(warm_s, 1e-9):.1f}x)")
        for name, stats in session.stats().items():
            print(f"{name}: {stats}")


if __name__ == "__main__":
    main()
