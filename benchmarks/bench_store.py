"""Persistent-store scaling: cold vs. disk-warm vs. memory-warm, plus
fused vs. unfused multi-transform extraction.

Three tiers of the same inspection workload:

* ``cold``        -- empty store, empty memory tiers: every behavior is
  extracted from the model and written through to mmap'd shards.
* ``disk_warm``   -- a *fresh process* configuration: new store handle,
  new (empty) memory caches over the same directory.  Zero forward passes;
  behaviors stream back out of the memory-mapped shards.
* ``memory_warm`` -- the same session runs again with its caches intact.

The fusion benchmark runs K extractors that differ only by behavior
transform over one model: the raw-sweep engine runs one forward pass and
derives each transform as a read-time view (``fused``), versus one
inspection per transform the way the pre-store engine had to (``unfused``).

Results are printed and written to ``BENCH_store.json`` so CI can smoke
check that disk-warm reruns beat cold extraction >= 5x and fusion actually
collapses the forward passes.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro import (DiskBehaviorStore, HypothesisCache, InspectConfig,
                   UnitBehaviorCache, UnitGroup, inspect)
from repro.extract import RnnActivationExtractor
from repro.measures import CorrelationScore, DiffMeansScore
from repro.util.testing import CountingForwardModel
from benchmarks.conftest import SETTING, print_table

OUTPUT = "BENCH_store.json"

#: the acceptance gate: serving behaviors from mmap'd shards must beat
#: re-running the model clearly, even on shared CI runners
DISK_WARM_WIN = 5.0
#: fused multi-transform extraction must beat one-run-per-transform
FUSED_WIN = 1.5
#: generous slack for shared CI runners
NOT_SLOWER = 1.35

TRANSFORMS = ("activation", "abs", "gradient")


def _store_config(root) -> InspectConfig:
    return InspectConfig(mode="streaming", early_stop=False, block_size=128,
                         seed=0, store=DiskBehaviorStore(root))


def _run(model, dataset, hyps, config) -> float:
    t0 = time.perf_counter()
    inspect([model], dataset, [CorrelationScore(), DiffMeansScore()], hyps,
            config=config)
    return time.perf_counter() - t0


def test_store_tiers_report(benchmark, bench_model, bench_workload,
                            bench_hypotheses, tmp_path):
    def _report():
        dataset = bench_workload.dataset
        hyps = bench_hypotheses
        root = tmp_path / "behavior_store"

        timings: dict[str, float] = {}
        timings["cold"] = _run(bench_model, dataset, hyps,
                               _store_config(root))
        # fresh process configuration: new store handle, new memory tiers
        store = DiskBehaviorStore(root)
        unit_cache = UnitBehaviorCache(store=store)
        hyp_cache = HypothesisCache(store=store)
        warm_cfg = InspectConfig(mode="streaming", early_stop=False,
                                 block_size=128, seed=0, store=store,
                                 unit_cache=unit_cache, cache=hyp_cache)
        timings["disk_warm"] = _run(bench_model, dataset, hyps, warm_cfg)
        disk_stats = {"unit": unit_cache.stats(), "hyp": hyp_cache.stats()}
        # same session again: memory tiers already hold everything
        timings["memory_warm"] = _run(bench_model, dataset, hyps, warm_cfg)

        # fused vs unfused multi-transform extraction (no caches: this
        # isolates the shared forward sweep itself)
        counting = CountingForwardModel(bench_model)
        fused_groups = [
            UnitGroup(model=counting, unit_ids=np.arange(SETTING.n_units),
                      name=t, extractor=RnnActivationExtractor(transform=t))
            for t in TRANSFORMS]
        t0 = time.perf_counter()
        inspect(None, dataset, [CorrelationScore()], hyps,
                unit_groups=fused_groups,
                config=InspectConfig(mode="streaming", early_stop=False,
                                     block_size=128, seed=0))
        timings["fused_transforms"] = time.perf_counter() - t0
        fused_sweeps = counting.forward_calls

        unfused = CountingForwardModel(bench_model)
        t0 = time.perf_counter()
        for t in TRANSFORMS:
            inspect(None, dataset, [CorrelationScore()], hyps,
                    unit_groups=[UnitGroup(
                        model=unfused, unit_ids=np.arange(SETTING.n_units),
                        name=t,
                        extractor=RnnActivationExtractor(transform=t))],
                    config=InspectConfig(mode="streaming", early_stop=False,
                                         block_size=128, seed=0))
        timings["unfused_transforms"] = time.perf_counter() - t0
        unfused_sweeps = unfused.forward_calls

        cold = timings["cold"]
        rows = [{"config": name, "seconds": secs,
                 "speedup_vs_cold": cold / max(secs, 1e-9)}
                for name, secs in timings.items()]
        print_table("Persistent store tiers (streaming, early_stop=off)",
                    rows)
        print(f"forward sweeps: fused={fused_sweeps} "
              f"unfused={unfused_sweeps}")

        payload = {
            "setting": {"n_records": dataset.n_records,
                        "n_units": SETTING.n_units,
                        "n_hypotheses": len(hyps),
                        "store_stats": store.stats(),
                        "disk_warm_cache_stats": disk_stats},
            "timings_s": timings,
            "speedup_vs_cold": {r["config"]: r["speedup_vs_cold"]
                                for r in rows},
            "forward_sweeps": {"fused": fused_sweeps,
                               "unfused": unfused_sweeps},
        }
        with open(OUTPUT, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
        print(f"wrote {OUTPUT}")

        # smoke gates
        assert disk_stats["unit"]["extractions"] == 0, \
            "disk-warm rerun must not touch the model"
        assert disk_stats["hyp"]["extractions"] == 0, \
            "disk-warm rerun must not re-evaluate hypotheses"
        assert timings["disk_warm"] * DISK_WARM_WIN <= cold
        assert timings["memory_warm"] <= timings["disk_warm"] * NOT_SLOWER
        assert fused_sweeps * len(TRANSFORMS) == unfused_sweeps
        assert timings["fused_transforms"] * FUSED_WIN <= \
            timings["unfused_transforms"]

    benchmark.pedantic(_report, rounds=1, iterations=1)
