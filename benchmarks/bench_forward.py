"""Cold forward-sweep kernels: gather projection + inference-mode LSTM.

Times one full cold extraction sweep (every record, full unit width) under:

* ``seed_kernels``      -- an inline port of the pre-kernel implementation:
  dense one-hot materialization, the one-hot @ ``w_x`` matmul, per-gate
  masked stable sigmoids and full gate/cell history.
* ``training_path``     -- the current training-mode forward (dense one-hot
  kept for BPTT, but the branch-free sigmoid kernel).
* ``inference_kernels`` -- ``model.hidden_states``: embedding-gather
  projection, in-place branch-free sigmoid/tanh, no history buffers.

The three sweeps must be **bit-identical**; the inference kernels must beat
the seed kernels >= 3x.  Results land in ``BENCH_forward.json`` so CI can
smoke-check the cold path (the layer every cold run, new checkpoint and
cache-missing client pays) stays fast.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from benchmarks.conftest import SETTING, print_table

OUTPUT = "BENCH_forward.json"

#: the tentpole gate: inference kernels vs the pre-kernel sweep
MIN_SPEEDUP = 3.0
#: timing repetitions (min-of wins over the odd scheduler hiccup)
REPS = 5


# ----------------------------------------------------------------------
# inline port of the pre-kernel (seed) sweep, used as the baseline
# ----------------------------------------------------------------------
def _seed_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


def _seed_sweep(model, ids: np.ndarray) -> np.ndarray:
    """Dense one-hot + full-history LSTM loop, exactly as the seed ran it."""
    x = np.zeros(ids.shape + (model.vocab_size,))
    np.put_along_axis(x, ids[..., None], 1.0, axis=-1)
    lstm = model.lstm
    batch, time_, _ = x.shape
    h = lstm.n_units
    h_prev = np.zeros((batch, h))
    c_prev = np.zeros((batch, h))
    hs = np.empty((batch, time_, h))
    cs = np.empty((batch, time_, h))
    gates = np.empty((batch, time_, 4 * h))
    x_proj = x.reshape(-1, lstm.n_in) @ lstm.w_x.value
    x_proj = x_proj.reshape(batch, time_, 4 * h) + lstm.b.value
    for t in range(time_):
        z = x_proj[:, t] + h_prev @ lstm.w_h.value
        i = _seed_sigmoid(z[:, :h])
        f = _seed_sigmoid(z[:, h:2 * h])
        o = _seed_sigmoid(z[:, 2 * h:3 * h])
        g = np.tanh(z[:, 3 * h:])
        c_prev = f * c_prev + i * g
        h_prev = o * np.tanh(c_prev)
        hs[:, t] = h_prev
        cs[:, t] = c_prev
        gates[:, t, :h] = i
        gates[:, t, h:2 * h] = f
        gates[:, t, 2 * h:3 * h] = o
        gates[:, t, 3 * h:] = g
    return hs


def _best_of(fn, reps: int = REPS) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_forward_sweep_report(benchmark, bench_model, bench_workload):
    def _report():
        model = bench_model
        ids = bench_workload.dataset.symbols

        seed_hs = _seed_sweep(model, ids)
        train_hs = model.lstm.forward(model.onehot.forward(ids))
        infer_hs = model.hidden_states(ids)
        # the kernels' whole contract: indistinguishable activations
        assert train_hs.tobytes() == seed_hs.tobytes()
        assert infer_hs.tobytes() == seed_hs.tobytes()

        timings = {
            "seed_kernels": _best_of(lambda: _seed_sweep(model, ids)),
            "training_path": _best_of(
                lambda: model.lstm.forward(model.onehot.forward(ids))),
            "inference_kernels": _best_of(lambda: model.hidden_states(ids)),
        }
        baseline = timings["seed_kernels"]
        rows = [{"sweep": name, "seconds": secs,
                 "speedup_vs_seed": baseline / max(secs, 1e-9)}
                for name, secs in timings.items()]
        print_table("Cold forward sweep (full records, full width)", rows)

        speedup = baseline / max(timings["inference_kernels"], 1e-9)
        payload = {
            "setting": {"n_records": int(ids.shape[0]),
                        "n_symbols": int(ids.shape[1]),
                        "vocab_size": model.vocab_size,
                        "n_units": SETTING.n_units,
                        "cpu_count": os.cpu_count()},
            "timings_s": timings,
            "speedup_vs_seed": {r["sweep"]: r["speedup_vs_seed"]
                                for r in rows},
            "bit_identical": True,
            "gates": {"min_inference_speedup": MIN_SPEEDUP},
        }
        with open(OUTPUT, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {OUTPUT}")

        assert speedup >= MIN_SPEEDUP, (
            f"inference kernels {speedup:.2f}x vs seed kernels; the "
            f"forward-sweep layer promises >= {MIN_SPEEDUP}x")

    benchmark.pedantic(_report, rounds=1, iterations=1)
