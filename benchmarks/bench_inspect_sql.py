"""INSPECT SQL frontend: one shared plan vs the per-group seed frontend.

The workload is the paper's epoch-sweep query -- ``GROUP BY M.epoch`` over
``N_SNAPSHOTS`` training snapshots of one model -- executed by:

* ``seed_frontend`` -- a faithful port of the pre-plan frontend: the
  catalog is cross-producted with ``itertools.product`` and row-filtered,
  and every GROUP BY group runs its own independent, cache-less, serial
  inspection, so hypothesis behaviors are re-extracted once per group.
* ``shared_plan_cold`` -- the current frontend: predicates push into
  columnar scans, equi-joins replace the cross product, and ALL groups
  compile into one plan-engine run wired to the session caches and the
  thread-pool scheduler.  Hypothesis extraction happens once in total and
  unit extraction once per (model, dataset).
* ``shared_plan_warm`` -- the same statement re-run in the same session
  (the interactive query-refinement loop this frontend exists for, and the
  loop a cache-less frontend repeats from scratch every time): both
  session caches are hot, so the query costs catalog planning + scoring.

Results go to ``BENCH_inspect_sql.json``; the smoke gates assert the two
frontends return identical scores, that the shared plan ran extraction
once per (model, dataset) and once per hypothesis across ALL groups, that
a session re-run of the sweep beats the seed frontend by >= 5x, and that
even the cold first query is faster outright.
"""

from __future__ import annotations

import json
import time
from itertools import product

import numpy as np
import pytest

from repro.core.groups import UnitGroup
from repro.core.pipeline import InspectConfig, run_inspection
from repro.db import Database
from repro.db.inspect_clause import InspectQuery, run_inspect_sql
from repro.db.sqlparser import parse_sql
from repro.extract import RnnActivationExtractor
from repro.hypotheses import grammar_hypotheses
from repro.hypotheses.library import sql_keyword_hypotheses
from repro.measures.registry import get_measure
from repro.nn import CharLSTMModel, TrainConfig, train_model
from repro.nn.serialize import clone_model
from repro.util.rng import new_rng
from benchmarks.conftest import SETTING, print_table

OUTPUT = "BENCH_inspect_sql.json"
N_SNAPSHOTS = 8
MAX_RECORDS = 200
#: the steady-state (warm session) sweep must beat the cache-less seed
#: frontend by this factor
MIN_WARM_SPEEDUP = 5.0
#: the cold first query must win outright, with slack for shared runners
MIN_COLD_SPEEDUP = 1.2

SQL = """
    SELECT M.epoch, S.uid, S.hid, S.unit_score
    INSPECT U.uid AND H.h USING corr OVER D.seq AS S
    FROM models M, units U, hypotheses H, inputs D
    WHERE M.mid = U.mid
    GROUP BY M.epoch
"""


# ----------------------------------------------------------------------
# the seed frontend, ported verbatim from the pre-plan inspect_clause
# ----------------------------------------------------------------------
def _seed_catalog_rows(db, tables, where):
    """Filtered cross product of the catalog relations (the seed path)."""
    per_table = []
    for name, alias in tables:
        table = db.table(name)
        rows = []
        for row in db.scan(name):
            env = {}
            for col, val in zip(table.columns, row):
                env[f"{alias}.{col}"] = val
                env.setdefault(col, val)
            rows.append(env)
        per_table.append(rows)
    out = []
    for combo in product(*per_table):
        env = {}
        for piece in combo:
            env.update(piece)
        if where is None or where.eval(env):
            out.append(env)
    return out


def _seed_inspect_one_group(context, spec, measures, group_envs):
    unit_col = spec.unit_ref.split(".")[-1]
    hyp_col = spec.hyp_ref.split(".")[-1]
    units_by_model: dict[str, list[int]] = {}
    env_by_unit: dict[tuple, dict] = {}
    hyp_names: list[str] = []
    dataset_ids: set[str] = set()
    for env in group_envs:
        mid = env["mid"]
        uid = env[unit_col] if unit_col in env else env[spec.unit_ref]
        hname = env[hyp_col] if hyp_col in env else env[spec.hyp_ref]
        if uid not in units_by_model.setdefault(mid, []):
            units_by_model[mid].append(uid)
        if hname not in hyp_names:
            hyp_names.append(hname)
        env_by_unit.setdefault((mid, uid), env)
        dataset_ids.add(env.get("did", next(iter(context.datasets))))
    dataset = context.datasets[dataset_ids.pop()]
    hyp_objs = [context.hypotheses[h] for h in hyp_names]
    groups = [UnitGroup(model=context.models[mid],
                        unit_ids=np.asarray(sorted(uids), dtype=int),
                        name=f"mid={mid}")
              for mid, uids in units_by_model.items()]
    # one fully independent, cache-less, serial inspection per group
    outcomes = run_inspection(groups, dataset, measures, hyp_objs,
                              context.extractor, context.config)
    rows = []
    for outcome in outcomes:
        mid = next(m for m, g in zip(units_by_model, groups)
                   if g is outcome.group)
        sorted_units = sorted(units_by_model[mid])
        for j, hname in enumerate(outcome.hypothesis_names):
            for i, uid in enumerate(sorted_units):
                unit_score = float(outcome.result.unit_scores[i, j])
                rows.append({"uid": uid, "hid": hname, "mid": mid,
                             "unit_score": unit_score,
                             "_env": env_by_unit[(mid, uid)]})
    return rows


def seed_run_inspect_sql(context, sql):
    """The pre-plan frontend: per-group loop over the cross product."""
    spec = parse_sql(sql)
    envs = _seed_catalog_rows(context.db, spec.tables, spec.where)
    measures = [get_measure(name) for name in spec.measures]
    grouped: dict[tuple, list[dict]] = {}
    for env in envs:
        key = tuple(expr.eval(env) for expr in spec.group_by)
        grouped.setdefault(key, []).append(env)
    out_rows = []
    for group_envs in grouped.values():
        for row in _seed_inspect_one_group(context, spec, measures,
                                           group_envs):
            env = dict(row.pop("_env"))
            env.update({f"{spec.inspect_alias}.{k}": v
                        for k, v in row.items()})
            env.update(row)
            if spec.having is not None and not spec.having.eval(env):
                continue
            out_rows.append({item.alias: item.expr.eval(env)
                             for item in spec.select_items})
    return out_rows


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def sweep_hypotheses(bench_workload):
    """The full hypothesis library (not truncated): the sweep's H side."""
    return grammar_hypotheses(bench_workload.grammar, bench_workload.queries,
                              bench_workload.trees, mode="derivation") \
        + sql_keyword_hypotheses()


@pytest.fixture(scope="session")
def sweep_snapshots(bench_workload):
    model = CharLSTMModel(len(bench_workload.vocab), SETTING.n_units,
                          rng=new_rng(11), model_id="sql_sweep")
    snaps: dict[int, object] = {}

    def capture(epoch, trained):
        snap = clone_model(trained)
        snap.model_id = f"sweep_e{epoch}"
        snaps[epoch] = snap

    train_model(model, bench_workload.dataset.symbols,
                bench_workload.targets,
                TrainConfig(epochs=N_SNAPSHOTS, lr=3e-3, patience=99),
                snapshot_hook=capture)
    return snaps


def _make_context(snapshots, workload, hyps, **kwargs):
    ordered = [snapshots[e] for e in sorted(snapshots)]
    db = Database()
    db.create_table("models", ["mid", "epoch"],
                    [[m.model_id, e] for e, m in sorted(snapshots.items())])
    db.create_table("units", ["mid", "uid", "layer"],
                    [[m.model_id, u, 0]
                     for m in ordered for u in range(SETTING.n_units)])
    db.create_table("hypotheses", ["h", "name"],
                    [[h.name, "bench"] for h in hyps])
    db.create_table("inputs", ["did", "seq"], [["d0", "seq"]])
    kwargs.setdefault("config",
                      InspectConfig(mode="full", max_records=MAX_RECORDS))
    return InspectQuery(db=db, models={m.model_id: m for m in ordered},
                        hypotheses={h.name: h for h in hyps},
                        datasets={"d0": workload.dataset},
                        extractor=RnnActivationExtractor(), **kwargs)


def _score_set(rows):
    return {(r["M.epoch"], r["S.uid"], r["S.hid"]): r["S.unit_score"]
            for r in rows}


def test_inspect_sql_shared_plan(benchmark, bench_workload,
                                 sweep_hypotheses, sweep_snapshots):
    def _report():
        hyps = sweep_hypotheses

        seed_ctx = _make_context(sweep_snapshots, bench_workload, hyps,
                                 session_defaults=False)
        t0 = time.perf_counter()
        seed_rows = seed_run_inspect_sql(seed_ctx, SQL)
        t_seed = time.perf_counter() - t0

        ctx = _make_context(sweep_snapshots, bench_workload, hyps)
        t0 = time.perf_counter()
        cold_frame = run_inspect_sql(ctx, SQL)
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_frame = run_inspect_sql(ctx, SQL)
        t_warm = time.perf_counter() - t0

        timings = {"seed_frontend": t_seed, "shared_plan_cold": t_cold,
                   "shared_plan_warm": t_warm}
        rows = [{"frontend": name, "seconds": secs,
                 "speedup_vs_seed": t_seed / max(secs, 1e-9)}
                for name, secs in timings.items()]
        print_table(
            f"INSPECT epoch sweep ({N_SNAPSHOTS} snapshots x "
            f"{SETTING.n_units} units x {len(hyps)} hypotheses)", rows)

        unit_stats = ctx.unit_cache.stats()
        hyp_stats = ctx.hyp_cache.stats()
        payload = {
            "setting": {"n_snapshots": N_SNAPSHOTS,
                        "n_units": SETTING.n_units,
                        "n_hypotheses": len(hyps),
                        "max_records": MAX_RECORDS,
                        "unit_cache_stats": unit_stats,
                        "hyp_cache_stats": hyp_stats},
            "timings_s": timings,
            "breakdown_s": {
                "seed_frontend": seed_ctx.config.stopwatch.breakdown(),
                "shared_plan": ctx.config.stopwatch.breakdown()},
            "speedup_vs_seed": {r["frontend"]: r["speedup_vs_seed"]
                                for r in rows},
        }
        with open(OUTPUT, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
        print(f"wrote {OUTPUT}")
        ctx.close()

        # both frontends must agree before any speedup claim counts
        assert _score_set(seed_rows) == _score_set(cold_frame.rows())
        assert _score_set(seed_rows) == _score_set(warm_frame.rows())
        # extraction ran once per (model, dataset) / hypothesis -- over
        # both the cold AND the warm run (the warm query re-extracts
        # nothing at all)
        assert unit_stats["extractions"] == N_SNAPSHOTS
        assert hyp_stats["extractions"] == len(hyps)
        assert t_seed >= MIN_WARM_SPEEDUP * t_warm
        assert t_seed >= MIN_COLD_SPEEDUP * t_cold

    benchmark.pedantic(_report, rounds=1, iterations=1)
