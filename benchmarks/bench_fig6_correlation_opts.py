"""Figure 6: DeepBase optimization variants for the correlation measure.

Compared variants (cumulative):
* ``PyBase``       -- full materialization, per-pair loops
* ``+ES``          -- materialized behaviors + early stopping
* ``DeepBase``     -- early stopping + lazy (streaming) extraction

The paper finds the primary gains come from early stopping, with lazy
extraction adding a considerable but smaller benefit that grows with the
number of records.
"""

from __future__ import annotations

import time

import pytest

from repro import InspectConfig, inspect
from repro.baselines import PyBaseRunner
from repro.measures import CorrelationScore
from benchmarks.conftest import print_table


def _run_variant(variant: str, model, dataset, hyps) -> None:
    if variant == "pybase":
        PyBaseRunner().run_correlation(model, dataset, hyps)
        return
    mode = "materialized" if variant == "es" else "streaming"
    config = InspectConfig(mode=mode, early_stop=True, block_size=128)
    inspect([model], dataset, [CorrelationScore()], hyps, config=config)


@pytest.mark.parametrize("variant", ["pybase", "es", "deepbase"])
def test_fig6_variant(benchmark, variant, bench_model, bench_workload,
                      bench_hypotheses):
    dataset = bench_workload.dataset
    benchmark.pedantic(
        lambda: _run_variant(variant, bench_model, dataset, bench_hypotheses),
        rounds=1, iterations=1)


def test_fig6_record_sweep_report(benchmark, bench_model, bench_workload,
                                  bench_hypotheses):
    """Lazy extraction's advantage grows with the dataset (middle plot)."""
    def _report():
        rows = []
        n = bench_workload.dataset.n_records
        for n_records in (n // 4, n // 2, n):
            dataset = bench_workload.dataset.head(n_records)
            timings = {}
            for variant in ("pybase", "es", "deepbase"):
                t0 = time.perf_counter()
                _run_variant(variant, bench_model, dataset, bench_hypotheses)
                timings[variant + "_s"] = time.perf_counter() - t0
            rows.append({"records": n_records, **timings})
        print_table("Figure 6: correlation optimization variants (seconds)",
                    rows)

        # DeepBase must beat PyBase, and the gap must grow with records
        gaps = [r["pybase_s"] / max(r["deepbase_s"], 1e-9) for r in rows]
        assert all(g > 1.0 for g in gaps)
        assert rows[-1]["deepbase_s"] <= rows[-1]["es_s"] * 1.25

    benchmark.pedantic(_report, rounds=1, iterations=1)
