"""Figure 8: runtime breakdown by system component.

Splits wall-clock into hypothesis-extraction, unit-extraction and inspector
costs for the ``+MM+ES`` and full-DeepBase configurations, for both
measures.  The paper's takeaway: correlation is inspector-bound, logistic
regression is extraction-bound, and DeepBase's savings come from lower
extraction costs via online extraction.
"""

from __future__ import annotations

import pytest

from repro import InspectConfig, inspect
from repro.measures import CorrelationScore, LogRegressionScore
from benchmarks.conftest import print_table


def _run(variant: str, measure, model, dataset, hyps) -> dict[str, float]:
    mode = "materialized" if variant == "mm_es" else "streaming"
    config = InspectConfig(mode=mode, early_stop=True, block_size=128)
    inspect([model], dataset, [measure], hyps, config=config)
    return config.stopwatch.breakdown()


@pytest.mark.parametrize("kind", ["corr", "logreg"])
def test_fig8_deepbase(benchmark, kind, bench_model, bench_workload,
                       bench_hypotheses):
    measure = (CorrelationScore() if kind == "corr"
               else LogRegressionScore(regul="L1", epochs=1, cv_folds=2))
    benchmark.pedantic(
        lambda: _run("deepbase", measure, bench_model,
                     bench_workload.dataset, bench_hypotheses),
        rounds=1, iterations=1)


def test_fig8_breakdown_report(benchmark, bench_model, bench_workload,
                               bench_hypotheses):
    def _report():
        rows = []
        buckets = ("hypothesis_extraction", "unit_extraction", "inspection")
        breakdowns = {}
        for kind in ("corr", "logreg"):
            measure = (CorrelationScore() if kind == "corr"
                       else LogRegressionScore(regul="L1", epochs=1,
                                               cv_folds=2))
            for variant in ("mm_es", "deepbase"):
                split = _run(variant, measure, bench_model,
                             bench_workload.dataset, bench_hypotheses)
                breakdowns[(kind, variant)] = split
                rows.append({"measure": kind, "variant": variant,
                             **{b: split.get(b, 0.0) for b in buckets}})
        print_table("Figure 8: runtime breakdown (seconds)", rows)

        # DeepBase's extraction cost must not exceed the materialized one's
        for kind in ("corr", "logreg"):
            mm = breakdowns[(kind, "mm_es")]
            db = breakdowns[(kind, "deepbase")]
            mm_extract = mm.get("unit_extraction", 0) + mm.get(
                "hypothesis_extraction", 0)
            db_extract = db.get("unit_extraction", 0) + db.get(
                "hypothesis_extraction", 0)
            assert db_extract <= mm_extract * 1.25, kind

    benchmark.pedantic(_report, rounds=1, iterations=1)
