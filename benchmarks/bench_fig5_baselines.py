"""Figure 5: MADLib and Python baselines vs. DeepBase (all optimizations).

The paper's headline scalability result: DeepBase outperforms PyBase by up
to 72x and MADLib by 100-419x, for both the correlation and the
logistic-regression measure, across sweeps of #hypotheses, #records and
#hidden units.  This bench reproduces all three systems on the scaled
workload and prints the sweep series; `pytest --benchmark-only` times the
headline three-system comparison.

MADLib runs on a deliberately small slice: its row-at-a-time UDAs make the
paper's point by being orders of magnitude slower.
"""

from __future__ import annotations

import time

import pytest

from repro import InspectConfig, inspect
from repro.baselines import MadlibRunner, PyBaseRunner
from repro.measures import CorrelationScore, LogRegressionScore
from benchmarks.conftest import print_table

#: records given to every system in the timed comparison (MADLib-friendly)
N_RECORDS = 150


def _deepbase(model, dataset, hyps, measure) -> None:
    config = InspectConfig(mode="streaming", block_size=64)
    inspect([model], dataset, [measure], hyps, config=config)


def _pybase(model, dataset, hyps, kind: str) -> None:
    runner = PyBaseRunner(logreg_epochs=2, cv_folds=2)
    if kind == "corr":
        runner.run_correlation(model, dataset, hyps)
    else:
        runner.run_logreg(model, dataset, hyps)


def _madlib(model, dataset, hyps, kind: str, engine: str | None = None) -> None:
    runner = MadlibRunner(logreg_iters=2, engine=engine)
    if kind == "corr":
        runner.run_correlation(model, dataset, hyps)
    else:
        runner.run_logreg(model, dataset, hyps)


@pytest.mark.parametrize("system", ["deepbase", "pybase", "madlib"])
@pytest.mark.parametrize("kind", ["corr", "logreg"])
def test_fig5_system(benchmark, system, kind, bench_model, bench_workload,
                     bench_hypotheses):
    dataset = bench_workload.dataset.head(N_RECORDS)
    hyps = bench_hypotheses[:8]
    measure = (CorrelationScore() if kind == "corr"
               else LogRegressionScore(regul="L1", epochs=2, cv_folds=2))

    def run():
        if system == "deepbase":
            _deepbase(bench_model, dataset, hyps, measure)
        elif system == "pybase":
            _pybase(bench_model, dataset, hyps, kind)
        else:
            # the paper's Figure 5 measures the row-at-a-time RDBMS profile
            _madlib(bench_model, dataset, hyps, kind, engine="row")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig5_madlib_engine_speedup(benchmark, bench_model, bench_workload,
                                    bench_hypotheses):
    """The columnar executor must beat the row engine on the MADLib
    correlation path by at least 3x (same plan, vectorized execution)."""
    dataset = bench_workload.dataset.head(N_RECORDS)
    hyps = bench_hypotheses[:8]

    def _report():
        rows = []
        for kind in ("corr", "logreg"):
            t0 = time.perf_counter()
            _madlib(bench_model, dataset, hyps, kind, engine="row")
            row_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            _madlib(bench_model, dataset, hyps, kind, engine="columnar")
            col_s = time.perf_counter() - t0
            rows.append({"measure": kind, "row_s": row_s,
                         "columnar_s": col_s, "speedup": row_s / col_s})
        print_table("MADLib baseline: columnar vs row engine (seconds)", rows)
        corr = next(r for r in rows if r["measure"] == "corr")
        assert corr["speedup"] >= 3.0, corr

    benchmark.pedantic(_report, rounds=1, iterations=1)


def test_fig5_sweep_report(benchmark, bench_model, bench_workload, bench_hypotheses):
    """Prints the full Figure 5 grid: runtime vs #hyps, #records, #units."""
    def _report():
        rows = []

        def time_systems(kind, dataset, hyps, madlib_ok=True):
            measure = (CorrelationScore() if kind == "corr"
                       else LogRegressionScore(regul="L1", epochs=2, cv_folds=2))
            out = {}
            t0 = time.perf_counter()
            _deepbase(bench_model, dataset, hyps, measure)
            out["deepbase_s"] = time.perf_counter() - t0
            t0 = time.perf_counter()
            _pybase(bench_model, dataset, hyps, kind)
            out["pybase_s"] = time.perf_counter() - t0
            if madlib_ok:
                t0 = time.perf_counter()
                _madlib(bench_model, dataset, hyps, kind)
                out["madlib_s"] = time.perf_counter() - t0
            else:
                out["madlib_s"] = float("nan")
            return out

        base_ds = bench_workload.dataset.head(N_RECORDS)
        for kind in ("corr", "logreg"):
            for n_hyps in (2, 4, 8):
                times = time_systems(kind, base_ds, bench_hypotheses[:n_hyps])
                rows.append({"measure": kind, "sweep": "hypotheses",
                             "value": n_hyps, **times})
            for n_rec in (50, 100, 200):
                times = time_systems(kind, bench_workload.dataset.head(n_rec),
                                     bench_hypotheses[:4])
                rows.append({"measure": kind, "sweep": "records",
                             "value": n_rec, **times})

        print_table("Figure 5: baselines vs DeepBase (seconds)", rows)

        # MADLib must lose everywhere; PyBase must lose at the largest
        # sweep points (at tiny scales the streaming engine's convergence
        # checks can cost more than they save -- the paper's claims are
        # about growing scale)
        for row in rows:
            assert row["deepbase_s"] < row["madlib_s"], row
        for kind in ("corr", "logreg"):
            for sweep in ("hypotheses", "records"):
                last = [r for r in rows
                        if r["measure"] == kind and r["sweep"] == sweep][-1]
                assert last["deepbase_s"] <= last["pybase_s"] * 1.2, last

    benchmark.pedantic(_report, rounds=1, iterations=1)

