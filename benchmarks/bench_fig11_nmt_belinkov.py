"""Figure 11: POS probe precision, DeepBase vs Belinkov et al. scripts.

Both systems train a multi-class probe predicting POS tags from the NMT
encoder's hidden states.  The paper reports per-tag precisions with sample
Pearson correlation r = 0.84 between the two approaches, and DeepBase
running faster because it extracts activations once while the scripts
re-run the full translation model every epoch.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import InspectConfig, UnitGroup, inspect
from repro.data.datasets import Dataset, Vocab
from repro.extract import EncoderActivationExtractor
from repro.hypotheses.annotations import categorical_hypothesis
from repro.measures import MulticlassLogRegScore
from repro.nmt import BelinkovProbe, generate_nmt_corpus, train_nmt_model
from benchmarks.conftest import print_table


@pytest.fixture(scope="module")
def nmt_corpus():
    return generate_nmt_corpus(n_sentences=600, seed=0)


@pytest.fixture(scope="module")
def nmt_model(nmt_corpus):
    return train_nmt_model(nmt_corpus, n_units=48, epochs=18, seed=0,
                           lr=5e-3)


def _sentence_dataset(corpus) -> Dataset:
    return Dataset(corpus.src, Vocab(["x"]),
                   meta=[{} for _ in range(corpus.n_sentences)])


def _deepbase_probe(model, corpus):
    # probe the same representation the Belinkov scripts use: encoder layer 1
    dataset = _sentence_dataset(corpus)
    probe = MulticlassLogRegScore(n_classes=len(corpus.tag_names), epochs=15)
    extractor = EncoderActivationExtractor(layer=1)
    out = inspect(None, dataset, [probe],
                  [categorical_hypothesis(corpus.tags)],
                  unit_groups=[UnitGroup(
                      model=model,
                      unit_ids=np.arange(model.n_units),
                      name="encoder_layer1", extractor=extractor)],
                  config=InspectConfig(mode="full"), as_frame=False)
    return out[0].result.extras["per_class_precision"]


def test_fig11_deepbase(benchmark, nmt_model, nmt_corpus):
    benchmark.pedantic(lambda: _deepbase_probe(nmt_model, nmt_corpus),
                       rounds=1, iterations=1)


def test_fig11_belinkov(benchmark, nmt_model, nmt_corpus):
    probe = BelinkovProbe(layer=1, max_epochs=20, patience=8,
                          batch_size=32, lr=0.3)
    benchmark.pedantic(lambda: probe.run(nmt_model, nmt_corpus),
                       rounds=1, iterations=1)


def test_fig11_report(benchmark, nmt_model, nmt_corpus):
    def _report():
        t0 = time.perf_counter()
        deepbase_prec = _deepbase_probe(nmt_model, nmt_corpus)
        deepbase_s = time.perf_counter() - t0

        probe = BelinkovProbe(layer=1, max_epochs=25, patience=8,
                              batch_size=32, lr=0.3)
        belinkov = probe.run(nmt_model, nmt_corpus)

        # the paper filters out tags covering less than 1.5% of the data
        # (rare-tag precision estimates are too noisy to compare)
        tag_counts = np.bincount(
            nmt_corpus.tags[nmt_corpus.src != 0],
            minlength=len(nmt_corpus.tag_names))
        coverage = tag_counts / tag_counts.sum()

        rows = []
        pairs = []
        for i, tag in enumerate(nmt_corpus.tag_names):
            if i == 0 or coverage[i] < 0.015:
                continue
            a, b = deepbase_prec[i], belinkov.per_tag_precision[i]
            rows.append({"tag": tag, "deepbase": a, "belinkov": b})
            pairs.append((a, b))
        arr = np.array(pairs)
        r = float(np.corrcoef(arr[:, 0], arr[:, 1])[0, 1])
        rows.append({"tag": "== pearson r ==", "deepbase": r, "belinkov": r})
        rows.append({"tag": "== seconds ==", "deepbase": deepbase_s,
                     "belinkov": belinkov.seconds})
        print_table("Figure 11: per-tag precision, DeepBase vs Belinkov "
                    "(paper r=0.84)", rows)

        # the approaches must agree (paper: r=0.84; at this scale the two
        # probes' different optimizers leave more residual noise, see
        # EXPERIMENTS.md)
        assert r > 0.4, f"precision correlation too weak: {r}"
        # the in-place scripts re-run the full model every epoch, which is
        # why DeepBase's cached-extraction design wins on wall-clock
        assert belinkov.full_model_evals > belinkov.epochs_run

    benchmark.pedantic(_report, rounds=1, iterations=1)

