"""Figure 13 (Appendix C): verification of specialized units.

Trains the parentheses model with an auxiliary loss that forces a subset of
units to track the parentheses-detector hypothesis, then runs the
perturbation-based verification procedure.  Reproduces the two sweeps:

* 13b: silhouette vs. number of specialized units (weight = 0.5)
* 13c: silhouette vs. specialization weight (|S| = 4)

always comparing the specialized units against an equal-sized set of the
least-correlated units, which must separate far less.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_parens_workload
from repro.extract import RnnActivationExtractor
from repro.extract.base import HypothesisExtractor
from repro.hypotheses import CharSetHypothesis
from repro.measures import CorrelationScore
from repro.nn import SpecializedLSTMModel, TrainConfig, train_model
from repro.util.rng import new_rng
from repro.verify import verify_units
from benchmarks.conftest import print_table


@pytest.fixture(scope="module")
def workload():
    return generate_parens_workload(n_strings=120, window=16, stride=2,
                                    seed=0)


HYP = CharSetHypothesis("parens", "()")


def _train_specialized(workload, n_specialized: int, weight: float):
    aux = HYP.extract(workload.dataset)
    model = SpecializedLSTMModel(
        len(workload.vocab), 16, new_rng(1),
        specialized_units=list(range(n_specialized)), weight=weight)
    train_model(model, workload.dataset.symbols, workload.targets,
                TrainConfig(epochs=16, lr=5e-3, patience=99),
                aux_behavior=aux)
    return model


def _silhouettes(model, workload, n_specialized: int):
    spec_units = list(range(n_specialized))
    units = RnnActivationExtractor().extract(model, workload.dataset.symbols)
    hyp_m = HypothesisExtractor([HYP]).extract(workload.dataset)
    corr = CorrelationScore().compute(units, hyp_m).unit_scores[:, 0]
    non_spec = np.arange(n_specialized, 16)
    least = non_spec[np.argsort(np.abs(corr[non_spec]))[:n_specialized]]
    spec = verify_units(model, workload.dataset, HYP, spec_units,
                        n_sites=50, rng=new_rng(2)).silhouette
    rand = verify_units(model, workload.dataset, HYP, least,
                        n_sites=50, rng=new_rng(2)).silhouette
    return spec, rand


def test_fig13_verification_single(benchmark, workload):
    model = _train_specialized(workload, n_specialized=4, weight=0.5)
    benchmark.pedantic(lambda: _silhouettes(model, workload, 4),
                       rounds=1, iterations=1)


def test_fig13b_vary_n_specialized(benchmark, workload):
    def _report():
        rows = []
        for n_spec in (2, 4, 8):
            model = _train_specialized(workload, n_spec, weight=0.5)
            spec, rand = _silhouettes(model, workload, n_spec)
            rows.append({"n_specialized": n_spec, "specialized_sil": spec,
                         "random_sil": rand})
        print_table("Figure 13b: silhouette vs number of specialized units "
                    "(weight=0.5)", rows)
        wins = sum(1 for r in rows if r["specialized_sil"] > r["random_sil"])
        assert wins >= 2, rows

    benchmark.pedantic(_report, rounds=1, iterations=1)


def test_fig13c_vary_weight(benchmark, workload):
    def _report():
        rows = []
        for weight in (0.1, 0.5, 0.9):
            model = _train_specialized(workload, 4, weight=weight)
            spec, rand = _silhouettes(model, workload, 4)
            rows.append({"weight": weight, "specialized_sil": spec,
                         "random_sil": rand})
        print_table("Figure 13c: silhouette vs specialization weight "
                    "(|S|=4)", rows)
        # with substantial weight the specialized units must separate clearly
        strong = [r for r in rows if r["weight"] >= 0.5]
        assert all(r["specialized_sil"] > r["random_sil"] for r in strong), rows

    benchmark.pedantic(_report, rounds=1, iterations=1)

