"""Shared benchmark fixtures.

One trained SQL model + workload + hypothesis library is built per session
and reused by the figure benches.  Scales are controlled by
``REPRO_BENCH_SCALE`` (1 = default laptop scale; larger values approach the
paper's setting: 29,696 records, 512 units, 190 hypotheses).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.data import generate_sql_workload
from repro.data.sql_gen import SqlWorkload
from repro.hypotheses import grammar_hypotheses
from repro.hypotheses.library import sql_keyword_hypotheses
from repro.nn import CharLSTMModel, TrainConfig, train_model
from repro.util.rng import new_rng

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))


@dataclass
class BenchSetting:
    """The Section 6.2 default setting, scaled down."""

    n_queries: int = max(10, int(40 * SCALE))
    n_units: int = max(8, int(32 * SCALE))
    n_hypotheses: int = max(4, int(24 * SCALE))
    window: int = 30
    stride: int = 5
    train_epochs: int = 3


SETTING = BenchSetting()


def print_table(title: str, rows: list[dict]) -> None:
    """Render a paper-style series as an aligned text table."""
    print(f"\n--- {title} ---")
    if not rows:
        print("(no rows)")
        return
    cols = list(rows[0])
    widths = {c: max(len(c), *(len(_fmt(r[c])) for r in rows)) for c in cols}
    print("  ".join(c.ljust(widths[c]) for c in cols))
    for row in rows:
        print("  ".join(_fmt(row[c]).ljust(widths[c]) for c in cols))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


@pytest.fixture(scope="session")
def bench_workload() -> SqlWorkload:
    return generate_sql_workload("default", n_queries=SETTING.n_queries,
                                 window=SETTING.window,
                                 stride=SETTING.stride, seed=0)


@pytest.fixture(scope="session")
def bench_model(bench_workload):
    model = CharLSTMModel(len(bench_workload.vocab), SETTING.n_units,
                          rng=new_rng(1), model_id="sql_bench_model")
    train_model(model, bench_workload.dataset.symbols,
                bench_workload.targets,
                TrainConfig(epochs=SETTING.train_epochs, batch_size=128,
                            lr=3e-3, patience=99))
    return model


@pytest.fixture(scope="session")
def bench_hypotheses(bench_workload):
    """Grammar hypotheses (derivation mode: parse cost paid at sampling)."""
    hyps = grammar_hypotheses(bench_workload.grammar, bench_workload.queries,
                              bench_workload.trees, mode="derivation")
    hyps += sql_keyword_hypotheses()
    return hyps[:SETTING.n_hypotheses]


@pytest.fixture(scope="session")
def bench_hypotheses_reparse(bench_workload):
    """Same hypotheses, slow path: Earley re-parse per source string."""
    hyps = grammar_hypotheses(bench_workload.grammar, bench_workload.queries,
                              mode="reparse")
    return hyps[:SETTING.n_hypotheses]
