"""Figure 10: sensitivity to the early-stopping error threshold.

Sweeps the convergence threshold for correlation and logistic regression,
comparing ``+MM+ES`` (materialized) with full DeepBase (streaming).  The
paper's shape: relaxing the threshold shrinks DeepBase's extraction cost
dramatically (it stops reading data), while +MM+ES only saves inspector
time; logistic regression is far less sensitive because its optimizer
converges slowly.

Also ablates the block size ``nb`` (Section 5.2.2's convergence-check
overhead vs. over-processing trade-off; paper default 512).
"""

from __future__ import annotations

import time

import pytest

from repro import InspectConfig, inspect
from repro.measures import CorrelationScore, LogRegressionScore
from benchmarks.conftest import print_table

THRESHOLDS = (0.005, 0.01, 0.025, 0.05, 0.1)


def _run(kind: str, mode: str, threshold: float, block_size: int,
         model, dataset, hyps) -> tuple[float, int]:
    measure = (CorrelationScore() if kind == "corr"
               else LogRegressionScore(regul="L1", epochs=1, cv_folds=2))
    config = InspectConfig(mode=mode, early_stop=True,
                           error_threshold=threshold, block_size=block_size)
    t0 = time.perf_counter()
    out = inspect([model], dataset, [measure], hyps, config=config,
                  as_frame=False)
    return time.perf_counter() - t0, out[0].records_processed


@pytest.mark.parametrize("threshold", [0.01, 0.1])
def test_fig10_corr_threshold(benchmark, threshold, bench_model,
                              bench_workload, bench_hypotheses):
    benchmark.pedantic(
        lambda: _run("corr", "streaming", threshold, 128, bench_model,
                     bench_workload.dataset, bench_hypotheses),
        rounds=1, iterations=1)


def test_fig10_threshold_report(benchmark, bench_model, bench_workload,
                                bench_hypotheses):
    def _report():
        rows = []
        for kind in ("corr", "logreg"):
            for threshold in THRESHOLDS:
                for mode, label in (("materialized", "mm_es"),
                                    ("streaming", "deepbase")):
                    secs, records = _run(kind, mode, threshold, 128,
                                         bench_model, bench_workload.dataset,
                                         bench_hypotheses)
                    rows.append({"measure": kind, "threshold": threshold,
                                 "variant": label, "seconds": secs,
                                 "records_read": records})
        print_table("Figure 10: error-threshold sensitivity", rows)

        # relaxing the threshold must not increase the records DeepBase reads
        for kind in ("corr", "logreg"):
            reads = [r["records_read"] for r in rows
                     if r["measure"] == kind and r["variant"] == "deepbase"]
            assert all(a >= b for a, b in zip(reads, reads[1:])), (kind, reads)

    benchmark.pedantic(_report, rounds=1, iterations=1)


def test_fig10_block_size_ablation(benchmark, bench_model, bench_workload,
                                   bench_hypotheses):
    """DESIGN.md ablation: convergence-check overhead vs over-processing."""
    def _report():
        rows = []
        for block_size in (32, 128, 512):
            secs, records = _run("corr", "streaming", 0.025, block_size,
                                 bench_model, bench_workload.dataset,
                                 bench_hypotheses)
            rows.append({"block_size": block_size, "seconds": secs,
                         "records_read": records})
        print_table("block-size (nb) ablation, correlation @ e=0.025", rows)
        # smaller blocks stop closer to the convergence point
        assert rows[0]["records_read"] <= rows[-1]["records_read"]

    benchmark.pedantic(_report, rounds=1, iterations=1)
