"""Figure 15 (Appendix E): DeepBase vs NetDissect on a CNN.

Runs NetDissect's dissection (sampled quantile threshold + IoU) and
DeepBase's Jaccard measure over the same trained CNN and annotated images,
then correlates the two systems' (channel, concept) scores.  The paper
reports strong correlation with residual differences from non-deterministic
pipeline stages; here the nondeterminism is NetDissect's threshold sample.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import InspectConfig, UnitGroup, inspect
from repro.data.datasets import Dataset, Vocab
from repro.hypotheses.annotations import mask_hypotheses
from repro.measures import JaccardScore
from repro.vision import (generate_shape_dataset, netdissect_scores,
                          train_shape_cnn)
from repro.vision.netdissect import CnnPixelExtractor
from repro.vision.shapes import CONCEPTS
from benchmarks.conftest import print_table

QUANTILE = 0.97


@pytest.fixture(scope="module")
def vision_setup():
    shapes = generate_shape_dataset(n_images=240, image_size=20, seed=0)
    model = train_shape_cnn(shapes, epochs=10, lr=4e-3, seed=0)
    return shapes, model


def _image_dataset(shapes) -> Dataset:
    n_pixels = shapes.image_size ** 2
    symbols = np.repeat(np.arange(shapes.n_images)[:, None], n_pixels,
                        axis=1)
    return Dataset(symbols, Vocab(["x"]),
                   meta=[{} for _ in range(shapes.n_images)])


def _deepbase_scores(shapes, model) -> dict[str, np.ndarray]:
    dataset = _image_dataset(shapes)
    extractor = CnnPixelExtractor(shapes.images)
    hyps = mask_hypotheses(shapes.flat_masks())
    measure = JaccardScore(quantile=QUANTILE,
                           calibration_rows=shapes.n_images * 300)
    frame = inspect(None, dataset, [measure], hyps,
                    unit_groups=[UnitGroup(model=model,
                                           unit_ids=np.arange(model.n_units),
                                           name="conv2",
                                           extractor=extractor)],
                    config=InspectConfig(mode="full"))
    scores = {c: np.zeros(model.n_units) for c in CONCEPTS}
    for row in frame.rows():
        concept = row["hyp_id"].split(":")[1]
        scores[concept][row["h_unit_id"]] = row["val"]
    return scores


def test_fig15_deepbase(benchmark, vision_setup):
    shapes, model = vision_setup
    benchmark.pedantic(lambda: _deepbase_scores(shapes, model),
                       rounds=1, iterations=1)


def test_fig15_netdissect(benchmark, vision_setup):
    shapes, model = vision_setup
    benchmark.pedantic(
        lambda: netdissect_scores(model, shapes, quantile=QUANTILE, seed=3),
        rounds=1, iterations=1)


def test_fig15_report(benchmark, vision_setup):
    def _report():
        shapes, model = vision_setup
        nd = netdissect_scores(model, shapes, quantile=QUANTILE, seed=3)
        db = _deepbase_scores(shapes, model)

        rows = []
        for concept in CONCEPTS:
            best_nd = int(np.argmax(nd[concept]))
            best_db = int(np.argmax(db[concept]))
            rows.append({"concept": concept,
                         "netdissect_best": best_nd,
                         "netdissect_iou": float(nd[concept][best_nd]),
                         "deepbase_best": best_db,
                         "deepbase_iou": float(db[concept][best_db])})
        nd_all = np.concatenate([nd[c] for c in CONCEPTS])
        db_all = np.concatenate([db[c] for c in CONCEPTS])
        r = float(np.corrcoef(nd_all, db_all)[0, 1])
        rows.append({"concept": "== pearson r ==", "netdissect_best": "",
                     "netdissect_iou": r, "deepbase_best": "",
                     "deepbase_iou": r})
        print_table("Figure 15: NetDissect vs DeepBase channel scores", rows)

        # the paper's claim: scores are strongly correlated across systems
        assert r > 0.8, f"agreement too weak: r={r}"
        # and at least one genuine concept detector exists
        assert max(row["deepbase_iou"] for row in rows[:-1]) > 0.1

    benchmark.pedantic(_report, rounds=1, iterations=1)

