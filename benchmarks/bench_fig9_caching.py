"""Figure 9: effect of caching behaviors (both halves of Section 5.1.2).

During model development the hypothesis library is fixed while models are
retrained, so hypothesis behaviors can be extracted once and reused.  The
paper reports caching improves correlation ~1.9x and logistic regression up
to 19.5x (because hypothesis extraction -- parsing -- dominates its cost).

This bench uses the *reparse* hypothesis mode, where every source string
must be parsed with the Earley parser on first touch (the NLTK-cost
analogue), then re-inspects a second model with a warm cache.

The mirrored scenario — repeated inspection of the *same* model with new
thresholds or measures, where the :class:`UnitBehaviorCache` skips the
forward passes — is reported by ``test_fig9_unit_cache_report``.
"""

from __future__ import annotations

import time

import pytest

from repro import (HypothesisCache, InspectConfig, UnitBehaviorCache,
                   inspect)
from repro.measures import CorrelationScore, LogRegressionScore
from repro.nn import CharLSTMModel
from repro.util.rng import new_rng
from benchmarks.conftest import SETTING, print_table


def _measure(kind: str):
    if kind == "corr":
        return CorrelationScore()
    return LogRegressionScore(regul="L1", epochs=1, cv_folds=2)


def _run(model, dataset, hyps, kind: str, cache: HypothesisCache,
         unit_cache: UnitBehaviorCache | None = None) -> float:
    config = InspectConfig(mode="streaming", early_stop=True,
                           block_size=128, cache=cache,
                           unit_cache=unit_cache)
    t0 = time.perf_counter()
    inspect([model], dataset, [_measure(kind)], hyps, config=config)
    return time.perf_counter() - t0


@pytest.mark.parametrize("state", ["cold", "warm"])
@pytest.mark.parametrize("kind", ["corr", "logreg"])
def test_fig9_cache(benchmark, state, kind, bench_model, bench_workload,
                    bench_hypotheses_reparse):
    dataset = bench_workload.dataset
    cache = HypothesisCache()
    if state == "warm":
        _run(bench_model, dataset, bench_hypotheses_reparse, kind, cache)
    # a retrained model arrives; hypotheses unchanged
    retrained = CharLSTMModel(len(bench_workload.vocab), SETTING.n_units,
                              rng=new_rng(7), model_id="retrained")
    benchmark.pedantic(
        lambda: _run(retrained, dataset, bench_hypotheses_reparse, kind,
                     cache),
        rounds=1, iterations=1)


def test_fig9_report(benchmark, bench_model, bench_workload, bench_hypotheses_reparse):
    def _report():
        rows = []
        for kind in ("corr", "logreg"):
            cache = HypothesisCache()
            cold = _run(bench_model, bench_workload.dataset,
                        bench_hypotheses_reparse, kind, cache)
            retrained = CharLSTMModel(len(bench_workload.vocab), SETTING.n_units,
                                      rng=new_rng(8), model_id="retrained")
            warm = _run(retrained, bench_workload.dataset,
                        bench_hypotheses_reparse, kind, cache)
            rows.append({"measure": kind, "cold_s": cold, "warm_s": warm,
                         "speedup": cold / max(warm, 1e-9)})
        print_table("Figure 9: cached hypothesis extraction", rows)
        for row in rows:
            assert row["speedup"] > 1.0, row

    benchmark.pedantic(_report, rounds=1, iterations=1)


def test_fig9_unit_cache_report(benchmark, bench_model, bench_workload,
                                bench_hypotheses):
    """Repeated runs against one model: unit behaviors are extracted once."""
    def _report():
        rows = []
        for kind in ("corr", "logreg"):
            hyp_cache, unit_cache = HypothesisCache(), UnitBehaviorCache()
            cold = _run(bench_model, bench_workload.dataset,
                        bench_hypotheses, kind, hyp_cache, unit_cache)
            # the analyst tweaks measures/thresholds; model unchanged
            warm = _run(bench_model, bench_workload.dataset,
                        bench_hypotheses, kind, hyp_cache, unit_cache)
            rows.append({"measure": kind, "cold_s": cold, "warm_s": warm,
                         "speedup": cold / max(warm, 1e-9),
                         "unit_hits": unit_cache.stats()["hits"]})
        print_table("Figure 9b: cached unit extraction (same model)", rows)
        for row in rows:
            # warm skips only extraction, so allow shared-runner noise;
            # the hit count is the deterministic signal
            assert row["warm_s"] <= row["cold_s"] * 1.35, row
            assert row["unit_hits"] > 0, row

    benchmark.pedantic(_report, rounds=1, iterations=1)

